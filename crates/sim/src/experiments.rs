//! One entry point per table/figure of the paper's evaluation.
//!
//! The evaluation has two halves, each driven by one [`Study`]:
//!
//! * the **conventional** study (Figs. 4(a), 4(b) and Table III) compares
//!   `L2-256KB` against `LN2/LN3/LN4` backed by the 8 MB L3,
//! * the **D-NUCA** study (Figs. 5(a) and 5(b)) compares `DN-4x8` against
//!   `LN2/LN3/LN4 + DN-4x8`.
//!
//! A study runs every configuration on every synthetic benchmark of both
//! suites once; the per-figure summaries are then derived from the stored
//! [`RunResult`]s, so the expensive simulations are never repeated.
//! Table II (area) needs no simulation and is computed from the area model.

use crate::configs::{self, HierarchyKind};
use crate::energy_model;
use crate::journal::{self, JournalWriter};
use crate::spec::HierarchySpec;
use crate::supervise::{self, StopSignal, Supervisor};
use crate::system::{Engine, RunResult};
use lnuca_energy::{AreaModel, PAPER_TABLE2};
use lnuca_types::stats::harmonic_mean;
use lnuca_types::{ConfigError, RunError};
use lnuca_workloads::{suites, Suite, WorkloadProfile};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which workload profiles an experiment matrix runs over.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WorkloadSelection {
    /// The paper's 22 synthetic benchmarks (11 INT-like + 11 FP-like).
    #[default]
    Paper,
    /// The paper suites plus the four adversarial access-pattern classes
    /// (`suites::adversarial`): pointer chase, strided streaming, GUPS and
    /// phase mix.
    Extended,
    /// Only the four adversarial access-pattern classes.
    Adversarial,
    /// Explicit profile names, resolved case-insensitively through
    /// `suites::by_name` (unknown names fail loudly with the valid list).
    Named(Vec<String>),
}

impl WorkloadSelection {
    /// Parses one of the predefined-set keywords (`paper`/`default`,
    /// `extended`/`all`, `adversarial`/`adv`), as the `LNUCA_WORKLOADS`
    /// knob and the scenario files spell them. Explicit name lists are not
    /// keywords; `None` for anything else.
    #[must_use]
    pub fn from_keyword(raw: &str) -> Option<Self> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "" | "paper" | "default" => Some(WorkloadSelection::Paper),
            "extended" | "all" => Some(WorkloadSelection::Extended),
            "adversarial" | "adv" => Some(WorkloadSelection::Adversarial),
            _ => None,
        }
    }

    /// The keyword of a predefined selection (`None` for [`Self::Named`]).
    #[must_use]
    pub fn keyword(&self) -> Option<&'static str> {
        match self {
            WorkloadSelection::Paper => Some("paper"),
            WorkloadSelection::Extended => Some("extended"),
            WorkloadSelection::Adversarial => Some("adversarial"),
            WorkloadSelection::Named(_) => None,
        }
    }
}

/// Knobs shared by every experiment.
///
/// `#[non_exhaustive]`: construct one with [`ExperimentOptions::builder`]
/// (or start from [`ExperimentOptions::default`] / [`ExperimentOptions::quick`]
/// and mutate fields) — three consecutive PRs added fields here by breaking
/// every downstream struct literal; the builder ends that.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentOptions {
    /// Instructions simulated per (configuration, benchmark) pair.
    pub instructions: u64,
    /// Base seed for the synthetic traces.
    pub seed: u64,
    /// Restrict each suite to its first N benchmarks (None = all eleven).
    pub benchmarks_per_suite: Option<usize>,
    /// Which workload profiles to run the matrix over.
    pub workloads: WorkloadSelection,
    /// L-NUCA level counts to evaluate (the paper uses 2, 3 and 4).
    pub lnuca_levels: Vec<u8>,
    /// Worker threads running the configuration × benchmark matrix
    /// (1 = sequential on the calling thread). Every run is seed-isolated,
    /// so the results — and every summary derived from them — are identical
    /// whatever the thread count; only the wall-clock changes.
    pub threads: usize,
    /// Time-stepping engine for every run. Like `threads`, this changes
    /// only the wall clock: both engines are bit-identical in results
    /// (`tests/event_horizon_determinism.rs`), so summaries never depend on
    /// it. Recorded in the `lnuca-bench-baseline/v2` perf baseline.
    pub engine: Engine,
    /// Simulations stepped in lockstep per worker (DESIGN.md §13): the job
    /// matrix is cut into contiguous batches of this size, each run by one
    /// [`crate::batch::BatchRunner`]. `1` (the default) preserves the
    /// per-run path; `usize::MAX` means one batch per worker-claimed chunk
    /// spanning everything. Like `threads` and `engine` this changes only
    /// the wall clock — every batched run is bit-identical to its solo
    /// counterpart (`tests/batch_equivalence.rs`).
    pub batch_size: usize,
    /// Watchdog: abort any run whose simulated clock reaches this many
    /// cycles with the workload unfinished (`None` = no budget; the
    /// `LNUCA_CYCLE_BUDGET` knob). Deterministic — a tripped run trips at
    /// the same cycle on every attempt and engine, so it is never retried.
    pub cycle_budget: Option<u64>,
    /// Watchdog: abort any run whose wall clock exceeds this many
    /// milliseconds (`None` = no timeout; the `LNUCA_RUN_TIMEOUT_MS`
    /// knob). Host-dependent, hence treated as transient and retried.
    pub run_timeout_ms: Option<u64>,
    /// Watchdog: abort any run in which no instruction commits for this
    /// many consecutive cycles (`None` = no livelock detection; the
    /// `LNUCA_LIVELOCK_WINDOW` knob). Deterministic per engine.
    pub livelock_window: Option<u64>,
    /// Extra attempts granted to transiently-failed runs (panics and
    /// wall-clock timeouts); deterministic watchdog trips never retry.
    /// The `LNUCA_RETRIES` knob.
    pub retries: u32,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            instructions: 200_000,
            seed: 1,
            benchmarks_per_suite: None,
            workloads: WorkloadSelection::Paper,
            lnuca_levels: vec![2, 3, 4],
            threads: 1,
            engine: Engine::EventHorizon,
            batch_size: 1,
            cycle_budget: None,
            run_timeout_ms: None,
            livelock_window: None,
            retries: 1,
        }
    }
}

impl ExperimentOptions {
    /// A reduced option set for quick smoke runs and unit tests.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentOptions {
            instructions: 5_000,
            benchmarks_per_suite: Some(2),
            lnuca_levels: vec![2, 3],
            ..ExperimentOptions::default()
        }
    }

    /// Starts building options from [`ExperimentOptions::default`].
    #[must_use]
    pub fn builder() -> ExperimentOptionsBuilder {
        ExperimentOptionsBuilder {
            options: ExperimentOptions::default(),
        }
    }

    pub(crate) fn workloads(&self) -> Result<Vec<WorkloadProfile>, ConfigError> {
        let take = |v: Vec<WorkloadProfile>| -> Vec<WorkloadProfile> {
            match self.benchmarks_per_suite {
                Some(n) => v.into_iter().take(n).collect(),
                None => v,
            }
        };
        let paper = || {
            let mut all = take(suites::spec_int_like());
            all.extend(take(suites::spec_fp_like()));
            all
        };
        Ok(match &self.workloads {
            WorkloadSelection::Paper => paper(),
            WorkloadSelection::Extended => {
                let mut all = paper();
                all.extend(take(suites::adversarial()));
                all
            }
            WorkloadSelection::Adversarial => take(suites::adversarial()),
            WorkloadSelection::Named(names) => {
                if names.is_empty() {
                    return Err(ConfigError::new(
                        "workloads",
                        "Named selection lists no workloads; the matrix would be empty",
                    ));
                }
                names
                    .iter()
                    .map(|name| suites::by_name(name))
                    .collect::<Result<Vec<_>, _>>()?
            }
        })
    }
}

/// Builder for [`ExperimentOptions`] (see [`ExperimentOptions::builder`]).
#[derive(Debug, Clone)]
pub struct ExperimentOptionsBuilder {
    options: ExperimentOptions,
}

impl ExperimentOptionsBuilder {
    /// Sets the instructions per (configuration, benchmark) pair.
    #[must_use]
    pub fn instructions(mut self, instructions: u64) -> Self {
        self.options.instructions = instructions;
        self
    }

    /// Sets the base seed for the synthetic traces.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.options.seed = seed;
        self
    }

    /// Restricts each suite to its first N benchmarks.
    #[must_use]
    pub fn benchmarks_per_suite(mut self, n: Option<usize>) -> Self {
        self.options.benchmarks_per_suite = n;
        self
    }

    /// Sets which workload profiles the matrix runs over.
    #[must_use]
    pub fn workloads(mut self, workloads: WorkloadSelection) -> Self {
        self.options.workloads = workloads;
        self
    }

    /// Sets the L-NUCA level counts the built-in paper plans expand into
    /// configurations.
    #[must_use]
    pub fn lnuca_levels(mut self, levels: Vec<u8>) -> Self {
        self.options.lnuca_levels = levels;
        self
    }

    /// Sets the worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads.max(1);
        self
    }

    /// Sets the time-stepping engine.
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.options.engine = engine;
        self
    }

    /// Sets how many simulations each worker steps in lockstep (clamped to
    /// at least 1; 1 = the per-run path).
    #[must_use]
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.options.batch_size = batch_size.max(1);
        self
    }

    /// Sets the cycle-budget watchdog (`None` = no budget).
    #[must_use]
    pub fn cycle_budget(mut self, budget: Option<u64>) -> Self {
        self.options.cycle_budget = budget;
        self
    }

    /// Sets the wall-clock timeout watchdog in milliseconds (`None` = no
    /// timeout).
    #[must_use]
    pub fn run_timeout_ms(mut self, timeout_ms: Option<u64>) -> Self {
        self.options.run_timeout_ms = timeout_ms;
        self
    }

    /// Sets the no-commit livelock window in cycles (`None` = no livelock
    /// detection).
    #[must_use]
    pub fn livelock_window(mut self, window: Option<u64>) -> Self {
        self.options.livelock_window = window;
        self
    }

    /// Sets how many extra attempts a transiently-failed run gets.
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.options.retries = retries;
        self
    }

    /// Produces the options (no validation needed — every field is clamped
    /// or checked where it is consumed).
    #[must_use]
    pub fn build(self) -> ExperimentOptions {
        self.options
    }
}

/// A named, fully-declarative experiment: which hierarchy configurations to
/// run (baseline first) over which workloads with which engine knobs.
///
/// This is the single entry point's input ([`Study::run`]); the scenario
/// JSON files of `crate::scenario` deserialize into it, and the built-in
/// paper plans ([`ExperimentPlan::paper_conventional`] /
/// [`ExperimentPlan::paper_dnuca`]) spell out the paper's two study
/// matrices.
///
/// # Example
///
/// ```
/// use lnuca_sim::experiments::{ExperimentOptions, ExperimentPlan, Study};
/// use lnuca_sim::spec::HierarchySpec;
///
/// let plan = ExperimentPlan::builder("fabric-only")
///     .config(
///         HierarchySpec::builder()
///             .fabric(lnuca_core::LNucaConfig::paper(2)?)
///             .build()?,
///     )
///     .options(
///         ExperimentOptions::builder()
///             .instructions(2_000)
///             .benchmarks_per_suite(Some(1))
///             .build(),
///     )
///     .build()?;
/// let study = Study::run(&plan)?;
/// assert_eq!(study.baseline, "LN2-72KB + mem");
/// # Ok::<(), lnuca_types::ConfigError>(())
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentPlan {
    /// Plan name (the scenario name when loaded from a file).
    pub name: String,
    /// The hierarchy configurations to evaluate; the first is the baseline
    /// every summary normalises to.
    pub configs: Vec<HierarchySpec>,
    /// Run knobs (instructions, seed, workloads, threads, engine).
    pub options: ExperimentOptions,
}

impl ExperimentPlan {
    /// Starts building a plan named `name` with default options and no
    /// configurations.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> ExperimentPlanBuilder {
        ExperimentPlanBuilder {
            plan: ExperimentPlan {
                name: name.into(),
                configs: Vec::new(),
                options: ExperimentOptions::default(),
            },
        }
    }

    /// The conventional-study plan: baseline `L2-256KB` plus one
    /// `LNx + L3` configuration per entry of `options.lnuca_levels` —
    /// the matrix of Figs. 4(a)/4(b) and Table III.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if a level count is out of range.
    pub fn paper_conventional(options: &ExperimentOptions) -> Result<Self, ConfigError> {
        let mut builder = Self::builder("paper-conventional")
            .config(HierarchyKind::Conventional(configs::conventional()).to_spec());
        for &levels in &options.lnuca_levels {
            let config = lnuca_core::LNucaConfig::paper(levels)?;
            builder = builder.config(
                HierarchySpec::builder()
                    .fabric(config)
                    .backing_cache(configs::paper_l3())
                    .build()?,
            );
        }
        builder.options(options.clone()).build()
    }

    /// The D-NUCA-study plan: baseline `DN-4x8` plus one `LNx + DN-4x8`
    /// configuration per entry of `options.lnuca_levels` — the matrix of
    /// Figs. 5(a)/5(b).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if a level count is out of range.
    pub fn paper_dnuca(options: &ExperimentOptions) -> Result<Self, ConfigError> {
        let mut builder = Self::builder("paper-dnuca")
            .config(HierarchyKind::DNuca(configs::dnuca_hierarchy()).to_spec());
        for &levels in &options.lnuca_levels {
            let config = lnuca_core::LNucaConfig::paper(levels)?;
            builder = builder.config(
                HierarchySpec::builder()
                    .fabric(config)
                    .backing_dnuca(lnuca_dnuca::DNucaConfig::paper())
                    .build()?,
            );
        }
        builder.options(options.clone()).build()
    }

    /// The label of the baseline configuration (the first one).
    #[must_use]
    pub fn baseline_label(&self) -> String {
        self.configs
            .first()
            .map(HierarchySpec::label)
            .unwrap_or_default()
    }
}

/// Builder for [`ExperimentPlan`] (see [`ExperimentPlan::builder`]).
#[derive(Debug, Clone)]
pub struct ExperimentPlanBuilder {
    plan: ExperimentPlan,
}

impl ExperimentPlanBuilder {
    /// Appends one configuration (the first appended is the baseline).
    #[must_use]
    pub fn config(mut self, spec: HierarchySpec) -> Self {
        self.plan.configs.push(spec);
        self
    }

    /// Appends several configurations in order.
    #[must_use]
    pub fn configs(mut self, specs: impl IntoIterator<Item = HierarchySpec>) -> Self {
        self.plan.configs.extend(specs);
        self
    }

    /// Sets the run options.
    #[must_use]
    pub fn options(mut self, options: ExperimentOptions) -> Self {
        self.plan.options = options;
        self
    }

    /// Validates and produces the plan.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the plan has no configurations, a spec
    /// is invalid, or two configurations share a label (summaries group
    /// results by label, so duplicates would silently merge).
    pub fn build(self) -> Result<ExperimentPlan, ConfigError> {
        if self.plan.configs.is_empty() {
            return Err(ConfigError::new(
                "configs",
                "an experiment plan needs at least one hierarchy configuration",
            ));
        }
        if self.plan.options.batch_size == 0 {
            return Err(ConfigError::new(
                "options.batch_size",
                "a zero-wide batch would simulate nothing; use 1 or more, or \
                 usize::MAX for one full-width batch (the LNUCA_BATCH knob)",
            ));
        }
        if self.plan.options.benchmarks_per_suite == Some(0) {
            return Err(ConfigError::new(
                "options.benchmarks_per_suite",
                "a zero-benchmark cap would empty every suite; use 1 or more, \
                 or None for all (the LNUCA_BENCHMARKS_PER_SUITE knob)",
            ));
        }
        let mut labels: Vec<String> = Vec::new();
        for spec in &self.plan.configs {
            spec.validate()?;
            let label = spec.label();
            if labels.contains(&label) {
                return Err(ConfigError::new(
                    "configs",
                    format!(
                        "two configurations derive the label {label:?}; set an explicit \
                         label on one of them"
                    ),
                ));
            }
            labels.push(label);
        }
        Ok(self.plan)
    }
}

/// All simulation results of one half of the evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Study {
    /// Label of the baseline configuration the others are normalised to.
    pub baseline: String,
    /// Configuration labels in evaluation order (baseline first).
    pub configs: Vec<String>,
    /// One result per (configuration, benchmark) that completed.
    pub results: Vec<RunResult>,
    /// Wall-clock measurement of each run, index-aligned with `results`.
    /// Unlike `results` this is host-dependent (machine, load, thread
    /// count); determinism comparisons must ignore it.
    pub perf: Vec<RunPerf>,
    /// Runs that could not produce a result (panicked, tripped a watchdog,
    /// exhausted their retries), in matrix order. The summaries aggregate
    /// over `results` only; a non-empty `failures` makes the `lnuca` CLI
    /// exit nonzero after still writing the report.
    pub failures: Vec<FailedRun>,
}

/// One cell of the experiment matrix that failed to produce a result, with
/// the structured reason and the attempts spent (DESIGN.md §14).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailedRun {
    /// Configuration label of the failed run.
    pub label: String,
    /// Workload name of the failed run.
    pub workload: String,
    /// Suite the workload belongs to.
    pub suite: Suite,
    /// Trace seed of the failed run.
    pub seed: u64,
    /// Why the run failed (final error after retries).
    pub error: RunError,
    /// Total attempts spent (1 = failed on the first try and the failure
    /// was not retryable).
    pub attempts: u32,
}

/// Wall-clock cost of simulating one (configuration, benchmark) pair,
/// recorded by the experiment engine next to the [`RunResult`] at the same
/// index of [`Study::results`]. This is the simulator's own throughput (the
/// perf-trajectory metric of `BENCH_baseline.json`), not a property of the
/// modelled hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunPerf {
    /// Configuration label.
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Wall-clock nanoseconds spent simulating this run.
    pub wall_nanos: u64,
    /// Simulated cycles of the run.
    pub cycles: u64,
    /// Simulated kilo-cycles per wall-clock second.
    pub kcycles_per_sec: f64,
}

/// One row of Fig. 4(a) / Fig. 5(a): harmonic-mean IPC per suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpcSummaryRow {
    /// Configuration label.
    pub label: String,
    /// Harmonic-mean IPC over the Integer suite.
    pub int_ipc: f64,
    /// Harmonic-mean IPC over the Floating-Point suite.
    pub fp_ipc: f64,
    /// Percent change of `int_ipc` versus the baseline configuration.
    pub int_gain_pct: f64,
    /// Percent change of `fp_ipc` versus the baseline configuration.
    pub fp_gain_pct: f64,
}

/// One row of Fig. 4(b) / Fig. 5(b): energy normalised to the baseline,
/// split into the paper's four bar segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergySummaryRow {
    /// Configuration label.
    pub label: String,
    /// Dynamic energy / baseline total energy.
    pub dynamic: f64,
    /// Static L1 (root tile) energy / baseline total energy.
    pub static_l1: f64,
    /// Static L2-or-tiles energy / baseline total energy.
    pub static_second: f64,
    /// Static L3-or-D-NUCA energy / baseline total energy.
    pub static_last: f64,
    /// Total normalised energy (sum of the four segments).
    pub total: f64,
}

/// One row of Table III: read hits per L-NUCA level relative to the read
/// hits of the baseline's second level, plus the transport-contention ratio.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HitDistributionRow {
    /// Configuration label.
    pub label: String,
    /// Workload suite the row aggregates.
    pub suite: Suite,
    /// Per-level percentage (index 0 = Le2) relative to baseline L2 hits.
    pub level_percent: Vec<f64>,
    /// Sum of all levels, relative to baseline L2 hits.
    pub all_levels_percent: f64,
    /// Average-to-minimum Transport-network latency ratio.
    pub avg_to_min_transport: f64,
}

/// One row of Table II: configuration areas, paper value and model value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaRow {
    /// Configuration label.
    pub label: String,
    /// Area printed in the paper (mm²), if the paper tabulates it.
    pub paper_mm2: Option<f64>,
    /// Area computed by the analytical model (mm²).
    pub model_mm2: f64,
    /// Network share printed in the paper (percent).
    pub paper_network_pct: Option<f64>,
    /// Network share computed by the model (percent).
    pub model_network_pct: f64,
}

/// The headline comparison of the paper's abstract/conclusion: LN3-144KB
/// versus L2-256KB.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineSummary {
    /// Area change of LN3 versus the baseline, in percent (negative = saves
    /// area).
    pub area_change_pct: f64,
    /// Integer IPC change in percent.
    pub int_ipc_gain_pct: f64,
    /// Floating-point IPC change in percent.
    pub fp_ipc_gain_pct: f64,
    /// Total energy change in percent (negative = saves energy).
    pub energy_change_pct: f64,
}

impl Study {
    /// Runs an [`ExperimentPlan`]: every configuration × every selected
    /// workload, fanned out over `plan.options.threads` workers, outcomes
    /// collected in job order (bit-identical to a sequential run).
    ///
    /// Every job runs supervised (DESIGN.md §14): a panic, watchdog trip or
    /// retry exhaustion lands in [`Study::failures`] instead of unwinding or
    /// aborting the study.
    ///
    /// This is the one experiment entry point; the paper studies are the
    /// built-in [`ExperimentPlan::paper_conventional`] /
    /// [`ExperimentPlan::paper_dnuca`] plans.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the plan is empty, a configuration is
    /// invalid, or a named workload does not exist. Per-run failures do
    /// **not** error — they are collected in [`Study::failures`].
    pub fn run(plan: &ExperimentPlan) -> Result<Self, ConfigError> {
        Self::run_inner(plan, None, Vec::new(), None)
    }

    /// Runs a plan with a crash-safe journal at `path`: every completed run
    /// is appended to the journal as it finishes, and with `resume = true` a
    /// journal left behind by an interrupted invocation of the *same* plan
    /// is replayed — already-journaled runs are not re-simulated, and the
    /// finished study is byte-identical (runs are deterministic) to one
    /// produced in a single uninterrupted invocation.
    ///
    /// The journal is content-addressed by a digest over the plan's
    /// semantic fields (configurations, workloads, instructions, seed —
    /// not threads/engine/batch size, which cannot change results); resuming
    /// against a journal written for a different plan is a
    /// [`RunError::JournalCorrupt`].
    ///
    /// # Errors
    ///
    /// [`RunError::Config`] on an invalid plan, [`RunError::JournalCorrupt`]
    /// on a journal that does not match the plan or cannot be read/written.
    pub fn run_journaled(
        plan: &ExperimentPlan,
        path: &Path,
        resume: bool,
    ) -> Result<Self, RunError> {
        Self::run_controlled(plan, Some(path), resume, &StopSignal::new())
    }

    /// The full-control entry point behind the serve daemon: an optional
    /// crash-safe journal (as in [`Study::run_journaled`]) plus a
    /// cooperative [`StopSignal`].
    ///
    /// Raising the signal mid-study stops the worker pool cleanly at run
    /// granularity: in-flight runs finish (and are journaled), every run
    /// not yet started lands in [`Study::failures`] with the signal's
    /// [`RunError`] (`Cancelled` or `Shutdown`). Because failures are never
    /// journaled, re-running the same plan against the same journal with
    /// `resume = true` replays the completed runs and simulates only the
    /// rest — producing a report byte-identical to one from a single
    /// uninterrupted invocation.
    ///
    /// # Errors
    ///
    /// [`RunError::Config`] on an invalid plan, [`RunError::JournalCorrupt`]
    /// on a journal that does not match the plan or cannot be read/written.
    pub fn run_controlled(
        plan: &ExperimentPlan,
        journal: Option<&Path>,
        resume: bool,
        stop: &StopSignal,
    ) -> Result<Self, RunError> {
        let Some(path) = journal else {
            return Ok(Self::run_inner(plan, None, Vec::new(), Some(stop))?);
        };
        let total = journal::job_count(plan)?;
        let (writer, preloaded) = if resume && path.exists() {
            let preloaded = journal::read_journal(path, plan, total)?;
            (JournalWriter::append(path)?, preloaded)
        } else {
            (JournalWriter::create(path, plan, total)?, Vec::new())
        };
        let study = Self::run_inner(plan, Some(&writer), preloaded, Some(stop))?;
        writer.finish()?;
        Ok(study)
    }

    /// The shared engine behind [`Study::run`] and [`Study::run_journaled`]:
    /// builds the job matrix, skips jobs already present in `preloaded`
    /// (index-aligned with the matrix), runs the rest supervised and merges
    /// everything back in matrix order.
    fn run_inner(
        plan: &ExperimentPlan,
        journal: Option<&JournalWriter>,
        mut preloaded: Vec<Option<(RunResult, RunPerf)>>,
        stop: Option<&StopSignal>,
    ) -> Result<Self, ConfigError> {
        let opts = &plan.options;
        let workloads = opts.workloads()?;
        if plan.configs.is_empty() {
            return Err(ConfigError::new(
                "configs",
                "an experiment plan needs at least one hierarchy configuration",
            ));
        }
        let configs: Vec<String> = plan.configs.iter().map(HierarchySpec::label).collect();
        let baseline = configs[0].clone();
        let supervisor = Supervisor::from_options(opts);
        let mut jobs = Vec::with_capacity(plan.configs.len() * workloads.len());
        for spec in &plan.configs {
            for (i, profile) in workloads.iter().enumerate() {
                jobs.push(Job {
                    index: jobs.len(),
                    spec,
                    profile,
                    seed: opts.seed.wrapping_add(i as u64),
                });
            }
        }
        let pending: Vec<Job<'_>> = jobs
            .iter()
            .filter(|job| !matches!(preloaded.get(job.index), Some(Some(_))))
            .copied()
            .collect();
        let outcomes = run_jobs(
            &pending,
            opts.instructions,
            opts.threads,
            opts.engine,
            opts.batch_size,
            &supervisor,
            journal,
            stop,
        );
        let mut ran = pending.iter().zip(outcomes);
        let mut results = Vec::with_capacity(jobs.len());
        let mut perf = Vec::with_capacity(jobs.len());
        let mut failures = Vec::new();
        for job in &jobs {
            if let Some(slot @ Some(_)) = preloaded.get_mut(job.index) {
                let (result, run_perf) = slot.take().expect("checked Some above");
                results.push(result);
                perf.push(run_perf);
                continue;
            }
            let (ran_job, supervised) = ran
                .next()
                .expect("run_jobs returns one outcome per pending job");
            debug_assert_eq!(ran_job.index, job.index);
            match supervised.outcome {
                Ok((result, run_perf)) => {
                    results.push(result);
                    perf.push(run_perf);
                }
                Err(error) => failures.push(FailedRun {
                    label: job.spec.label(),
                    workload: job.profile.name.clone(),
                    suite: job.profile.suite,
                    seed: job.seed,
                    error,
                    attempts: supervised.attempts,
                }),
            }
        }
        Ok(Study {
            baseline,
            configs,
            results,
            perf,
            failures,
        })
    }

    /// Results belonging to one configuration.
    pub fn results_for<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a RunResult> {
        self.results.iter().filter(move |r| r.label == label)
    }

    fn suite_ipcs(&self, label: &str, suite: Suite) -> Vec<f64> {
        self.results_for(label)
            .filter(|r| r.suite == suite)
            .map(|r| r.ipc)
            .collect()
    }

    /// Harmonic-mean IPC per suite for every configuration (Figs. 4(a) and
    /// 5(a)).
    #[must_use]
    pub fn ipc_summary(&self) -> Vec<IpcSummaryRow> {
        let base_int = harmonic_mean(&self.suite_ipcs(&self.baseline, Suite::Integer)).unwrap_or(1.0);
        let base_fp =
            harmonic_mean(&self.suite_ipcs(&self.baseline, Suite::FloatingPoint)).unwrap_or(1.0);
        self.configs
            .iter()
            .map(|label| {
                let int_ipc =
                    harmonic_mean(&self.suite_ipcs(label, Suite::Integer)).unwrap_or(0.0);
                let fp_ipc =
                    harmonic_mean(&self.suite_ipcs(label, Suite::FloatingPoint)).unwrap_or(0.0);
                IpcSummaryRow {
                    label: label.clone(),
                    int_ipc,
                    fp_ipc,
                    int_gain_pct: (int_ipc / base_int - 1.0) * 100.0,
                    fp_gain_pct: (fp_ipc / base_fp - 1.0) * 100.0,
                }
            })
            .collect()
    }

    /// Average energy per configuration, normalised to the baseline's
    /// average total energy and split into the paper's four bar segments
    /// (Figs. 4(b) and 5(b)).
    #[must_use]
    pub fn energy_summary(&self) -> Vec<EnergySummaryRow> {
        let mean_components = |label: &str| -> (f64, f64, f64, f64) {
            let runs: Vec<&RunResult> = self.results_for(label).collect();
            let n = runs.len().max(1) as f64;
            let sum = |f: &dyn Fn(&RunResult) -> f64| runs.iter().map(|r| f(r)).sum::<f64>() / n;
            (
                sum(&|r| r.energy.total_dynamic_pj()),
                sum(&|r| r.energy.static_pj(energy_model::STATIC_L1)),
                sum(&|r| r.energy.static_pj(energy_model::STATIC_SECOND)),
                sum(&|r| r.energy.static_pj(energy_model::STATIC_LAST)),
            )
        };
        let (bd, bl1, bsec, blast) = mean_components(&self.baseline);
        let baseline_total = bd + bl1 + bsec + blast;
        self.configs
            .iter()
            .map(|label| {
                let (d, l1, sec, last) = mean_components(label);
                let norm = |v: f64| if baseline_total > 0.0 { v / baseline_total } else { 0.0 };
                EnergySummaryRow {
                    label: label.clone(),
                    dynamic: norm(d),
                    static_l1: norm(l1),
                    static_second: norm(sec),
                    static_last: norm(last),
                    total: norm(d + l1 + sec + last),
                }
            })
            .collect()
    }

    /// Table III: per-level L-NUCA read hits relative to the baseline's
    /// second-level read hits, and the transport contention ratio, per
    /// suite. Configurations without a fabric (the baselines) are skipped.
    #[must_use]
    pub fn hit_distribution(&self) -> Vec<HitDistributionRow> {
        let mut rows = Vec::new();
        for label in &self.configs {
            for suite in [Suite::Integer, Suite::FloatingPoint] {
                let runs: Vec<&RunResult> = self
                    .results_for(label)
                    .filter(|r| r.suite == suite)
                    .collect();
                if runs.is_empty() || runs.iter().all(|r| r.hierarchy.lnuca.is_none()) {
                    continue;
                }
                let baseline_hits: u64 = self
                    .results_for(&self.baseline)
                    .filter(|r| r.suite == suite)
                    .map(|r| r.hierarchy.second_level_read_hits())
                    .sum();
                let levels = runs
                    .iter()
                    .filter_map(|r| r.hierarchy.lnuca.as_ref())
                    .map(|s| s.read_hits_per_level.len())
                    .max()
                    .unwrap_or(0);
                let mut level_percent = Vec::with_capacity(levels);
                for level_idx in 0..levels {
                    let hits: u64 = runs
                        .iter()
                        .filter_map(|r| r.hierarchy.lnuca.as_ref())
                        .map(|s| s.read_hits_per_level.get(level_idx).copied().unwrap_or(0))
                        .sum();
                    level_percent.push(percent_of(hits, baseline_hits));
                }
                let all: f64 = level_percent.iter().sum();
                let latency_sum: u64 = runs
                    .iter()
                    .filter_map(|r| r.hierarchy.lnuca.as_ref())
                    .map(|s| s.transport_latency_sum)
                    .sum();
                let min_sum: u64 = runs
                    .iter()
                    .filter_map(|r| r.hierarchy.lnuca.as_ref())
                    .map(|s| s.transport_min_latency_sum)
                    .sum();
                rows.push(HitDistributionRow {
                    label: label.clone(),
                    suite,
                    level_percent,
                    all_levels_percent: all,
                    avg_to_min_transport: if min_sum == 0 {
                        1.0
                    } else {
                        latency_sum as f64 / min_sum as f64
                    },
                });
            }
        }
        rows
    }
}

/// One (configuration, benchmark) cell of the experiment matrix. `index` is
/// the cell's position in the full matrix — the key the study journal
/// records completed runs under.
#[derive(Clone, Copy)]
struct Job<'a> {
    index: usize,
    spec: &'a HierarchySpec,
    profile: &'a WorkloadProfile,
    seed: u64,
}

use crate::supervise::SupervisedOutcome as JobOutcome;

/// Runs one job supervised and journals it if it succeeded.
fn run_job(
    job: &Job<'_>,
    instructions: u64,
    engine: Engine,
    supervisor: &Supervisor,
    journal: Option<&JournalWriter>,
) -> JobOutcome {
    let outcome = supervise::run_job_supervised(
        engine,
        job.spec,
        job.profile,
        instructions,
        job.seed,
        supervisor,
    );
    if let (Some(writer), Ok((result, perf))) = (journal, &outcome.outcome) {
        writer.record(job.index, result, perf);
    }
    outcome
}

/// Runs one contiguous batch of the matrix through a supervised
/// [`crate::batch::BatchRunner`], returning per-job outcomes in batch
/// order and journaling the successes.
fn run_batch(
    batch: &[Job<'_>],
    instructions: u64,
    engine: Engine,
    supervisor: &Supervisor,
    journal: Option<&JournalWriter>,
) -> Vec<JobOutcome> {
    let batch_jobs: Vec<crate::batch::BatchJob<'_>> = batch
        .iter()
        .map(|job| crate::batch::BatchJob {
            spec: job.spec,
            profile: job.profile,
            instructions,
            seed: job.seed,
        })
        .collect();
    let outcomes = supervise::run_batch_supervised(engine, &batch_jobs, supervisor);
    if let Some(writer) = journal {
        for (job, outcome) in batch.iter().zip(&outcomes) {
            if let Ok((result, perf)) = &outcome.outcome {
                writer.record(job.index, result, perf);
            }
        }
    }
    outcomes
}

/// Runs the experiment matrix on up to `threads` scoped workers pulling
/// work from a shared queue, returning the outcomes in job order.
///
/// With `batch_size <= 1` the unit of work is one job; otherwise the job
/// list is cut into contiguous batches of `batch_size` (in job order) and
/// each worker steps a whole batch in lockstep ([`crate::batch`]).
///
/// Each job builds its own hierarchy, trace generator and core from nothing
/// but the job description, so runs share no state and the outcome vector is
/// bit-identical to a sequential execution — the workers and the batch cut
/// only change which wall-clock instant each run happens at.
///
/// `stop` is checked once per claim (job or batch): a raised signal turns
/// every not-yet-claimed unit into failures carrying the signal's error,
/// without simulating them.
#[allow(clippy::too_many_arguments)]
fn run_jobs(
    jobs: &[Job<'_>],
    instructions: u64,
    threads: usize,
    engine: Engine,
    batch_size: usize,
    supervisor: &Supervisor,
    journal: Option<&JournalWriter>,
    stop: Option<&StopSignal>,
) -> Vec<JobOutcome> {
    let stopped = || stop.and_then(StopSignal::error);
    let stop_batch = |batch: &[Job<'_>], error: &RunError| -> Vec<JobOutcome> {
        batch
            .iter()
            .map(|_| JobOutcome {
                outcome: Err(error.clone()),
                attempts: 0,
            })
            .collect()
    };
    if batch_size > 1 {
        let batches: Vec<&[Job<'_>]> = jobs.chunks(batch_size).collect();
        let threads = threads.max(1).min(batches.len().max(1));
        if threads == 1 {
            return batches
                .iter()
                .flat_map(|batch| match stopped() {
                    Some(error) => stop_batch(batch, &error),
                    None => run_batch(batch, instructions, engine, supervisor, journal),
                })
                .collect();
        }
        let next_batch = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Vec<JobOutcome>>>> =
            batches.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next_batch.fetch_add(1, Ordering::Relaxed);
                    let Some(batch) = batches.get(i) else { break };
                    let outcomes = match stopped() {
                        Some(error) => stop_batch(batch, &error),
                        None => run_batch(batch, instructions, engine, supervisor, journal),
                    };
                    *slots[i].lock().expect("no other holder can panic") = Some(outcomes);
                });
            }
        });
        return slots
            .into_iter()
            .flat_map(|slot| {
                slot.into_inner()
                    .expect("worker panics propagate out of the scope")
                    .expect("every batch index below batches.len() was claimed exactly once")
            })
            .collect();
    }

    let threads = threads.max(1).min(jobs.len().max(1));
    if threads == 1 {
        return jobs
            .iter()
            .map(|job| match stopped() {
                Some(error) => JobOutcome {
                    outcome: Err(error),
                    attempts: 0,
                },
                None => run_job(job, instructions, engine, supervisor, journal),
            })
            .collect();
    }

    let next_job = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobOutcome>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next_job.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let outcome = match stopped() {
                    Some(error) => JobOutcome {
                        outcome: Err(error),
                        attempts: 0,
                    },
                    None => run_job(job, instructions, engine, supervisor, journal),
                };
                *slots[i].lock().expect("no other holder can panic") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker panics propagate out of the scope")
                .expect("every job index below jobs.len() was claimed exactly once")
        })
        .collect()
}

fn percent_of(value: u64, baseline: u64) -> f64 {
    if baseline == 0 {
        0.0
    } else {
        value as f64 / baseline as f64 * 100.0
    }
}

/// Table II: the areas of the conventional baseline and of the L-NUCA
/// configurations, both as published and as computed by the analytical area
/// model.
#[must_use]
pub fn area_table() -> Vec<AreaRow> {
    const KB: u64 = 1024;
    let model = AreaModel::paper();
    let configs = [
        ("L2-256KB", None),
        ("LN2-72KB", Some(5usize)),
        ("LN3-144KB", Some(14)),
        ("LN4-248KB", Some(27)),
    ];
    configs
        .iter()
        .map(|(label, tiles)| {
            let (model_mm2, model_net) = match tiles {
                None => (model.conventional_mm2(32 * KB, 256 * KB), 0.0),
                Some(t) => (
                    model.lnuca_mm2(32 * KB, *t, 8 * KB),
                    model.lnuca_network_percent(32 * KB, *t, 8 * KB),
                ),
            };
            let paper = PAPER_TABLE2.iter().find(|row| row.name == *label);
            AreaRow {
                label: (*label).to_owned(),
                paper_mm2: paper.map(|p| p.area_mm2),
                model_mm2,
                paper_network_pct: paper.map(|p| p.network_percent),
                model_network_pct: model_net,
            }
        })
        .collect()
}

/// The headline comparison (abstract/§V-A): LN3-144KB versus L2-256KB in
/// area, IPC and energy. Uses the given conventional [`Study`] for the
/// simulated quantities and the area model for the area.
#[must_use]
pub fn headline(study: &Study) -> HeadlineSummary {
    let areas = area_table();
    let base_area = areas
        .iter()
        .find(|a| a.label == "L2-256KB")
        .map(|a| a.model_mm2)
        .unwrap_or(1.0);
    let ln3_area = areas
        .iter()
        .find(|a| a.label == "LN3-144KB")
        .map(|a| a.model_mm2)
        .unwrap_or(base_area);

    let ipc = study.ipc_summary();
    let ln3_ipc = ipc.iter().find(|r| r.label.starts_with("LN3"));
    let energy = study.energy_summary();
    let ln3_energy = energy.iter().find(|r| r.label.starts_with("LN3"));

    HeadlineSummary {
        area_change_pct: (ln3_area / base_area - 1.0) * 100.0,
        int_ipc_gain_pct: ln3_ipc.map(|r| r.int_gain_pct).unwrap_or(0.0),
        fp_ipc_gain_pct: ln3_ipc.map(|r| r.fp_gain_pct).unwrap_or(0.0),
        energy_change_pct: ln3_energy.map(|r| (r.total - 1.0) * 100.0).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the built-in conventional paper plan.
    fn conventional(opts: &ExperimentOptions) -> Result<Study, ConfigError> {
        Study::run(&ExperimentPlan::paper_conventional(opts)?)
    }

    /// Runs the built-in D-NUCA paper plan.
    fn dnuca(opts: &ExperimentOptions) -> Result<Study, ConfigError> {
        Study::run(&ExperimentPlan::paper_dnuca(opts)?)
    }

    #[test]
    fn area_table_contains_all_four_configurations_and_paper_values() {
        let rows = area_table();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].label, "L2-256KB");
        assert_eq!(rows[0].paper_mm2, Some(0.91));
        assert!(rows[2].model_mm2 < rows[0].model_mm2, "LN3 saves area vs the baseline");
        assert!(rows[3].model_mm2 > rows[0].model_mm2, "LN4 costs more area");
        assert!(rows[1].model_network_pct > 0.0);
    }

    #[test]
    fn quick_conventional_study_produces_all_summaries() {
        let opts = ExperimentOptions::quick();
        let study = conventional(&opts).unwrap();
        // 3 configs (baseline + LN2 + LN3) x 4 workloads (2 per suite).
        assert_eq!(study.configs.len(), 3);
        assert_eq!(study.results.len(), 3 * 4);

        let ipc = study.ipc_summary();
        assert_eq!(ipc.len(), 3);
        assert_eq!(ipc[0].label, "L2-256KB");
        assert!(ipc.iter().all(|r| r.int_ipc > 0.0 && r.fp_ipc > 0.0));
        assert!((ipc[0].int_gain_pct).abs() < 1e-9, "baseline gain is zero by definition");

        let energy = study.energy_summary();
        assert_eq!(energy.len(), 3);
        assert!((energy[0].total - 1.0).abs() < 1e-9, "baseline normalises to 1.0");
        assert!(energy.iter().all(|r| r.static_last > 0.0));

        let hits = study.hit_distribution();
        // Two suites per L-NUCA configuration.
        assert_eq!(hits.len(), 2 * 2);
        for row in &hits {
            assert!(row.avg_to_min_transport >= 1.0);
            assert!(row.all_levels_percent >= 0.0);
            assert!(!row.level_percent.is_empty());
        }
    }

    #[test]
    fn quick_dnuca_study_runs() {
        let mut opts = ExperimentOptions::quick();
        opts.lnuca_levels = vec![2];
        opts.benchmarks_per_suite = Some(1);
        let study = dnuca(&opts).unwrap();
        assert_eq!(study.baseline, "DN-4x8");
        assert_eq!(study.configs.len(), 2);
        let ipc = study.ipc_summary();
        assert!(ipc.iter().all(|r| r.int_ipc > 0.0));
        let energy = study.energy_summary();
        assert!((energy[0].total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn workload_selection_steers_the_matrix() {
        let mut opts = ExperimentOptions::quick();
        opts.instructions = 1_000;
        opts.lnuca_levels = vec![2];
        opts.benchmarks_per_suite = None;

        opts.workloads = WorkloadSelection::Adversarial;
        let adv = conventional(&opts).unwrap();
        // 2 configs x 7 adversarial classes.
        assert_eq!(adv.results.len(), 2 * 7);
        assert!(adv.results.iter().any(|r| r.workload == "adv.pointer_chase"));

        opts.workloads = WorkloadSelection::Named(vec![
            "ADV.GUPS".to_owned(),
            "int.compress".to_owned(),
        ]);
        let named = conventional(&opts).unwrap();
        assert_eq!(named.results.len(), 2 * 2);
        assert_eq!(named.results[0].workload, "adv.gups", "names resolve case-insensitively");

        opts.workloads = WorkloadSelection::Named(vec!["no.such.workload".to_owned()]);
        let err = conventional(&opts).unwrap_err().to_string();
        assert!(err.contains("no.such.workload"));
        assert!(err.contains("adv.phase_mix"), "error lists the valid names: {err}");
    }

    #[test]
    fn extended_selection_appends_the_adversarial_classes() {
        let mut opts = ExperimentOptions::quick();
        opts.instructions = 500;
        opts.lnuca_levels = vec![2];
        opts.benchmarks_per_suite = Some(1);
        opts.workloads = WorkloadSelection::Extended;
        let study = conventional(&opts).unwrap();
        // 2 configs x (1 INT + 1 FP + 1 adversarial) — the per-suite cap
        // applies to the adversarial group too.
        assert_eq!(study.results.len(), 2 * 3);
    }

    #[test]
    fn zero_knobs_are_rejected_at_plan_validation() {
        let spec = HierarchyKind::Conventional(configs::conventional()).to_spec();
        let mut opts = ExperimentOptions::quick();
        opts.batch_size = 0;
        let err = ExperimentPlan::builder("zero-batch")
            .config(spec.clone())
            .options(opts)
            .build()
            .unwrap_err()
            .to_string();
        assert!(err.contains("batch_size"), "the offending knob is named: {err}");
        assert!(err.contains("LNUCA_BATCH"), "the env spelling is named too: {err}");

        let mut opts = ExperimentOptions::quick();
        opts.benchmarks_per_suite = Some(0);
        let err = ExperimentPlan::builder("zero-benchmarks")
            .config(spec)
            .options(opts)
            .build()
            .unwrap_err()
            .to_string();
        assert!(err.contains("benchmarks_per_suite"), "the offending knob is named: {err}");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mut opts = ExperimentOptions::quick();
        opts.instructions = 3_000;
        opts.lnuca_levels = vec![2];
        let sequential = conventional(&opts).unwrap();
        opts.threads = 3;
        let parallel = conventional(&opts).unwrap();
        assert_eq!(sequential.results, parallel.results);
        assert_eq!(sequential.configs, parallel.configs);
        // Perf is recorded for every run either way (values are host noise).
        assert_eq!(parallel.perf.len(), parallel.results.len());
        assert!(parallel.perf.iter().all(|p| p.wall_nanos > 0 && p.cycles > 0));
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let mut opts = ExperimentOptions::quick();
        opts.instructions = 2_000;
        opts.lnuca_levels = vec![2];
        let sequential = conventional(&opts).unwrap();
        for batch_size in [2, 3, usize::MAX] {
            opts.batch_size = batch_size;
            let batched = conventional(&opts).unwrap();
            assert_eq!(sequential.results, batched.results, "batch size {batch_size}");
            assert_eq!(batched.perf.len(), batched.results.len());
            assert!(batched.perf.iter().all(|p| p.cycles > 0));
        }
        // Batches fanned out over workers compose with thread isolation.
        opts.threads = 2;
        opts.batch_size = 3;
        let both = conventional(&opts).unwrap();
        assert_eq!(sequential.results, both.results);
    }

    #[test]
    fn oversubscribed_thread_count_is_clamped_to_the_job_count() {
        let mut opts = ExperimentOptions::quick();
        opts.instructions = 1_000;
        opts.lnuca_levels = vec![2];
        opts.benchmarks_per_suite = Some(1);
        opts.threads = 64;
        let study = conventional(&opts).unwrap();
        assert_eq!(study.results.len(), 2 * 2);
        assert_eq!(study.perf.len(), study.results.len());
    }

    #[test]
    fn headline_uses_ln3_when_present() {
        let mut opts = ExperimentOptions::quick();
        opts.lnuca_levels = vec![3];
        opts.benchmarks_per_suite = Some(1);
        let study = conventional(&opts).unwrap();
        let h = headline(&study);
        assert!(h.area_change_pct < 0.0, "LN3 must save area vs L2-256KB");
        assert!(h.int_ipc_gain_pct.is_finite());
        assert!(h.energy_change_pct.is_finite());
    }

    #[test]
    fn raised_stop_signal_fails_every_unstarted_run_without_simulating() {
        let mut opts = ExperimentOptions::quick();
        opts.instructions = 1_000;
        opts.lnuca_levels = vec![2];
        opts.benchmarks_per_suite = Some(1);
        let plan = ExperimentPlan::paper_conventional(&opts).unwrap();

        let stop = StopSignal::new();
        stop.cancel();
        stop.shutdown(); // the first raise wins
        let study = Study::run_controlled(&plan, None, false, &stop).unwrap();
        assert!(study.results.is_empty(), "no run may start after the signal");
        assert_eq!(study.failures.len(), 2 * 2);
        assert!(study
            .failures
            .iter()
            .all(|f| f.error == lnuca_types::RunError::Cancelled && f.attempts == 0));

        // An unraised signal is invisible: bit-identical to Study::run.
        let baseline = Study::run(&plan).unwrap();
        let unstopped = Study::run_controlled(&plan, None, false, &StopSignal::new()).unwrap();
        assert_eq!(baseline.results, unstopped.results);
        assert!(unstopped.failures.is_empty());
    }

    #[test]
    fn stopped_batched_study_reports_the_stop_per_member() {
        let mut opts = ExperimentOptions::quick();
        opts.instructions = 1_000;
        opts.lnuca_levels = vec![2];
        opts.benchmarks_per_suite = Some(1);
        opts.batch_size = 3;
        let plan = ExperimentPlan::paper_dnuca(&opts).unwrap();

        let stop = StopSignal::new();
        stop.shutdown();
        let study = Study::run_controlled(&plan, None, false, &stop).unwrap();
        assert!(study.results.is_empty());
        assert_eq!(study.failures.len(), 2 * 2);
        assert!(study.failures.iter().all(|f| f.error == lnuca_types::RunError::Shutdown));
    }
}
