//! Plain-text table formatting shared by the experiment binaries.

/// Formats a fixed-width text table with a header row, a separator and one
/// line per data row. Columns are sized to their widest cell.
///
/// # Example
///
/// ```
/// use lnuca_sim::report::format_table;
///
/// let table = format_table(
///     &["config", "IPC"],
///     &[vec!["L2-256KB".to_owned(), "1.02".to_owned()]],
/// );
/// assert!(table.contains("L2-256KB"));
/// assert!(table.lines().count() >= 3);
/// ```
#[must_use]
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }

    let mut out = String::new();
    let format_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_owned()
    };

    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&format_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&format_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a ratio as a signed percentage change (`+6.1%`, `-5.3%`).
#[must_use]
pub fn percent_change(new: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        return "n/a".to_owned();
    }
    let change = (new / baseline - 1.0) * 100.0;
    format!("{change:+.1}%")
}

/// Formats a fraction (0.0–1.0+) as a percentage with one decimal.
#[must_use]
pub fn percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".to_owned(), "1".to_owned()],
                vec!["long-name".to_owned(), "2.345".to_owned()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn percent_helpers() {
        assert_eq!(percent_change(1.061, 1.0), "+6.1%");
        assert_eq!(percent_change(0.947, 1.0), "-5.3%");
        assert_eq!(percent_change(1.0, 0.0), "n/a");
        assert_eq!(percent(0.596), "59.6%");
    }
}
