//! Run supervision: panic isolation, watchdogs and bounded retry
//! (DESIGN.md §14).
//!
//! The experiment engine fans thousands of jobs across workers and batches;
//! at that scale one poisoned run — a panic in a hot loop, a livelocked
//! horizon heap, a runaway configuration — must not take down a whole
//! study. This module wraps every job and every batch behind a
//! [`Supervisor`]:
//!
//! * **Panic isolation.** Each solo job and each whole batch runs under
//!   `catch_unwind`; a panic becomes a structured
//!   [`RunError::Panic`] instead of unwinding through the worker pool.
//! * **Watchdogs.** A [`JobGuard`] observes the run loop once per engine
//!   iteration and trips on a cycle budget, a no-commit livelock window or
//!   a wall-clock timeout (the budget fields of
//!   [`ExperimentOptions`]). Guards are generic
//!   ([`RunGuard`]) so the unbudgeted path compiles to the exact loop it
//!   was before supervision existed — bit-identity and the zero-allocation
//!   pin are untouched.
//! * **Batch quarantine.** When a batch unwinds, the surviving members are
//!   not lost: every member is re-run solo (which is bit-identical to its
//!   batched run by the batch-equivalence invariant, DESIGN.md §13), so
//!   only the poisoned member fails and its siblings' results are exactly
//!   their solo baselines.
//! * **Bounded retry.** Transient failures (panic, wall-clock timeout) get
//!   up to [`ExperimentOptions::retries`] extra attempts; deterministic
//!   trips (cycle budget, livelock) reproduce identically and are never
//!   retried.
//!
//! The deterministic fault-injection hook ([`install_fault_hook`]) is the
//! seam the `lnuca_verify::chaos` harness uses to schedule panics and
//! watchdog trips at exact cycles; it is process-global, off by default,
//! and costs one relaxed atomic load per guard construction when unarmed.

use crate::batch::{BatchJob, BatchRunner};
use crate::experiments::{ExperimentOptions, RunPerf};
use crate::spec::HierarchySpec;
use crate::system::{Engine, RunResult, System};
use lnuca_mem::NoProbe;
use lnuca_types::{Cycle, RunError};
use lnuca_workloads::WorkloadProfile;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often (in loop observations) a guard samples the wall clock: the
/// first observation, then every 1024th. `Instant::now` is far cheaper
/// than a simulated cycle, but the hot loop should still not pay a syscall
/// per iteration.
const WALL_CHECK_PERIOD: u64 = 1024;

/// A watchdog observing a run loop.
///
/// [`System::run_spec_guarded`] and the batched
/// [`BatchRunner`] call [`RunGuard::observe`] at the top
/// of every engine iteration and bound event-horizon jumps by
/// [`RunGuard::horizon_clamp`]. The trait is generic (not `dyn`) on the
/// solo path so [`NoGuard`] compiles to nothing.
pub trait RunGuard {
    /// Observes one loop iteration at `now` with `committed` instructions
    /// retired so far. Returning an error aborts the run with that failure.
    ///
    /// # Errors
    ///
    /// A [`RunError`] when a watchdog trips (or a fault hook injects one).
    fn observe(&mut self, now: Cycle, committed: u64) -> Result<(), RunError>;

    /// The latest cycle the event-horizon engine may jump to without
    /// skipping an observation this guard needs (`None` = unbounded). The
    /// engine clamps its jump target to `max(now + 1, clamp)`; ticking at a
    /// non-event cycle is a no-op state-wise (the cycle-step engine proves
    /// this every run), so clamping never changes results — it only
    /// guarantees deterministic trip cycles.
    fn horizon_clamp(&self) -> Option<u64> {
        None
    }
}

/// The no-op guard of every unsupervised run: observes nothing, clamps
/// nothing, compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoGuard;

impl RunGuard for NoGuard {
    #[inline(always)]
    fn observe(&mut self, _now: Cycle, _committed: u64) -> Result<(), RunError> {
        Ok(())
    }
}

/// The watchdog budgets of one run, derived from the budget fields of
/// [`ExperimentOptions`] (`None` everywhere = supervision without
/// watchdogs: panics are still isolated, nothing ever trips).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budgets {
    /// Abort when the simulated clock reaches this cycle with the workload
    /// unfinished ([`ExperimentOptions::cycle_budget`]).
    pub cycle_budget: Option<u64>,
    /// Abort when a run's wall clock exceeds this many milliseconds
    /// ([`ExperimentOptions::run_timeout_ms`]).
    pub run_timeout_ms: Option<u64>,
    /// Abort when no instruction commits for this many consecutive cycles
    /// ([`ExperimentOptions::livelock_window`]).
    pub livelock_window: Option<u64>,
}

impl Budgets {
    /// Extracts the budget fields from run options.
    #[must_use]
    pub fn from_options(options: &ExperimentOptions) -> Self {
        Budgets {
            cycle_budget: options.cycle_budget,
            run_timeout_ms: options.run_timeout_ms,
            livelock_window: options.livelock_window,
        }
    }

    /// Whether any watchdog is armed.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.cycle_budget.is_some() || self.run_timeout_ms.is_some() || self.livelock_window.is_some()
    }
}

/// The identity of one supervised run attempt, handed to the fault hook on
/// every observation so injected faults can target exact runs and attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunKey {
    /// Configuration label of the run.
    pub label: String,
    /// Workload name of the run.
    pub workload: String,
    /// Trace seed of the run.
    pub seed: u64,
    /// Zero-based attempt number (0 = first try; retries and the solo
    /// quarantine fallback of an unwound batch count up from there).
    pub attempt: u32,
}

/// A deterministic fault hook: observes `(key, cycle, committed)` at every
/// guarded loop iteration and may inject a failure by returning it — or
/// model a hard crash by panicking. See [`install_fault_hook`].
pub type FaultHook = dyn Fn(&RunKey, u64, u64) -> Option<RunError> + Send + Sync;

static FAULT_ARMED: AtomicBool = AtomicBool::new(false);
static FAULT_HOOK: Mutex<Option<Arc<FaultHook>>> = Mutex::new(None);

/// Installs the process-global fault-injection hook (replacing any previous
/// one). **Test harness seam** — `lnuca_verify::chaos` schedules panics and
/// watchdog trips through it; production runs never install one. Guards
/// snapshot the hook at construction, so a swap mid-run affects only runs
/// started afterwards.
pub fn install_fault_hook(hook: Arc<FaultHook>) {
    *lock_hook() = Some(hook);
    FAULT_ARMED.store(true, Ordering::SeqCst);
}

/// Removes the fault-injection hook (no-op when none is installed).
pub fn clear_fault_hook() {
    FAULT_ARMED.store(false, Ordering::SeqCst);
    *lock_hook() = None;
}

fn lock_hook() -> std::sync::MutexGuard<'static, Option<Arc<FaultHook>>> {
    // A hook that panicked while a test held the lock must not poison every
    // later test: the Option inside is always valid.
    FAULT_HOOK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn current_fault_hook() -> Option<Arc<FaultHook>> {
    if !FAULT_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    lock_hook().clone()
}

/// The per-run watchdog: budgets plus the fault-hook snapshot for one
/// attempt. Constructed by a [`Supervisor`]; observation does not allocate
/// (the steady-state zero-allocation pin of DESIGN.md §9 covers guarded
/// batches too).
pub struct JobGuard {
    key: RunKey,
    cycle_budget: Option<u64>,
    timeout: Option<Duration>,
    timeout_ms: u64,
    livelock_window: Option<u64>,
    hook: Option<Arc<FaultHook>>,
    started: Instant,
    observed: u64,
    last_committed: u64,
    last_commit_cycle: u64,
}

impl std::fmt::Debug for JobGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobGuard")
            .field("key", &self.key)
            .field("cycle_budget", &self.cycle_budget)
            .field("timeout", &self.timeout)
            .field("livelock_window", &self.livelock_window)
            .field("hooked", &self.hook.is_some())
            .field("observed", &self.observed)
            .finish()
    }
}

impl JobGuard {
    fn new(key: RunKey, budgets: Budgets, hook: Option<Arc<FaultHook>>) -> Self {
        JobGuard {
            key,
            cycle_budget: budgets.cycle_budget,
            timeout: budgets.run_timeout_ms.map(Duration::from_millis),
            timeout_ms: budgets.run_timeout_ms.unwrap_or(0),
            livelock_window: budgets.livelock_window,
            hook,
            started: Instant::now(),
            observed: 0,
            last_committed: 0,
            last_commit_cycle: 0,
        }
    }
}

impl RunGuard for JobGuard {
    fn observe(&mut self, now: Cycle, committed: u64) -> Result<(), RunError> {
        self.observed = self.observed.wrapping_add(1);
        if let Some(hook) = &self.hook {
            if let Some(err) = hook(&self.key, now.0, committed) {
                return Err(err);
            }
        }
        if committed > self.last_committed {
            self.last_committed = committed;
            self.last_commit_cycle = now.0;
        }
        if let Some(budget) = self.cycle_budget {
            if now.0 >= budget {
                return Err(RunError::CycleBudgetExceeded { budget, at_cycle: now.0 });
            }
        }
        if let Some(window) = self.livelock_window {
            if now.0.saturating_sub(self.last_commit_cycle) >= window {
                return Err(RunError::Livelock { window, at_cycle: now.0, committed });
            }
        }
        if let Some(timeout) = self.timeout {
            // Sampled: the first observation (so a zero timeout trips
            // deterministically before any work) and then periodically.
            if self.observed % WALL_CHECK_PERIOD == 1 && self.started.elapsed() >= timeout {
                return Err(RunError::WallClockTimeout { timeout_ms: self.timeout_ms });
            }
        }
        Ok(())
    }

    fn horizon_clamp(&self) -> Option<u64> {
        let mut clamp = self.cycle_budget;
        if let Some(window) = self.livelock_window {
            let lw = self.last_commit_cycle.saturating_add(window);
            clamp = Some(clamp.map_or(lw, |c| c.min(lw)));
        }
        clamp
    }
}

/// The outcome of one supervised run: the result-plus-perf pair on success,
/// the structured failure otherwise, and how many attempts were spent
/// (1 = first try succeeded or the failure was deterministic).
#[derive(Debug)]
pub struct SupervisedOutcome {
    /// The run's result, or why it could not produce one.
    pub outcome: Result<(RunResult, RunPerf), RunError>,
    /// Total attempts consumed (batch pass + retries).
    pub attempts: u32,
}

/// Supervision policy for a set of runs: watchdog budgets plus the bounded
/// retry count, derived from one [`ExperimentOptions`]. Cheap to copy and
/// `Sync` — one instance drives every worker of a study.
#[derive(Debug, Clone, Copy, Default)]
pub struct Supervisor {
    /// Watchdog budgets applied to every run.
    pub budgets: Budgets,
    /// Extra attempts granted to transiently-failed runs
    /// ([`RunError::is_transient`]); deterministic trips never retry.
    pub retries: u32,
}

impl Supervisor {
    /// Derives the policy from run options.
    #[must_use]
    pub fn from_options(options: &ExperimentOptions) -> Self {
        Supervisor {
            budgets: Budgets::from_options(options),
            retries: options.retries,
        }
    }

    /// Builds the guard for one run attempt — `None` when no watchdog is
    /// armed and no fault hook is installed, so the unsupervised fast path
    /// (bit-identical, zero observation overhead) is taken.
    #[must_use]
    pub fn guard(&self, label: &str, workload: &str, seed: u64, attempt: u32) -> Option<JobGuard> {
        let hook = current_fault_hook();
        if !self.budgets.is_active() && hook.is_none() {
            return None;
        }
        Some(JobGuard::new(
            RunKey {
                label: label.to_owned(),
                workload: workload.to_owned(),
                seed,
                attempt,
            },
            self.budgets,
            hook,
        ))
    }
}

/// A cooperative stop signal shared between a running study and an outside
/// controller — the seam behind the serve daemon's per-job cancellation and
/// its SIGTERM graceful drain.
///
/// The worker pool checks the signal before claiming each job (and each
/// batch): once raised, every not-yet-started run of the study fails with
/// the carried [`RunError`] (`Cancelled` or `Shutdown`) instead of
/// executing. Runs already in flight finish normally — a stop is clean at
/// run granularity, so every result the study does produce is bit-identical
/// to an unstopped run's, and a journaled study resumes byte-identically.
///
/// The first raise wins: a cancel followed by a shutdown (or vice versa)
/// keeps the first reason, so a job's failure rows all carry one status.
#[derive(Clone, Debug, Default)]
pub struct StopSignal {
    /// 0 = run, 1 = cancelled, 2 = shutdown. First writer wins.
    state: Arc<AtomicU8>,
}

impl StopSignal {
    const RUN: u8 = 0;
    const CANCELLED: u8 = 1;
    const SHUTDOWN: u8 = 2;

    /// A fresh, unraised signal.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the signal with [`RunError::Cancelled`] (no-op if already
    /// raised).
    pub fn cancel(&self) {
        let _ = self.state.compare_exchange(
            Self::RUN,
            Self::CANCELLED,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Raises the signal with [`RunError::Shutdown`] (no-op if already
    /// raised).
    pub fn shutdown(&self) {
        let _ = self.state.compare_exchange(
            Self::RUN,
            Self::SHUTDOWN,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Whether the signal has been raised.
    #[must_use]
    pub fn is_raised(&self) -> bool {
        self.state.load(Ordering::Acquire) != Self::RUN
    }

    /// The failure every not-yet-started run reports once the signal is
    /// raised (`None` while the study should keep running).
    #[must_use]
    pub fn error(&self) -> Option<RunError> {
        match self.state.load(Ordering::Acquire) {
            Self::CANCELLED => Some(RunError::Cancelled),
            Self::SHUTDOWN => Some(RunError::Shutdown),
            _ => None,
        }
    }
}

/// Renders a caught panic payload (the `&str`/`String` payloads `panic!`
/// produces; anything else becomes a placeholder). Public so outer
/// quarantine layers (the serve daemon's per-job `catch_unwind`) report
/// panics the same way the per-run supervision does.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// [`RunPerf`] of a solo run, mirroring the pre-supervision math exactly.
fn perf_of(result: &RunResult, wall: Duration) -> RunPerf {
    let wall_nanos = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
    let seconds = wall.as_secs_f64();
    RunPerf {
        label: result.label.clone(),
        workload: result.workload.clone(),
        wall_nanos,
        cycles: result.cycles,
        kcycles_per_sec: if seconds > 0.0 {
            result.cycles as f64 / 1_000.0 / seconds
        } else {
            0.0
        },
    }
}

/// Runs one job under full supervision: panic isolation, watchdogs and
/// bounded retry. Never panics, never aborts the caller — every failure
/// comes back as a structured [`RunError`].
#[must_use]
pub fn run_job_supervised(
    engine: Engine,
    spec: &HierarchySpec,
    profile: &WorkloadProfile,
    instructions: u64,
    seed: u64,
    supervisor: &Supervisor,
) -> SupervisedOutcome {
    run_job_from_attempt(engine, spec, profile, instructions, seed, supervisor, 0)
}

/// The retry loop behind [`run_job_supervised`], starting at
/// `first_attempt` (the batch quarantine fallback enters at 1: the batch
/// pass was attempt 0).
fn run_job_from_attempt(
    engine: Engine,
    spec: &HierarchySpec,
    profile: &WorkloadProfile,
    instructions: u64,
    seed: u64,
    supervisor: &Supervisor,
    first_attempt: u32,
) -> SupervisedOutcome {
    let label = spec.label();
    let mut attempt = first_attempt;
    loop {
        let started = Instant::now();
        let run = catch_unwind(AssertUnwindSafe(|| {
            match supervisor.guard(&label, &profile.name, seed, attempt) {
                Some(mut guard) => System::run_spec_guarded(
                    engine,
                    spec,
                    profile,
                    instructions,
                    seed,
                    NoProbe,
                    &mut guard,
                )
                .map(|(result, _)| result),
                None => System::run_spec_with(engine, spec, profile, instructions, seed)
                    .map_err(RunError::from),
            }
        }));
        let error = match run {
            Ok(Ok(result)) => {
                let perf = perf_of(&result, started.elapsed());
                return SupervisedOutcome {
                    outcome: Ok((result, perf)),
                    attempts: attempt + 1,
                };
            }
            Ok(Err(err)) => err,
            Err(payload) => RunError::Panic {
                message: panic_message(payload.as_ref()),
            },
        };
        // `retries` bounds the total extra attempts a run ever gets,
        // counting a lost batch pass: entering at `first_attempt = 1`
        // leaves `retries - 1` further solo attempts.
        if error.is_transient() && attempt < supervisor.retries {
            attempt += 1;
            continue;
        }
        return SupervisedOutcome {
            outcome: Err(error),
            attempts: attempt + 1,
        };
    }
}

/// Runs one contiguous batch under supervision.
///
/// The whole batch runs under one `catch_unwind`; per-member watchdog trips
/// are clean (the member quarantines, its siblings keep stepping). When the
/// batch itself unwinds — one member panicked mid-tick, poisoning the
/// shared heap — every member falls back to a supervised **solo** run
/// (attempt 1): solo results are bit-identical to batched ones
/// (DESIGN.md §13), so the survivors' results are exactly their solo
/// baselines and only the poisoned member (whose fault re-fires
/// deterministically) reports a failure.
///
/// Per-run wall clock is unmeasurable inside a lockstep batch, so the
/// batch's wall time is attributed to surviving members in proportion to
/// their simulated cycles, as the unsupervised batch path always did.
#[must_use]
pub fn run_batch_supervised(
    engine: Engine,
    jobs: &[BatchJob<'_>],
    supervisor: &Supervisor,
) -> Vec<SupervisedOutcome> {
    let started = Instant::now();
    let batch_pass = catch_unwind(AssertUnwindSafe(|| {
        let runner = BatchRunner::with_supervision(engine, jobs, || NoProbe, |i| {
            supervisor.guard(&jobs[i].spec.label(), &jobs[i].profile.name, jobs[i].seed, 0)
        })?;
        Ok::<_, lnuca_types::ConfigError>(
            runner
                .run_outcomes()
                .into_iter()
                .map(|(outcome, _)| outcome)
                .collect::<Vec<_>>(),
        )
    }));
    let wall = started.elapsed();

    let outcomes = match batch_pass {
        // The batch unwound: quarantine. Re-run every member solo from
        // attempt 1 (the batch pass was everyone's attempt 0).
        Err(_payload) => {
            return jobs
                .iter()
                .map(|job| {
                    run_job_from_attempt(
                        engine,
                        job.spec,
                        job.profile,
                        job.instructions,
                        job.seed,
                        supervisor,
                        1,
                    )
                })
                .collect();
        }
        Ok(Err(config)) => {
            return jobs
                .iter()
                .map(|_| SupervisedOutcome {
                    outcome: Err(RunError::Config(config.clone())),
                    attempts: 1,
                })
                .collect();
        }
        Ok(Ok(outcomes)) => outcomes,
    };

    let total_cycles: u64 = outcomes
        .iter()
        .filter_map(|o| o.as_ref().ok())
        .map(|r| r.cycles)
        .sum();
    outcomes
        .into_iter()
        .zip(jobs)
        .map(|(outcome, job)| match outcome {
            Ok(result) => {
                let share = if total_cycles == 0 {
                    1.0 / jobs.len().max(1) as f64
                } else {
                    result.cycles as f64 / total_cycles as f64
                };
                let seconds = wall.as_secs_f64() * share;
                let perf = RunPerf {
                    label: result.label.clone(),
                    workload: result.workload.clone(),
                    wall_nanos: (wall.as_nanos() as f64 * share) as u64,
                    cycles: result.cycles,
                    kcycles_per_sec: if seconds > 0.0 {
                        result.cycles as f64 / 1_000.0 / seconds
                    } else {
                        0.0
                    },
                };
                SupervisedOutcome {
                    outcome: Ok((result, perf)),
                    attempts: 1,
                }
            }
            // A clean member trip inside the batch: transient failures get
            // their solo retries, deterministic trips are final.
            Err(err) if err.is_transient() && supervisor.retries > 0 => run_job_from_attempt(
                engine,
                job.spec,
                job.profile,
                job.instructions,
                job.seed,
                supervisor,
                1,
            ),
            Err(err) => SupervisedOutcome {
                outcome: Err(err),
                attempts: 1,
            },
        })
        .collect()
}
