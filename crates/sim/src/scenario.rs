//! Scenario files: the on-disk, declarative form of an [`ExperimentPlan`].
//!
//! A scenario is a JSON document (`lnuca-scenario/v1`) naming a set of
//! [`HierarchySpec`] configurations and the run options to drive them with.
//! The `lnuca` CLI loads scenarios from files or from the built-in registry
//! ([`builtin`]), layers the `LNUCA_*` environment knobs on top, runs them
//! through [`Study::run`](crate::experiments::Study::run) and emits an
//! `lnuca-report/v1` document next to the text tables.
//!
//! Parsing is **strict**: unknown object keys are rejected with their path
//! (schema drift in a committed scenario file fails CI instead of being
//! silently ignored), integers are range-checked, and name lookups (built-in
//! scenarios, presets, workload names) fail with the full valid-name list
//! through the shared [`UnknownNameError`] type.
//!
//! The document model is the vendored `serde::json` shim (the offline
//! container has no real serde); every type converts explicitly through
//! [`Value`], which is also what keeps the unknown-field rejection exact.
//!
//! # Scenario schema (`lnuca-scenario/v1`)
//!
//! ```json
//! {
//!   "schema": "lnuca-scenario/v1",
//!   "name": "paper-conventional",
//!   "description": "...",
//!   "options": {
//!     "instructions": 100000, "seed": 1, "benchmarks_per_suite": null,
//!     "workloads": "paper", "threads": 0, "engine": "event",
//!     "batch_size": 1
//!   },
//!   "configs": [
//!     {"preset": "conventional"},
//!     {"preset": "lnuca-l3", "levels": 3},
//!     {"label": "LN3 big tiles",
//!      "fabric": {"levels": 3, "tile_size_bytes": 16384},
//!      "backing": {"kind": "cache", "cache": {"preset": "paper-l3"}}}
//!   ]
//! }
//! ```
//!
//! Every `configs` entry starts from a preset (or from the builder default:
//! paper L1 root, no fabric, memory backing) and overrides components;
//! cache/fabric/D-NUCA objects work the same way (`preset` + field
//! overrides). `"workloads"` is a keyword or an explicit name array;
//! `"threads": 0` means "auto" (the CLI resolves it to the hardware thread
//! count; [`Study::run`](crate::experiments::Study::run) itself treats it
//! as 1). DESIGN.md §12 documents the full schema and the layering rules.

use crate::configs;
use crate::experiments::{ExperimentOptions, ExperimentPlan, Study, WorkloadSelection};
use crate::spec::{BackingSpec, HierarchySpec, IntermediateSpec};
use crate::system::Engine;
use lnuca_core::LNucaConfig;
use lnuca_dnuca::{DNucaConfig, SearchPolicy};
use lnuca_mem::{AccessMode, CacheConfig, MemoryConfig, ReplacementPolicy, WritePolicy};
use lnuca_types::{ConfigError, UnknownNameError};
use serde::json::{self, Value};
use std::fmt;

/// Schema identifier of scenario documents.
pub const SCENARIO_SCHEMA: &str = "lnuca-scenario/v1";
/// Schema identifier of report documents.
pub const REPORT_SCHEMA: &str = "lnuca-report/v1";

/// A named experiment plan plus its human-readable description — the
/// in-memory form of one scenario file.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// What the scenario evaluates (one sentence, shown by `lnuca list`).
    pub description: String,
    /// The plan to run.
    pub plan: ExperimentPlan,
}

impl Scenario {
    /// The scenario name (the plan's name).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.plan.name
    }

    /// Renders the scenario as a canonical `lnuca-scenario/v1` document
    /// (fully explicit — presets are expanded — pretty-printed, stable
    /// under round trips).
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().to_pretty()
    }

    /// The scenario as a JSON [`Value`] tree.
    #[must_use]
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("schema".to_owned(), Value::String(SCENARIO_SCHEMA.to_owned())),
            ("name".to_owned(), Value::String(self.plan.name.clone())),
            ("description".to_owned(), Value::String(self.description.clone())),
            ("options".to_owned(), options_to_value(&self.plan.options)),
            (
                "configs".to_owned(),
                Value::Array(self.plan.configs.iter().map(spec_to_value).collect()),
            ),
        ])
    }

    /// Parses a scenario document.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] on JSON syntax errors, schema violations
    /// (including unknown fields), unknown preset names or invalid
    /// configurations.
    pub fn from_json(text: &str) -> Result<Self, ScenarioError> {
        Self::from_value(&json::parse(text)?)
    }

    /// Converts a parsed JSON tree into a scenario.
    ///
    /// # Errors
    ///
    /// See [`Scenario::from_json`].
    pub fn from_value(value: &Value) -> Result<Self, ScenarioError> {
        let mut fields = Fields::new("$", value)?;
        let schema = fields.required_str("schema")?;
        if schema != SCENARIO_SCHEMA {
            return Err(ScenarioError::schema(
                "$.schema",
                format!("expected {SCENARIO_SCHEMA:?}, got {schema:?}"),
            ));
        }
        let name = fields.required_str("name")?.to_owned();
        let description = fields
            .optional("description")
            .map(|v| expect_str("$.description", v))
            .transpose()?
            .unwrap_or_default()
            .to_owned();
        let options = match fields.optional("options") {
            Some(v) => options_from_value("$.options", v)?,
            None => ExperimentOptions::default(),
        };
        let configs_value = fields.required("configs")?;
        let Some(entries) = configs_value.as_array() else {
            return Err(ScenarioError::schema(
                "$.configs",
                format!("expected an array, got {}", configs_value.type_name()),
            ));
        };
        let mut specs = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            specs.push(spec_from_value(&format!("$.configs[{i}]"), entry)?);
        }
        fields.finish()?;
        let plan = ExperimentPlan::builder(name)
            .configs(specs)
            .options(options)
            .build()?;
        Ok(Scenario { description, plan })
    }
}

/// Why a scenario document was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The text is not valid JSON.
    Parse(json::ParseError),
    /// The document violates the schema: wrong type, missing or unknown
    /// field, out-of-range value. Carries the JSON path.
    Schema {
        /// JSON path of the violation (e.g. `$.configs[1].fabric.levels`).
        path: String,
        /// What is wrong there.
        message: String,
    },
    /// A name lookup (built-in scenario, preset, workload) failed.
    Name(UnknownNameError),
    /// The document parsed but describes an invalid configuration.
    Config(ConfigError),
}

impl ScenarioError {
    fn schema(path: impl Into<String>, message: impl Into<String>) -> Self {
        ScenarioError::Schema {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(e) => write!(f, "{e}"),
            ScenarioError::Schema { path, message } => {
                write!(f, "invalid scenario at {path}: {message}")
            }
            ScenarioError::Name(e) => write!(f, "{e}"),
            ScenarioError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<json::ParseError> for ScenarioError {
    fn from(e: json::ParseError) -> Self {
        ScenarioError::Parse(e)
    }
}

impl From<UnknownNameError> for ScenarioError {
    fn from(e: UnknownNameError) -> Self {
        ScenarioError::Name(e)
    }
}

impl From<ConfigError> for ScenarioError {
    fn from(e: ConfigError) -> Self {
        ScenarioError::Config(e)
    }
}

// ---------------------------------------------------------------------------
// Strict object walking
// ---------------------------------------------------------------------------

/// Tracks which members of an object have been consumed so that
/// [`Fields::finish`] can reject unknown keys with their path.
struct Fields<'a> {
    path: String,
    members: &'a [(String, Value)],
    seen: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(path: impl Into<String>, value: &'a Value) -> Result<Self, ScenarioError> {
        let path = path.into();
        let Some(members) = value.as_object() else {
            return Err(ScenarioError::schema(
                path,
                format!("expected an object, got {}", value.type_name()),
            ));
        };
        Ok(Fields {
            path,
            seen: vec![false; members.len()],
            members,
        })
    }

    fn optional(&mut self, key: &str) -> Option<&'a Value> {
        for (i, (k, v)) in self.members.iter().enumerate() {
            if k == key {
                self.seen[i] = true;
                return if matches!(v, Value::Null) { None } else { Some(v) };
            }
        }
        None
    }

    fn required(&mut self, key: &str) -> Result<&'a Value, ScenarioError> {
        self.optional(key).ok_or_else(|| {
            ScenarioError::schema(&self.path, format!("missing required field {key:?}"))
        })
    }

    fn required_str(&mut self, key: &str) -> Result<&'a str, ScenarioError> {
        let path = format!("{}.{key}", self.path);
        expect_str(&path, self.required(key)?)
    }

    fn child_path(&self, key: &str) -> String {
        format!("{}.{key}", self.path)
    }

    /// Rejects any member that was never consumed.
    fn finish(self) -> Result<(), ScenarioError> {
        let unknown: Vec<&str> = self
            .members
            .iter()
            .zip(&self.seen)
            .filter(|(_, seen)| !**seen)
            .map(|((k, _), _)| k.as_str())
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(ScenarioError::schema(
                self.path,
                format!("unknown field(s): {}", unknown.join(", ")),
            ))
        }
    }
}

fn expect_str<'a>(path: &str, value: &'a Value) -> Result<&'a str, ScenarioError> {
    value.as_str().ok_or_else(|| {
        ScenarioError::schema(path, format!("expected a string, got {}", value.type_name()))
    })
}

fn expect_u64(path: &str, value: &Value) -> Result<u64, ScenarioError> {
    value.as_u64().ok_or_else(|| {
        ScenarioError::schema(
            path,
            format!("expected a non-negative integer, got {}", value.type_name()),
        )
    })
}

fn expect_bool(path: &str, value: &Value) -> Result<bool, ScenarioError> {
    value.as_bool().ok_or_else(|| {
        ScenarioError::schema(path, format!("expected a boolean, got {}", value.type_name()))
    })
}

fn expect_usize(path: &str, value: &Value) -> Result<usize, ScenarioError> {
    usize::try_from(expect_u64(path, value)?)
        .map_err(|_| ScenarioError::schema(path, "value does not fit in usize"))
}

/// Applies an optional `u64` override.
fn override_u64(
    fields: &mut Fields<'_>,
    key: &str,
    slot: &mut u64,
) -> Result<(), ScenarioError> {
    if let Some(v) = fields.optional(key) {
        *slot = expect_u64(&fields.child_path(key), v)?;
    }
    Ok(())
}

fn override_usize(
    fields: &mut Fields<'_>,
    key: &str,
    slot: &mut usize,
) -> Result<(), ScenarioError> {
    if let Some(v) = fields.optional(key) {
        *slot = expect_usize(&fields.child_path(key), v)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

fn options_to_value(options: &ExperimentOptions) -> Value {
    let workloads = match (&options.workloads, options.workloads.keyword()) {
        (_, Some(keyword)) => Value::String(keyword.to_owned()),
        (WorkloadSelection::Named(names), None) => {
            Value::Array(names.iter().map(|n| Value::String(n.clone())).collect())
        }
        _ => unreachable!("keyword() is None only for Named"),
    };
    Value::Object(vec![
        ("instructions".to_owned(), Value::UInt(options.instructions)),
        ("seed".to_owned(), Value::UInt(options.seed)),
        (
            "benchmarks_per_suite".to_owned(),
            options
                .benchmarks_per_suite
                .map_or(Value::Null, |n| Value::UInt(n as u64)),
        ),
        ("workloads".to_owned(), workloads),
        ("threads".to_owned(), Value::UInt(options.threads as u64)),
        (
            "engine".to_owned(),
            Value::String(options.engine.label().to_owned()),
        ),
        (
            "batch_size".to_owned(),
            Value::UInt(options.batch_size as u64),
        ),
        (
            "cycle_budget".to_owned(),
            options.cycle_budget.map_or(Value::Null, Value::UInt),
        ),
        (
            "run_timeout_ms".to_owned(),
            options.run_timeout_ms.map_or(Value::Null, Value::UInt),
        ),
        (
            "livelock_window".to_owned(),
            options.livelock_window.map_or(Value::Null, Value::UInt),
        ),
        ("retries".to_owned(), Value::UInt(u64::from(options.retries))),
    ])
}

fn options_from_value(path: &str, value: &Value) -> Result<ExperimentOptions, ScenarioError> {
    let mut fields = Fields::new(path, value)?;
    let mut options = ExperimentOptions::default();
    override_u64(&mut fields, "instructions", &mut options.instructions)?;
    override_u64(&mut fields, "seed", &mut options.seed)?;
    // `optional` maps JSON null to None, which here means "no cap" — the
    // field default — so null and absent coincide, as intended.
    if let Some(v) = fields.optional("benchmarks_per_suite") {
        let path = fields.child_path("benchmarks_per_suite");
        let n = expect_usize(&path, v)?;
        if n == 0 {
            return Err(ScenarioError::schema(
                &path,
                "must be at least 1 (omit or null to run every benchmark)",
            ));
        }
        options.benchmarks_per_suite = Some(n);
    }
    if let Some(v) = fields.optional("workloads") {
        let path = fields.child_path("workloads");
        options.workloads = match v {
            Value::String(keyword) => WorkloadSelection::from_keyword(keyword).ok_or_else(|| {
                ScenarioError::schema(
                    &path,
                    format!(
                        "unknown workload keyword {keyword:?} (expected paper, extended or \
                         adversarial; use an array for explicit names)"
                    ),
                )
            })?,
            Value::Array(items) => {
                let mut names = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    names.push(expect_str(&format!("{path}[{i}]"), item)?.to_owned());
                }
                // Resolve now so a typo fails at load time with the full
                // valid-name list rather than at run time.
                for name in &names {
                    lnuca_workloads::suites::by_name(name)?;
                }
                WorkloadSelection::Named(names)
            }
            other => {
                return Err(ScenarioError::schema(
                    &path,
                    format!("expected a keyword string or a name array, got {}", other.type_name()),
                ))
            }
        };
    }
    override_usize(&mut fields, "threads", &mut options.threads)?;
    if let Some(v) = fields.optional("batch_size") {
        let path = fields.child_path("batch_size");
        let n = expect_usize(&path, v)?;
        if n == 0 {
            return Err(ScenarioError::schema(
                &path,
                "must be at least 1 (a zero-wide batch would simulate nothing)",
            ));
        }
        options.batch_size = n;
    }
    // Watchdog knobs (DESIGN.md §14): null and absent both mean "off",
    // matching the field defaults.
    if let Some(v) = fields.optional("cycle_budget") {
        options.cycle_budget = Some(expect_u64(&fields.child_path("cycle_budget"), v)?);
    }
    if let Some(v) = fields.optional("run_timeout_ms") {
        options.run_timeout_ms = Some(expect_u64(&fields.child_path("run_timeout_ms"), v)?);
    }
    if let Some(v) = fields.optional("livelock_window") {
        options.livelock_window = Some(expect_u64(&fields.child_path("livelock_window"), v)?);
    }
    if let Some(v) = fields.optional("retries") {
        let path = fields.child_path("retries");
        options.retries = u32::try_from(expect_u64(&path, v)?)
            .map_err(|_| ScenarioError::schema(&path, "value does not fit in u32"))?;
    }
    if let Some(v) = fields.optional("engine") {
        let path = fields.child_path("engine");
        let raw = expect_str(&path, v)?;
        options.engine = Engine::parse(raw).ok_or_else(|| {
            ScenarioError::schema(&path, format!("unknown engine {raw:?} (expected event or cycle)"))
        })?;
    }
    fields.finish()?;
    Ok(options)
}

// ---------------------------------------------------------------------------
// Hierarchy specs
// ---------------------------------------------------------------------------

/// Serializes a spec fully explicitly (presets expanded).
#[must_use]
pub fn spec_to_value(spec: &HierarchySpec) -> Value {
    let mut members = Vec::new();
    if let Some(label) = &spec.label {
        members.push(("label".to_owned(), Value::String(label.clone())));
    }
    members.push(("root".to_owned(), cache_to_value(&spec.root)));
    if let Some(fabric) = &spec.fabric {
        members.push(("fabric".to_owned(), fabric_to_value(fabric)));
    }
    if !spec.intermediate.is_empty() {
        members.push((
            "intermediate".to_owned(),
            Value::Array(spec.intermediate.iter().map(intermediate_to_value).collect()),
        ));
    }
    members.push(("backing".to_owned(), backing_to_value(&spec.backing)));
    members.push(("memory".to_owned(), memory_to_value(&spec.memory)));
    if spec.cores > 1 {
        // Emitted only for CMP shapes, so every committed single-core
        // scenario document stays byte-identical.
        members.push(("cores".to_owned(), Value::UInt(spec.cores as u64)));
    }
    Value::Object(members)
}

/// Deserializes a spec: an optional hierarchy `preset` plus component
/// overrides, validated on the way out.
///
/// # Errors
///
/// Returns a [`ScenarioError`] on schema violations, unknown presets or an
/// invalid composition.
pub fn spec_from_value(path: &str, value: &Value) -> Result<HierarchySpec, ScenarioError> {
    let mut fields = Fields::new(path, value)?;
    // Start from the preset's spec (or the builder defaults).
    let mut spec = match fields.optional("preset") {
        Some(v) => {
            let preset_path = fields.child_path("preset");
            let name = expect_str(&preset_path, v)?;
            let levels = match fields.optional("levels") {
                Some(v) => {
                    let raw = expect_u64(&fields.child_path("levels"), v)?;
                    Some(u8::try_from(raw).map_err(|_| {
                        ScenarioError::schema(fields.child_path("levels"), "out of range")
                    })?)
                }
                None => None,
            };
            hierarchy_preset(path, name, levels)?
        }
        None => {
            if fields.optional("levels").is_some() {
                return Err(ScenarioError::schema(
                    fields.child_path("levels"),
                    "\"levels\" shortcuts a fabric preset; set fabric.levels instead",
                ));
            }
            HierarchySpec::builder().build().expect("builder defaults are valid")
        }
    };
    if let Some(v) = fields.optional("label") {
        spec.label = Some(expect_str(&fields.child_path("label"), v)?.to_owned());
    }
    if let Some(v) = fields.optional("root") {
        spec.root = cache_from_value(&fields.child_path("root"), v, None)?;
    }
    if let Some(v) = fields.optional("fabric") {
        let base = spec.fabric.take();
        spec.fabric = Some(fabric_from_value(&fields.child_path("fabric"), v, base)?);
    }
    if let Some(v) = fields.optional("intermediate") {
        let inter_path = fields.child_path("intermediate");
        let Some(items) = v.as_array() else {
            return Err(ScenarioError::schema(
                &inter_path,
                format!("expected an array, got {}", v.type_name()),
            ));
        };
        spec.intermediate = items
            .iter()
            .enumerate()
            .map(|(i, item)| intermediate_from_value(&format!("{inter_path}[{i}]"), item))
            .collect::<Result<Vec<_>, _>>()?;
    }
    if let Some(v) = fields.optional("backing") {
        spec.backing = backing_from_value(&fields.child_path("backing"), v)?;
    }
    if let Some(v) = fields.optional("memory") {
        spec.memory = memory_from_value(&fields.child_path("memory"), v)?;
    }
    if let Some(v) = fields.optional("cores") {
        let cores_path = fields.child_path("cores");
        let raw = expect_u64(&cores_path, v)?;
        if raw == 0 {
            return Err(ScenarioError::schema(&cores_path, "a machine has at least one core"));
        }
        spec.cores = usize::try_from(raw)
            .map_err(|_| ScenarioError::schema(&cores_path, "out of range"))?;
    }
    fields.finish()?;
    spec.validate()?;
    Ok(spec)
}

/// The spec-level presets: the paper's four shapes by name. `levels`
/// shortcuts the fabric level count and is only meaningful for the fabric
/// presets — pairing it with `conventional`/`dnuca` is rejected rather
/// than silently ignored (the strict-parsing promise).
fn hierarchy_preset(
    path: &str,
    name: &str,
    levels: Option<u8>,
) -> Result<HierarchySpec, ScenarioError> {
    let reject_levels = || -> Result<(), ScenarioError> {
        if levels.is_some() {
            return Err(ScenarioError::schema(
                format!("{path}.levels"),
                format!("the {name:?} preset has no fabric; \"levels\" does not apply"),
            ));
        }
        Ok(())
    };
    let fabric = || LNucaConfig::paper(levels.unwrap_or(3)).map_err(ScenarioError::Config);
    Ok(match name {
        "conventional" => {
            reject_levels()?;
            crate::configs::HierarchyKind::Conventional(configs::conventional()).to_spec()
        }
        "lnuca-l3" => HierarchySpec::builder()
            .fabric(fabric()?)
            .backing_cache(configs::paper_l3())
            .build()?,
        "dnuca" => {
            reject_levels()?;
            crate::configs::HierarchyKind::DNuca(configs::dnuca_hierarchy()).to_spec()
        }
        "lnuca-dnuca" => HierarchySpec::builder()
            .fabric(fabric()?)
            .backing_dnuca(DNucaConfig::paper())
            .build()?,
        other => {
            return Err(UnknownNameError::new(
                "hierarchy preset",
                other,
                ["conventional", "lnuca-l3", "dnuca", "lnuca-dnuca"],
            )
            .into())
        }
    })
}

fn cache_to_value(cache: &CacheConfig) -> Value {
    Value::Object(vec![
        ("name".to_owned(), Value::String(cache.name.clone())),
        ("size_bytes".to_owned(), Value::UInt(cache.size_bytes)),
        ("ways".to_owned(), Value::UInt(cache.ways as u64)),
        ("block_size".to_owned(), Value::UInt(cache.block_size)),
        ("completion_cycles".to_owned(), Value::UInt(cache.completion_cycles)),
        ("initiation_interval".to_owned(), Value::UInt(cache.initiation_interval)),
        (
            "miss_determination_cycles".to_owned(),
            Value::UInt(cache.miss_determination_cycles),
        ),
        ("ports".to_owned(), Value::UInt(cache.ports as u64)),
        (
            "access_mode".to_owned(),
            Value::String(
                match cache.access_mode {
                    AccessMode::Parallel => "parallel",
                    AccessMode::Serial => "serial",
                }
                .to_owned(),
            ),
        ),
        (
            "write_policy".to_owned(),
            Value::String(
                match cache.write_policy {
                    WritePolicy::WriteThrough => "write-through",
                    WritePolicy::CopyBack => "copy-back",
                }
                .to_owned(),
            ),
        ),
        (
            "replacement".to_owned(),
            Value::String(
                match cache.replacement {
                    ReplacementPolicy::Lru => "lru",
                    ReplacementPolicy::Fifo => "fifo",
                    ReplacementPolicy::Random => "random",
                }
                .to_owned(),
            ),
        ),
    ])
}

fn cache_from_value(
    path: &str,
    value: &Value,
    base: Option<CacheConfig>,
) -> Result<CacheConfig, ScenarioError> {
    let mut fields = Fields::new(path, value)?;
    let mut cache = match fields.optional("preset") {
        Some(v) => {
            let preset_path = fields.child_path("preset");
            match expect_str(&preset_path, v)? {
                "paper-l1" => configs::paper_l1(),
                "paper-l2" => configs::paper_l2(),
                "paper-l3" => configs::paper_l3(),
                other => {
                    return Err(UnknownNameError::new(
                        "cache preset",
                        other,
                        ["paper-l1", "paper-l2", "paper-l3"],
                    )
                    .into())
                }
            }
        }
        None => base.unwrap_or_else(configs::paper_l1),
    };
    if let Some(v) = fields.optional("name") {
        cache.name = expect_str(&fields.child_path("name"), v)?.to_owned();
    }
    override_u64(&mut fields, "size_bytes", &mut cache.size_bytes)?;
    if let Some(v) = fields.optional("size_kb") {
        cache.size_bytes = expect_u64(&fields.child_path("size_kb"), v)? * 1024;
    }
    override_usize(&mut fields, "ways", &mut cache.ways)?;
    override_u64(&mut fields, "block_size", &mut cache.block_size)?;
    override_u64(&mut fields, "completion_cycles", &mut cache.completion_cycles)?;
    override_u64(&mut fields, "initiation_interval", &mut cache.initiation_interval)?;
    override_u64(
        &mut fields,
        "miss_determination_cycles",
        &mut cache.miss_determination_cycles,
    )?;
    override_usize(&mut fields, "ports", &mut cache.ports)?;
    if let Some(v) = fields.optional("access_mode") {
        let path = fields.child_path("access_mode");
        cache.access_mode = match expect_str(&path, v)? {
            "parallel" => AccessMode::Parallel,
            "serial" => AccessMode::Serial,
            other => {
                return Err(ScenarioError::schema(
                    &path,
                    format!("unknown access mode {other:?} (expected parallel or serial)"),
                ))
            }
        };
    }
    if let Some(v) = fields.optional("write_policy") {
        let path = fields.child_path("write_policy");
        cache.write_policy = match expect_str(&path, v)? {
            "write-through" => WritePolicy::WriteThrough,
            "copy-back" => WritePolicy::CopyBack,
            other => {
                return Err(ScenarioError::schema(
                    &path,
                    format!("unknown write policy {other:?} (expected write-through or copy-back)"),
                ))
            }
        };
    }
    if let Some(v) = fields.optional("replacement") {
        let path = fields.child_path("replacement");
        cache.replacement = match expect_str(&path, v)? {
            "lru" => ReplacementPolicy::Lru,
            "fifo" => ReplacementPolicy::Fifo,
            "random" => ReplacementPolicy::Random,
            other => {
                return Err(ScenarioError::schema(
                    &path,
                    format!("unknown replacement policy {other:?} (expected lru, fifo or random)"),
                ))
            }
        };
    }
    fields.finish()?;
    Ok(cache)
}

fn fabric_to_value(fabric: &LNucaConfig) -> Value {
    Value::Object(vec![
        ("levels".to_owned(), Value::UInt(u64::from(fabric.levels))),
        ("tile_size_bytes".to_owned(), Value::UInt(fabric.tile_size_bytes)),
        ("tile_ways".to_owned(), Value::UInt(fabric.tile_ways as u64)),
        ("block_size".to_owned(), Value::UInt(fabric.block_size)),
        ("buffer_entries".to_owned(), Value::UInt(fabric.buffer_entries as u64)),
        (
            "routing".to_owned(),
            Value::String(
                match fabric.routing {
                    lnuca_noc::RoutingPolicy::RandomValid => "random",
                    lnuca_noc::RoutingPolicy::DimensionOrder => "dimension-order",
                }
                .to_owned(),
            ),
        ),
        (
            "tile_replacement".to_owned(),
            Value::String(
                match fabric.tile_replacement {
                    ReplacementPolicy::Lru => "lru",
                    ReplacementPolicy::Fifo => "fifo",
                    ReplacementPolicy::Random => "random",
                }
                .to_owned(),
            ),
        ),
        ("seed".to_owned(), Value::UInt(fabric.seed)),
    ])
}

fn fabric_from_value(
    path: &str,
    value: &Value,
    base: Option<LNucaConfig>,
) -> Result<LNucaConfig, ScenarioError> {
    let mut fields = Fields::new(path, value)?;
    let mut fabric = base.unwrap_or_default();
    if let Some(v) = fields.optional("levels") {
        let raw = expect_u64(&fields.child_path("levels"), v)?;
        fabric.levels = u8::try_from(raw)
            .map_err(|_| ScenarioError::schema(fields.child_path("levels"), "out of range"))?;
    }
    override_u64(&mut fields, "tile_size_bytes", &mut fabric.tile_size_bytes)?;
    if let Some(v) = fields.optional("tile_size_kb") {
        fabric.tile_size_bytes = expect_u64(&fields.child_path("tile_size_kb"), v)? * 1024;
    }
    override_usize(&mut fields, "tile_ways", &mut fabric.tile_ways)?;
    override_u64(&mut fields, "block_size", &mut fabric.block_size)?;
    override_usize(&mut fields, "buffer_entries", &mut fabric.buffer_entries)?;
    if let Some(v) = fields.optional("routing") {
        let path = fields.child_path("routing");
        fabric.routing = match expect_str(&path, v)? {
            "random" | "random-valid" => lnuca_noc::RoutingPolicy::RandomValid,
            "dimension-order" | "dim-order" => lnuca_noc::RoutingPolicy::DimensionOrder,
            other => {
                return Err(ScenarioError::schema(
                    &path,
                    format!("unknown routing policy {other:?} (expected random or dimension-order)"),
                ))
            }
        };
    }
    if let Some(v) = fields.optional("tile_replacement") {
        let path = fields.child_path("tile_replacement");
        fabric.tile_replacement = match expect_str(&path, v)? {
            "lru" => ReplacementPolicy::Lru,
            "fifo" => ReplacementPolicy::Fifo,
            "random" => ReplacementPolicy::Random,
            other => {
                return Err(ScenarioError::schema(
                    &path,
                    format!("unknown replacement policy {other:?} (expected lru, fifo or random)"),
                ))
            }
        };
    }
    override_u64(&mut fields, "seed", &mut fabric.seed)?;
    fields.finish()?;
    Ok(fabric)
}

fn intermediate_to_value(level: &IntermediateSpec) -> Value {
    Value::Object(vec![
        ("cache".to_owned(), cache_to_value(&level.cache)),
        (
            "request_transfer_cycles".to_owned(),
            Value::UInt(level.request_transfer_cycles),
        ),
        (
            "response_transfer_cycles".to_owned(),
            Value::UInt(level.response_transfer_cycles),
        ),
    ])
}

fn intermediate_from_value(path: &str, value: &Value) -> Result<IntermediateSpec, ScenarioError> {
    let mut fields = Fields::new(path, value)?;
    let mut level = match fields.optional("preset") {
        Some(v) => {
            let preset_path = fields.child_path("preset");
            match expect_str(&preset_path, v)? {
                "paper-l2" => IntermediateSpec::paper_l2(),
                other => {
                    return Err(UnknownNameError::new("intermediate preset", other, ["paper-l2"]).into())
                }
            }
        }
        None => IntermediateSpec::new(configs::paper_l2()),
    };
    if let Some(v) = fields.optional("cache") {
        level.cache = cache_from_value(&fields.child_path("cache"), v, Some(level.cache))?;
    }
    override_u64(&mut fields, "request_transfer_cycles", &mut level.request_transfer_cycles)?;
    override_u64(
        &mut fields,
        "response_transfer_cycles",
        &mut level.response_transfer_cycles,
    )?;
    fields.finish()?;
    Ok(level)
}

fn backing_to_value(backing: &BackingSpec) -> Value {
    match backing {
        BackingSpec::Cache(cache) => Value::Object(vec![
            ("kind".to_owned(), Value::String("cache".to_owned())),
            ("cache".to_owned(), cache_to_value(cache)),
        ]),
        BackingSpec::DNuca(dnuca) => Value::Object(vec![
            ("kind".to_owned(), Value::String("dnuca".to_owned())),
            ("dnuca".to_owned(), dnuca_to_value(dnuca)),
        ]),
        BackingSpec::Memory => Value::Object(vec![(
            "kind".to_owned(),
            Value::String("memory".to_owned()),
        )]),
    }
}

fn backing_from_value(path: &str, value: &Value) -> Result<BackingSpec, ScenarioError> {
    let mut fields = Fields::new(path, value)?;
    let kind = fields.required_str("kind")?;
    let backing = match kind {
        "cache" => {
            let cache = match fields.optional("cache") {
                Some(v) => cache_from_value(&fields.child_path("cache"), v, Some(configs::paper_l3()))?,
                None => configs::paper_l3(),
            };
            BackingSpec::Cache(cache)
        }
        "dnuca" => {
            let dnuca = match fields.optional("dnuca") {
                Some(v) => dnuca_from_value(&fields.child_path("dnuca"), v)?,
                None => DNucaConfig::paper(),
            };
            BackingSpec::DNuca(dnuca)
        }
        "memory" => BackingSpec::Memory,
        other => {
            return Err(ScenarioError::schema(
                fields.child_path("kind"),
                format!("unknown backing kind {other:?} (expected cache, dnuca or memory)"),
            ))
        }
    };
    fields.finish()?;
    Ok(backing)
}

fn dnuca_to_value(dnuca: &DNucaConfig) -> Value {
    Value::Object(vec![
        ("rows".to_owned(), Value::UInt(dnuca.rows as u64)),
        ("cols".to_owned(), Value::UInt(dnuca.cols as u64)),
        ("bank_size_bytes".to_owned(), Value::UInt(dnuca.bank_size_bytes)),
        ("bank_ways".to_owned(), Value::UInt(dnuca.bank_ways as u64)),
        ("block_size".to_owned(), Value::UInt(dnuca.block_size)),
        (
            "bank_completion_cycles".to_owned(),
            Value::UInt(dnuca.bank_completion_cycles),
        ),
        (
            "bank_initiation_interval".to_owned(),
            Value::UInt(dnuca.bank_initiation_interval),
        ),
        ("flit_bytes".to_owned(), Value::UInt(dnuca.flit_bytes)),
        ("routing_latency".to_owned(), Value::UInt(dnuca.routing_latency)),
        ("virtual_channels".to_owned(), Value::UInt(dnuca.virtual_channels as u64)),
        (
            "search".to_owned(),
            Value::String(
                match dnuca.search {
                    SearchPolicy::Multicast => "multicast",
                    SearchPolicy::Incremental => "incremental",
                }
                .to_owned(),
            ),
        ),
        ("promotion".to_owned(), Value::Bool(dnuca.promotion)),
    ])
}

fn dnuca_from_value(path: &str, value: &Value) -> Result<DNucaConfig, ScenarioError> {
    let mut fields = Fields::new(path, value)?;
    let mut dnuca = DNucaConfig::paper();
    override_usize(&mut fields, "rows", &mut dnuca.rows)?;
    override_usize(&mut fields, "cols", &mut dnuca.cols)?;
    override_u64(&mut fields, "bank_size_bytes", &mut dnuca.bank_size_bytes)?;
    if let Some(v) = fields.optional("bank_size_kb") {
        dnuca.bank_size_bytes = expect_u64(&fields.child_path("bank_size_kb"), v)? * 1024;
    }
    override_usize(&mut fields, "bank_ways", &mut dnuca.bank_ways)?;
    override_u64(&mut fields, "block_size", &mut dnuca.block_size)?;
    override_u64(&mut fields, "bank_completion_cycles", &mut dnuca.bank_completion_cycles)?;
    override_u64(
        &mut fields,
        "bank_initiation_interval",
        &mut dnuca.bank_initiation_interval,
    )?;
    override_u64(&mut fields, "flit_bytes", &mut dnuca.flit_bytes)?;
    override_u64(&mut fields, "routing_latency", &mut dnuca.routing_latency)?;
    override_usize(&mut fields, "virtual_channels", &mut dnuca.virtual_channels)?;
    if let Some(v) = fields.optional("search") {
        let path = fields.child_path("search");
        dnuca.search = match expect_str(&path, v)? {
            "multicast" => SearchPolicy::Multicast,
            "incremental" => SearchPolicy::Incremental,
            other => {
                return Err(ScenarioError::schema(
                    &path,
                    format!("unknown search policy {other:?} (expected multicast or incremental)"),
                ))
            }
        };
    }
    if let Some(v) = fields.optional("promotion") {
        dnuca.promotion = expect_bool(&fields.child_path("promotion"), v)?;
    }
    fields.finish()?;
    Ok(dnuca)
}

fn memory_to_value(memory: &MemoryConfig) -> Value {
    Value::Object(vec![
        ("first_chunk_cycles".to_owned(), Value::UInt(memory.first_chunk_cycles)),
        ("inter_chunk_cycles".to_owned(), Value::UInt(memory.inter_chunk_cycles)),
        ("chunk_bytes".to_owned(), Value::UInt(memory.chunk_bytes)),
    ])
}

fn memory_from_value(path: &str, value: &Value) -> Result<MemoryConfig, ScenarioError> {
    let mut fields = Fields::new(path, value)?;
    let mut memory = configs::paper_memory();
    override_u64(&mut fields, "first_chunk_cycles", &mut memory.first_chunk_cycles)?;
    override_u64(&mut fields, "inter_chunk_cycles", &mut memory.inter_chunk_cycles)?;
    override_u64(&mut fields, "chunk_bytes", &mut memory.chunk_bytes)?;
    fields.finish()?;
    memory.validate()?;
    Ok(memory)
}

// ---------------------------------------------------------------------------
// Built-in scenarios
// ---------------------------------------------------------------------------

/// Names of the built-in scenarios, in listing order. The committed
/// `scenarios/*.json` files are the canonical serializations of these
/// (pinned by `tests/scenario_golden.rs`); `lnuca export <name>` regenerates
/// one.
#[must_use]
pub fn builtin_names() -> Vec<&'static str> {
    vec![
        "paper-conventional",
        "paper-dnuca",
        "adversarial",
        "ablation-tile-size",
        "ablation-routing",
        "ln3-no-l3",
        "deep-stack",
        "trace-replay",
        "cmp-sharing",
        "cmp-lnuca-dnuca",
    ]
}

/// Resolves a built-in scenario by name.
///
/// # Errors
///
/// Returns an [`UnknownNameError`] listing the valid names.
pub fn builtin(name: &str) -> Result<Scenario, UnknownNameError> {
    let full_options = || {
        let mut options = ExperimentOptions::builder().instructions(100_000).build();
        options.threads = 0; // auto: the CLI resolves to the hardware threads
        options
    };
    let ablation_options = || {
        let mut options = full_options();
        options.benchmarks_per_suite = Some(3);
        options
    };
    let expect_plan = |builder: ExperimentPlanBuilderResult| {
        builder.expect("built-in scenarios are valid by construction")
    };
    let scenario = |description: &str, plan: ExperimentPlan| Scenario {
        description: description.to_owned(),
        plan,
    };
    match name.trim() {
        "paper-conventional" => {
            let plan = expect_plan(ExperimentPlan::paper_conventional(&full_options()));
            Ok(scenario(
                "The conventional study: L2-256KB baseline vs LN2/LN3/LN4 + L3 \
                 (Figs. 4(a), 4(b) and Table III).",
                plan,
            ))
        }
        "paper-dnuca" => {
            let plan = expect_plan(ExperimentPlan::paper_dnuca(&full_options()));
            Ok(scenario(
                "The D-NUCA study: DN-4x8 baseline vs LN2/LN3/LN4 + DN-4x8 \
                 (Figs. 5(a) and 5(b)).",
                plan,
            ))
        }
        "adversarial" => {
            let mut options = full_options();
            options.workloads = WorkloadSelection::Adversarial;
            let plan = expect_plan(
                ExperimentPlan::builder("adversarial")
                    .config(crate::configs::HierarchyKind::Conventional(configs::conventional()).to_spec())
                    .config(
                        HierarchySpec::builder()
                            .fabric(LNucaConfig::paper(3).expect("3 levels is valid"))
                            .backing_cache(configs::paper_l3())
                            .build()
                            .expect("paper LN3 is valid"),
                    )
                    .options(options)
                    .build(),
            );
            Ok(scenario(
                "L2-256KB vs LN3-144KB under the four adversarial access-pattern \
                 classes (pointer chase, strided streaming, GUPS, phase mix).",
                plan,
            ))
        }
        "ablation-tile-size" => {
            let mut builder = ExperimentPlan::builder("ablation-tile-size");
            for tile_kb in [2u64, 4, 8, 16] {
                let mut fabric = LNucaConfig::paper(3).expect("3 levels is valid");
                fabric.tile_size_bytes = tile_kb * 1024;
                builder = builder.config(
                    HierarchySpec::builder()
                        .fabric(fabric)
                        .backing_cache(configs::paper_l3())
                        .build()
                        .expect("ablation tile sizes are valid"),
                );
            }
            let plan = expect_plan(builder.options(ablation_options()).build());
            Ok(scenario(
                "Tile-size ablation (§IV): a 3-level fabric with 2/4/8/16 KB tiles; \
                 the paper fixes 8 KB for single-cycle timing.",
                plan,
            ))
        }
        "ablation-routing" => {
            let mut builder = ExperimentPlan::builder("ablation-routing");
            for (label, routing) in [
                ("LN3-144KB (random)", lnuca_noc::RoutingPolicy::RandomValid),
                ("LN3-144KB (dim-order)", lnuca_noc::RoutingPolicy::DimensionOrder),
            ] {
                let mut fabric = LNucaConfig::paper(3).expect("3 levels is valid");
                fabric.routing = routing;
                builder = builder.config(
                    HierarchySpec::builder()
                        .label(label)
                        .fabric(fabric)
                        .backing_cache(configs::paper_l3())
                        .build()
                        .expect("routing ablation configs are valid"),
                );
            }
            let plan = expect_plan(builder.options(ablation_options()).build());
            Ok(scenario(
                "Routing ablation (§III-B): distributed random routing vs \
                 dimension-order on the 3-level fabric.",
                plan,
            ))
        }
        "ln3-no-l3" => {
            let plan = expect_plan(
                ExperimentPlan::builder("ln3-no-l3")
                    .config(
                        HierarchySpec::builder()
                            .fabric(LNucaConfig::paper(3).expect("3 levels is valid"))
                            .backing_cache(configs::paper_l3())
                            .build()
                            .expect("paper LN3 is valid"),
                    )
                    .config(
                        HierarchySpec::builder()
                            .fabric(LNucaConfig::paper(3).expect("3 levels is valid"))
                            .build()
                            .expect("fabric over bare memory is valid"),
                    )
                    .options(full_options())
                    .build(),
            );
            Ok(scenario(
                "A shape the old HierarchyKind enum could not express: the 3-level \
                 fabric with nothing behind it but DRAM, vs the same fabric with \
                 the 8 MB L3.",
                plan,
            ))
        }
        "deep-stack" => {
            let l2b = CacheConfig::builder("L2B")
                .size_bytes(1024 * 1024)
                .ways(8)
                .block_size(64)
                .completion_cycles(8)
                .initiation_interval(4)
                .access_mode(AccessMode::Serial)
                .write_policy(WritePolicy::CopyBack)
                .build()
                .expect("the deep-stack middle level is valid");
            let plan = expect_plan(
                ExperimentPlan::builder("deep-stack")
                    .config(crate::configs::HierarchyKind::Conventional(configs::conventional()).to_spec())
                    .config(
                        HierarchySpec::builder()
                            .intermediate(IntermediateSpec::paper_l2())
                            .intermediate(IntermediateSpec::new(l2b).with_transfers(3, 3))
                            .backing_cache(configs::paper_l3())
                            .build()
                            .expect("the deep stack is valid"),
                    )
                    .options(full_options())
                    .build(),
            );
            Ok(scenario(
                "A four-level conventional stack (L1 + L2 + 1 MB L2B + L3) composed \
                 through HierarchySpec — deeper than any paper configuration.",
                plan,
            ))
        }
        "trace-replay" => {
            let mut options = ExperimentOptions::builder().instructions(20_000).build();
            options.threads = 0;
            // The committed sample corpus, repo-root-relative (the file is
            // opened when the run starts, not when the scenario loads).
            options.workloads =
                WorkloadSelection::Named(vec!["scenarios/traces/sample.lnt".to_owned()]);
            let plan = expect_plan(
                ExperimentPlan::builder("trace-replay")
                    .config(crate::configs::HierarchyKind::Conventional(configs::conventional()).to_spec())
                    .config(
                        HierarchySpec::builder()
                            .fabric(LNucaConfig::paper(3).expect("3 levels is valid"))
                            .backing_cache(configs::paper_l3())
                            .build()
                            .expect("paper LN3 is valid"),
                    )
                    .options(options)
                    .build(),
            );
            Ok(scenario(
                "Replay of the committed sample trace corpus (lnuca-trace/v1, built \
                 by `lnuca ingest`) on the conventional baseline and LN3.",
                plan,
            ))
        }
        "cmp-sharing" => {
            let mut options = ExperimentOptions::builder().instructions(50_000).build();
            options.threads = 0;
            options.workloads = WorkloadSelection::Named(vec![
                "sh.prodcons".to_owned(),
                "sh.migratory".to_owned(),
                "sh.falseshare".to_owned(),
            ]);
            let plan = expect_plan(
                ExperimentPlan::builder("cmp-sharing")
                    .config(
                        HierarchySpec::builder()
                            .backing_cache(configs::paper_l3())
                            .cores(2)
                            .build()
                            .expect("the 2-core shape is valid"),
                    )
                    .config(
                        HierarchySpec::builder()
                            .backing_cache(configs::paper_l3())
                            .cores(4)
                            .build()
                            .expect("the 4-core shape is valid"),
                    )
                    .options(options)
                    .build(),
            );
            Ok(scenario(
                "Multicore sharing study (DESIGN.md §17): 2 and 4 private L1s over \
                 the shared 8 MB L3, driven by the three sharing workload classes \
                 through the MSI directory.",
                plan,
            ))
        }
        "cmp-lnuca-dnuca" => {
            let mut options = ExperimentOptions::builder().instructions(50_000).build();
            options.threads = 0;
            options.workloads = WorkloadSelection::Named(vec![
                "sh.prodcons".to_owned(),
                "sh.falseshare".to_owned(),
                "int.compress".to_owned(),
            ]);
            let plan = expect_plan(
                ExperimentPlan::builder("cmp-lnuca-dnuca")
                    .config(
                        HierarchySpec::builder()
                            .fabric(LNucaConfig::paper(2).expect("2 levels is valid"))
                            .backing_dnuca(DNucaConfig::paper())
                            .cores(4)
                            .build()
                            .expect("the 4-core fabric shape is valid"),
                    )
                    .config(
                        HierarchySpec::builder()
                            .backing_dnuca(DNucaConfig::paper())
                            .cores(4)
                            .build()
                            .expect("the fabric-less control is valid"),
                    )
                    .options(options)
                    .build(),
            );
            Ok(scenario(
                "The flagship CMP shape: four cores with private L1 + 2-level \
                 L-NUCA fabric over a shared D-NUCA, vs the fabric-less control, \
                 on sharing and private workloads.",
                plan,
            ))
        }
        other => Err(UnknownNameError::new("scenario", other, builtin_names())),
    }
}

type ExperimentPlanBuilderResult = Result<ExperimentPlan, ConfigError>;

// ---------------------------------------------------------------------------
// Reports (lnuca-report/v1)
// ---------------------------------------------------------------------------

/// Renders the structured report of one scenario run: the resolved options,
/// every [`RunResult`](crate::system::RunResult) in run order, and the
/// derived summaries the text tables print.
#[must_use]
pub fn report_value(plan: &ExperimentPlan, study: &Study) -> Value {
    let mut results: Vec<Value> = study
        .results
        .iter()
        .map(|r| {
            let mut members = vec![
                ("label".to_owned(), Value::String(r.label.clone())),
                ("workload".to_owned(), Value::String(r.workload.clone())),
                (
                    "suite".to_owned(),
                    Value::String(r.suite.label().trim_end_matches('.').to_owned()),
                ),
                ("status".to_owned(), Value::String("ok".to_owned())),
                ("instructions".to_owned(), Value::UInt(r.instructions)),
                ("cycles".to_owned(), Value::UInt(r.cycles)),
                ("ipc".to_owned(), Value::Float(r.ipc)),
                ("memory_accesses".to_owned(), Value::UInt(r.hierarchy.memory_accesses)),
                ("write_drains".to_owned(), Value::UInt(r.hierarchy.write_drains)),
                ("energy_total_pj".to_owned(), Value::Float(r.energy.total_pj())),
            ];
            // CMP rows (present only for cores > 1, so single-core report
            // documents are unchanged): one object per core plus the
            // run-wide MSI directory counters.
            if !r.per_core.is_empty() {
                members.push((
                    "per_core".to_owned(),
                    Value::Array(
                        r.per_core
                            .iter()
                            .map(|row| {
                                Value::Object(vec![
                                    ("core".to_owned(), Value::UInt(row.core as u64)),
                                    ("instructions".to_owned(), Value::UInt(row.instructions)),
                                    ("ipc".to_owned(), Value::Float(row.ipc)),
                                    (
                                        "coherence_hits".to_owned(),
                                        Value::UInt(row.coherence_hits),
                                    ),
                                    (
                                        "coherence_misses".to_owned(),
                                        Value::UInt(row.coherence_misses),
                                    ),
                                    (
                                        "invalidations_received".to_owned(),
                                        Value::UInt(row.invalidations_received),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            if let Some(c) = &r.coherence {
                members.push((
                    "coherence".to_owned(),
                    Value::Object(vec![
                        ("reads".to_owned(), Value::UInt(c.reads)),
                        ("writes".to_owned(), Value::UInt(c.writes)),
                        ("hits".to_owned(), Value::UInt(c.hits)),
                        ("misses".to_owned(), Value::UInt(c.misses)),
                        ("evictions".to_owned(), Value::UInt(c.evictions)),
                        (
                            "invalidations_sent".to_owned(),
                            Value::UInt(c.invalidations_sent),
                        ),
                        ("downgrades".to_owned(), Value::UInt(c.downgrades)),
                        ("writebacks".to_owned(), Value::UInt(c.writebacks)),
                        ("recalls".to_owned(), Value::UInt(c.recalls)),
                    ]),
                ));
            }
            Value::Object(members)
        })
        .collect();
    // Failed runs appear in the same array with their structured status
    // (DESIGN.md §14), so a report always accounts for the whole matrix.
    results.extend(study.failures.iter().map(|f| {
        Value::Object(vec![
            ("label".to_owned(), Value::String(f.label.clone())),
            ("workload".to_owned(), Value::String(f.workload.clone())),
            (
                "suite".to_owned(),
                Value::String(f.suite.label().trim_end_matches('.').to_owned()),
            ),
            ("status".to_owned(), Value::String(f.error.status().to_owned())),
            ("seed".to_owned(), Value::UInt(f.seed)),
            ("error".to_owned(), Value::String(f.error.to_string())),
            ("attempts".to_owned(), Value::UInt(u64::from(f.attempts))),
        ])
    }));
    let ipc = study
        .ipc_summary()
        .into_iter()
        .map(|row| {
            Value::Object(vec![
                ("label".to_owned(), Value::String(row.label)),
                ("int_ipc".to_owned(), Value::Float(row.int_ipc)),
                ("fp_ipc".to_owned(), Value::Float(row.fp_ipc)),
                ("int_gain_pct".to_owned(), Value::Float(row.int_gain_pct)),
                ("fp_gain_pct".to_owned(), Value::Float(row.fp_gain_pct)),
            ])
        })
        .collect();
    let energy = study
        .energy_summary()
        .into_iter()
        .map(|row| {
            Value::Object(vec![
                ("label".to_owned(), Value::String(row.label)),
                ("dynamic".to_owned(), Value::Float(row.dynamic)),
                ("static_l1".to_owned(), Value::Float(row.static_l1)),
                ("static_second".to_owned(), Value::Float(row.static_second)),
                ("static_last".to_owned(), Value::Float(row.static_last)),
                ("total".to_owned(), Value::Float(row.total)),
            ])
        })
        .collect();
    let hits = study
        .hit_distribution()
        .into_iter()
        .map(|row| {
            Value::Object(vec![
                ("label".to_owned(), Value::String(row.label)),
                (
                    "suite".to_owned(),
                    Value::String(row.suite.label().trim_end_matches('.').to_owned()),
                ),
                (
                    "level_percent".to_owned(),
                    Value::Array(row.level_percent.iter().map(|&v| Value::Float(v)).collect()),
                ),
                ("all_levels_percent".to_owned(), Value::Float(row.all_levels_percent)),
                ("avg_to_min_transport".to_owned(), Value::Float(row.avg_to_min_transport)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("schema".to_owned(), Value::String(REPORT_SCHEMA.to_owned())),
        ("scenario".to_owned(), Value::String(plan.name.clone())),
        ("options".to_owned(), options_to_value(&plan.options)),
        ("baseline".to_owned(), Value::String(study.baseline.clone())),
        (
            "configs".to_owned(),
            Value::Array(study.configs.iter().map(|c| Value::String(c.clone())).collect()),
        ),
        ("results".to_owned(), Value::Array(results)),
        ("ipc_summary".to_owned(), Value::Array(ipc)),
        ("energy_summary".to_owned(), Value::Array(energy)),
        ("hit_distribution".to_owned(), Value::Array(hits)),
    ])
}

fn report_err(path: &str, message: impl std::fmt::Display) -> String {
    format!("invalid report at {path}: {message}")
}

/// The report-side twin of [`Fields`]: tracks consumed members so unknown
/// keys fail with their JSON path, exactly like the scenario parser — but
/// with `invalid report at …` messages and `String` errors (the
/// `check-report` surface).
struct ReportFields<'a> {
    path: String,
    members: &'a [(String, Value)],
    seen: Vec<bool>,
}

impl<'a> ReportFields<'a> {
    fn new(path: impl Into<String>, value: &'a Value) -> Result<Self, String> {
        let path = path.into();
        let Some(members) = value.as_object() else {
            return Err(report_err(
                &path,
                format!("expected an object, got {}", value.type_name()),
            ));
        };
        Ok(ReportFields {
            seen: vec![false; members.len()],
            members,
            path,
        })
    }

    fn optional(&mut self, key: &str) -> Option<&'a Value> {
        for (i, (k, v)) in self.members.iter().enumerate() {
            if k == key {
                self.seen[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn required(&mut self, key: &str) -> Result<&'a Value, String> {
        self.optional(key)
            .ok_or_else(|| report_err(&self.path, format!("missing required field {key:?}")))
    }

    fn child_path(&self, key: &str) -> String {
        format!("{}.{key}", self.path)
    }

    fn string(&mut self, key: &str) -> Result<&'a str, String> {
        let path = self.child_path(key);
        let v = self.required(key)?;
        v.as_str()
            .ok_or_else(|| report_err(&path, format!("expected a string, got {}", v.type_name())))
    }

    fn uint(&mut self, key: &str) -> Result<u64, String> {
        let path = self.child_path(key);
        let v = self.required(key)?;
        v.as_u64().ok_or_else(|| {
            report_err(&path, format!("expected a non-negative integer, got {}", v.type_name()))
        })
    }

    fn float(&mut self, key: &str) -> Result<f64, String> {
        let path = self.child_path(key);
        let v = self.required(key)?;
        v.as_f64()
            .ok_or_else(|| report_err(&path, format!("expected a number, got {}", v.type_name())))
    }

    fn array(&mut self, key: &str) -> Result<&'a [Value], String> {
        let path = self.child_path(key);
        let v = self.required(key)?;
        v.as_array()
            .ok_or_else(|| report_err(&path, format!("expected an array, got {}", v.type_name())))
    }

    /// Rejects any member that was never consumed, with the object's path.
    fn finish(self) -> Result<(), String> {
        let unknown: Vec<&str> = self
            .members
            .iter()
            .zip(&self.seen)
            .filter(|(_, seen)| !**seen)
            .map(|((k, _), _)| k.as_str())
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(report_err(
                &self.path,
                format!("unknown field(s): {}", unknown.join(", ")),
            ))
        }
    }
}

/// Validates one row of a flat summary table: the exact field set, every
/// non-label field a number.
fn validate_summary_rows(path: &str, rows: &[Value], fields: &[&str]) -> Result<(), String> {
    for (i, row) in rows.iter().enumerate() {
        let mut walker = ReportFields::new(format!("{path}[{i}]"), row)?;
        walker.string("label")?;
        for &field in fields {
            walker.float(field)?;
        }
        walker.finish()?;
    }
    Ok(())
}

/// Structurally validates an `lnuca-report/v1` document: schema marker, the
/// exact top-level field set, the exact per-row field sets of `results` and
/// every summary table, and — when present — the `sweep` extension. Unknown
/// fields anywhere fail with their JSON path, with the same strictness the
/// scenario parser applies on the way in ([`Scenario::from_json`]). Used by
/// `lnuca check-report` (and CI) to catch emission drift.
///
/// # Errors
///
/// Returns a description of the first violation, carrying its JSON path.
pub fn validate_report(value: &Value) -> Result<(), String> {
    let mut root = ReportFields::new("$", value)?;
    let schema = root.string("schema")?;
    if schema != REPORT_SCHEMA {
        return Err(report_err(
            "$.schema",
            format!("expected {REPORT_SCHEMA:?}, got {schema:?}"),
        ));
    }
    root.string("scenario")?;
    // The options object is validated by the scenario parser itself — the
    // exact same code that admits options on the way in — so the two layers
    // cannot drift apart. Only the message prefix is adapted.
    let options = root.required("options")?;
    options_from_value("$.options", options).map_err(|e| match e {
        ScenarioError::Schema { path, message } => report_err(&path, message),
        other => report_err("$.options", other),
    })?;
    root.string("baseline")?;
    let configs = root.array("configs")?;
    if configs.is_empty() {
        return Err(report_err("$.configs", "report lists no configurations"));
    }
    for (i, config) in configs.iter().enumerate() {
        if config.as_str().is_none() {
            return Err(report_err(
                &format!("$.configs[{i}]"),
                format!("expected a string label, got {}", config.type_name()),
            ));
        }
    }
    let results = root.array("results")?;
    if results.is_empty() {
        return Err(report_err("$.results", "report carries no results"));
    }
    for (i, result) in results.iter().enumerate() {
        let path = format!("$.results[{i}]");
        let mut row = ReportFields::new(&path, result)?;
        let status = row.string("status")?;
        if !lnuca_types::RunError::is_known_status(status) {
            return Err(report_err(
                &row.child_path("status"),
                format!(
                    "unknown status {status:?} (known: {})",
                    lnuca_types::RUN_STATUSES.join(", ")
                ),
            ));
        }
        row.string("label")?;
        row.string("workload")?;
        row.string("suite")?;
        // Completed rows carry the full measurement; failed rows carry the
        // structured failure instead (DESIGN.md §14). Each shape is exact.
        if status == "ok" {
            row.uint("instructions")?;
            row.uint("cycles")?;
            row.float("ipc")?;
            row.uint("memory_accesses")?;
            row.uint("write_drains")?;
            row.float("energy_total_pj")?;
            // CMP rows: per-core breakdown + directory counters, present
            // together or not at all (single-core rows carry neither).
            let per_core = row.optional("per_core").cloned();
            let coherence = row.optional("coherence").cloned();
            if per_core.is_some() != coherence.is_some() {
                return Err(report_err(
                    &path,
                    "\"per_core\" and \"coherence\" must appear together",
                ));
            }
            if let Some(rows) = &per_core {
                let Some(cores) = rows.as_array() else {
                    return Err(report_err(
                        &format!("{path}.per_core"),
                        format!("expected an array, got {}", rows.type_name()),
                    ));
                };
                if cores.is_empty() {
                    return Err(report_err(
                        &format!("{path}.per_core"),
                        "a CMP result reports at least one core",
                    ));
                }
                for (j, core_row) in cores.iter().enumerate() {
                    let core_path = format!("{path}.per_core[{j}]");
                    let mut walker = ReportFields::new(&core_path, core_row)?;
                    walker.uint("core")?;
                    walker.uint("instructions")?;
                    walker.float("ipc")?;
                    walker.uint("coherence_hits")?;
                    walker.uint("coherence_misses")?;
                    walker.uint("invalidations_received")?;
                    walker.finish()?;
                }
            }
            if let Some(counters) = &coherence {
                let mut walker = ReportFields::new(format!("{path}.coherence"), counters)?;
                for key in [
                    "reads",
                    "writes",
                    "hits",
                    "misses",
                    "evictions",
                    "invalidations_sent",
                    "downgrades",
                    "writebacks",
                    "recalls",
                ] {
                    walker.uint(key)?;
                }
                walker.finish()?;
            }
        } else {
            row.uint("seed")?;
            row.string("error")?;
            row.uint("attempts")?;
        }
        row.finish()?;
    }
    validate_summary_rows(
        "$.ipc_summary",
        root.array("ipc_summary")?,
        &["int_ipc", "fp_ipc", "int_gain_pct", "fp_gain_pct"],
    )?;
    validate_summary_rows(
        "$.energy_summary",
        root.array("energy_summary")?,
        &["dynamic", "static_l1", "static_second", "static_last", "total"],
    )?;
    let hits = root.array("hit_distribution")?;
    for (i, row) in hits.iter().enumerate() {
        let path = format!("$.hit_distribution[{i}]");
        let mut walker = ReportFields::new(&path, row)?;
        walker.string("label")?;
        walker.string("suite")?;
        let levels = walker.array("level_percent")?;
        for (j, level) in levels.iter().enumerate() {
            if level.as_f64().is_none() {
                return Err(report_err(
                    &format!("{path}.level_percent[{j}]"),
                    format!("expected a number, got {}", level.type_name()),
                ));
            }
        }
        walker.float("all_levels_percent")?;
        walker.float("avg_to_min_transport")?;
        walker.finish()?;
    }
    // The optional sweep extension (`lnuca sweep`, DESIGN.md §16).
    if let Some(sweep) = root.optional("sweep") {
        let mut walker = ReportFields::new("$.sweep", sweep)?;
        let evaluated = walker.uint("evaluated")?;
        let pruned = walker.uint("pruned")?;
        let survivors = walker.uint("survivors")?;
        if pruned + survivors != evaluated {
            return Err(report_err(
                "$.sweep",
                format!("pruned ({pruned}) + survivors ({survivors}) must equal evaluated ({evaluated})"),
            ));
        }
        walker.float("epsilon")?;
        walker.uint("probe_instructions")?;
        // The core-count axis (optional: pre-CMP sweep reports omit it).
        if let Some(cores) = walker.optional("cores") {
            let Some(items) = cores.as_array() else {
                return Err(report_err(
                    "$.sweep.cores",
                    format!("expected an array, got {}", cores.type_name()),
                ));
            };
            if items.is_empty() {
                return Err(report_err("$.sweep.cores", "the cores axis holds at least one count"));
            }
            for (i, item) in items.iter().enumerate() {
                match item.as_u64() {
                    Some(c) if c >= 1 => {}
                    _ => {
                        return Err(report_err(
                            &format!("$.sweep.cores[{i}]"),
                            "core counts are positive integers",
                        ));
                    }
                }
            }
        }
        let frontier = walker.array("frontier")?;
        if frontier.is_empty() {
            return Err(report_err("$.sweep.frontier", "a sweep always keeps at least one point"));
        }
        validate_summary_rows("$.sweep.frontier", frontier, &["ipc", "energy_pj", "area_mm2"])?;
        walker.finish()?;
    }
    root.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_parses_back_from_its_canonical_json() {
        for name in builtin_names() {
            let scenario = builtin(name).expect("builtin resolves");
            assert_eq!(scenario.name(), name);
            assert!(!scenario.description.is_empty());
            let text = scenario.to_json();
            let reparsed = Scenario::from_json(&text)
                .unwrap_or_else(|e| panic!("{name} round trip failed: {e}"));
            assert_eq!(reparsed, scenario, "{name}: JSON round trip is lossless");
        }
    }

    #[test]
    fn unknown_builtin_lists_the_registry() {
        let err = builtin("papr").unwrap_err().to_string();
        assert!(err.contains("unknown scenario"), "{err}");
        for name in builtin_names() {
            assert!(err.contains(name), "error must list {name}: {err}");
        }
    }

    #[test]
    fn presets_expand_and_overrides_apply() {
        let text = r#"{
            "schema": "lnuca-scenario/v1",
            "name": "t",
            "configs": [
                {"preset": "lnuca-l3", "levels": 2},
                {"label": "big tiles", "preset": "lnuca-l3",
                 "fabric": {"levels": 3, "tile_size_kb": 16}}
            ]
        }"#;
        let scenario = Scenario::from_json(text).unwrap();
        assert_eq!(scenario.plan.configs.len(), 2);
        assert_eq!(scenario.plan.configs[0].label(), "LN2-72KB");
        let big = &scenario.plan.configs[1];
        assert_eq!(big.label(), "big tiles");
        assert_eq!(big.fabric.as_ref().unwrap().tile_size_bytes, 16 * 1024);
        // Options were absent: defaults.
        assert_eq!(scenario.plan.options.seed, 1);
    }

    #[test]
    fn unknown_fields_are_rejected_with_their_path() {
        let text = r#"{
            "schema": "lnuca-scenario/v1",
            "name": "t",
            "configs": [{"preset": "conventional", "tyop": 1}]
        }"#;
        let err = Scenario::from_json(text).unwrap_err().to_string();
        assert!(err.contains("$.configs[0]"), "{err}");
        assert!(err.contains("tyop"), "{err}");

        let text = r#"{
            "schema": "lnuca-scenario/v1",
            "name": "t",
            "options": {"instructions": 5, "frobnicate": true},
            "configs": [{"preset": "conventional"}]
        }"#;
        let err = Scenario::from_json(text).unwrap_err().to_string();
        assert!(err.contains("$.options") && err.contains("frobnicate"), "{err}");
    }

    #[test]
    fn bad_names_fail_at_load_time_with_valid_lists() {
        let text = r#"{
            "schema": "lnuca-scenario/v1",
            "name": "t",
            "options": {"workloads": ["int.compress", "no.such"]},
            "configs": [{"preset": "conventional"}]
        }"#;
        let err = Scenario::from_json(text).unwrap_err().to_string();
        assert!(err.contains("no.such") && err.contains("adv.gups"), "{err}");

        let text = r#"{
            "schema": "lnuca-scenario/v1",
            "name": "t",
            "configs": [{"preset": "lnuca-l9000"}]
        }"#;
        let err = Scenario::from_json(text).unwrap_err().to_string();
        assert!(err.contains("hierarchy preset") && err.contains("lnuca-dnuca"), "{err}");
    }

    #[test]
    fn levels_on_a_fabricless_preset_is_rejected_not_ignored() {
        for preset in ["conventional", "dnuca"] {
            let text = format!(
                r#"{{
                    "schema": "lnuca-scenario/v1",
                    "name": "t",
                    "configs": [{{"preset": "{preset}", "levels": 2}}]
                }}"#
            );
            let err = Scenario::from_json(&text).unwrap_err().to_string();
            assert!(
                err.contains("levels") && err.contains("no fabric"),
                "{preset}: {err}"
            );
        }
        // On the fabric presets it is meaningful and accepted.
        let text = r#"{
            "schema": "lnuca-scenario/v1",
            "name": "t",
            "configs": [{"preset": "lnuca-dnuca", "levels": 4}]
        }"#;
        let scenario = Scenario::from_json(text).unwrap();
        assert_eq!(scenario.plan.configs[0].fabric.as_ref().unwrap().levels, 4);
    }

    #[test]
    fn wrong_schema_marker_is_rejected() {
        let err = Scenario::from_json(r#"{"schema": "lnuca-scenario/v9", "name": "t", "configs": []}"#)
            .unwrap_err()
            .to_string();
        assert!(err.contains("lnuca-scenario/v1"), "{err}");
    }

    #[test]
    fn spec_value_round_trip_is_identity() {
        for name in builtin_names() {
            for (i, spec) in builtin(name).unwrap().plan.configs.iter().enumerate() {
                let value = spec_to_value(spec);
                let back = spec_from_value("$", &value)
                    .unwrap_or_else(|e| panic!("{name}[{i}]: {e}"));
                assert_eq!(&back, spec, "{name}[{i}]: spec → JSON → spec is identity");
            }
        }
    }

    #[test]
    fn report_of_a_tiny_run_validates() {
        let mut options = ExperimentOptions::quick();
        options.instructions = 1_000;
        options.benchmarks_per_suite = Some(1);
        options.lnuca_levels = vec![2];
        let plan = ExperimentPlan::paper_conventional(&options).unwrap();
        let study = Study::run(&plan).unwrap();
        let report = report_value(&plan, &study);
        validate_report(&report).expect("freshly emitted reports validate");
        // And the document survives a parse round trip.
        let text = report.to_pretty();
        let parsed = json::parse(&text).unwrap();
        validate_report(&parsed).unwrap();
        assert_eq!(parsed.get("baseline").unwrap().as_str(), Some("L2-256KB"));
    }

    #[test]
    fn report_validation_catches_drift() {
        assert!(validate_report(&Value::Null).is_err());
        let mut members = vec![
            ("schema".to_owned(), Value::String(REPORT_SCHEMA.to_owned())),
            ("scenario".to_owned(), Value::String("t".to_owned())),
        ];
        assert!(validate_report(&Value::Object(members.clone())).unwrap_err().contains("options"));
        members.push(("options".to_owned(), Value::Object(vec![])));
        members.push(("baseline".to_owned(), Value::String("b".to_owned())));
        members.push(("configs".to_owned(), Value::Array(vec![])));
        let err = validate_report(&Value::Object(members)).unwrap_err();
        assert!(err.contains("no configurations"), "{err}");
    }

    /// A valid tiny report to mutate in the negative tests below.
    fn tiny_report() -> Value {
        let mut options = ExperimentOptions::quick();
        options.instructions = 500;
        options.benchmarks_per_suite = Some(1);
        options.lnuca_levels = vec![2];
        let plan = ExperimentPlan::paper_conventional(&options).unwrap();
        let study = Study::run(&plan).unwrap();
        report_value(&plan, &study)
    }

    fn push_field(value: &mut Value, path: &[&str], key: &str, v: Value) {
        let Value::Object(members) = value else { panic!("expected object") };
        if let [head, rest @ ..] = path {
            let slot = members
                .iter_mut()
                .find(|(k, _)| k == head)
                .map(|(_, v)| v)
                .expect("path exists");
            let target = if let Value::Array(items) = slot { &mut items[0] } else { slot };
            push_field(target, rest, key, v);
        } else {
            members.push((key.to_owned(), v));
        }
    }

    #[test]
    fn report_validation_rejects_unknown_fields_with_their_path() {
        // Top level.
        let mut report = tiny_report();
        push_field(&mut report, &[], "bogus", Value::Bool(true));
        let err = validate_report(&report).unwrap_err();
        assert!(err.contains("invalid report at $") && err.contains("bogus"), "{err}");

        // Inside a result row — the path names the row.
        let mut report = tiny_report();
        push_field(&mut report, &["results"], "stray", Value::UInt(1));
        let err = validate_report(&report).unwrap_err();
        assert!(err.contains("$.results[0]") && err.contains("stray"), "{err}");

        // Inside the options object — strictness parity with the scenario
        // parser, which uses the very same walker.
        let mut report = tiny_report();
        push_field(&mut report, &["options"], "not_a_knob", Value::UInt(1));
        let err = validate_report(&report).unwrap_err();
        assert!(err.contains("$.options") && err.contains("not_a_knob"), "{err}");
    }

    #[test]
    fn report_validation_checks_the_sweep_extension() {
        let frontier_row = |label: &str| {
            Value::Object(vec![
                ("label".to_owned(), Value::String(label.to_owned())),
                ("ipc".to_owned(), Value::Float(0.5)),
                ("energy_pj".to_owned(), Value::Float(100.0)),
                ("area_mm2".to_owned(), Value::Float(1.0)),
            ])
        };
        let sweep = |evaluated: u64, pruned: u64, survivors: u64, frontier: Vec<Value>| {
            Value::Object(vec![
                ("evaluated".to_owned(), Value::UInt(evaluated)),
                ("pruned".to_owned(), Value::UInt(pruned)),
                ("survivors".to_owned(), Value::UInt(survivors)),
                ("epsilon".to_owned(), Value::Float(0.02)),
                ("probe_instructions".to_owned(), Value::UInt(1000)),
                ("frontier".to_owned(), Value::Array(frontier)),
            ])
        };

        let mut report = tiny_report();
        push_field(&mut report, &[], "sweep", sweep(10, 6, 4, vec![frontier_row("a")]));
        validate_report(&report).expect("a well-formed sweep extension validates");

        // Inconsistent counts.
        let mut report = tiny_report();
        push_field(&mut report, &[], "sweep", sweep(10, 6, 5, vec![frontier_row("a")]));
        let err = validate_report(&report).unwrap_err();
        assert!(err.contains("$.sweep") && err.contains("must equal evaluated"), "{err}");

        // Unknown field inside a frontier row, with its path.
        let mut row = frontier_row("a");
        push_field(&mut row, &[], "extra", Value::UInt(1));
        let mut report = tiny_report();
        push_field(&mut report, &[], "sweep", sweep(10, 6, 4, vec![row]));
        let err = validate_report(&report).unwrap_err();
        assert!(err.contains("$.sweep.frontier[0]") && err.contains("extra"), "{err}");
    }

    #[test]
    fn zero_batch_and_zero_benchmarks_are_rejected_with_their_paths() {
        let scenario_with_options = |options: &str| {
            format!(
                r#"{{"schema": "lnuca-scenario/v1", "name": "t",
                     "options": {options},
                     "configs": [{{"preset": "conventional"}}]}}"#
            )
        };
        let err = Scenario::from_json(&scenario_with_options(r#"{"batch_size": 0}"#)).unwrap_err();
        assert!(
            err.to_string().contains("$.options.batch_size"),
            "the error names the offending knob: {err}"
        );
        let err = Scenario::from_json(&scenario_with_options(r#"{"benchmarks_per_suite": 0}"#))
            .unwrap_err();
        assert!(
            err.to_string().contains("$.options.benchmarks_per_suite"),
            "the error names the offending knob: {err}"
        );
        // 1 stays accepted.
        Scenario::from_json(&scenario_with_options(r#"{"batch_size": 1, "benchmarks_per_suite": 1}"#))
            .expect("nonzero values are valid");
    }
}
