//! The design-space autopilot: expand a sweep grid into many
//! [`HierarchySpec`]s, probe each cheaply, prune ε-dominated points, and
//! evaluate only the survivors with the batched experiment engine
//! (DESIGN.md §16, ROADMAP item 4).
//!
//! A sweep runs in two fidelities:
//!
//! 1. **Probe** — every expanded spec simulates one short representative
//!    workload through [`System::run_spec`], yielding a cheap
//!    (IPC, energy, area) estimate per point.
//! 2. **Prune + evaluate** — points ε-dominated by another point (worse or
//!    equal on *all three* axes, and worse by more than `epsilon`
//!    relatively on at least one) are dropped without ever reaching the
//!    expensive stage; the survivors form an [`ExperimentPlan`] that
//!    [`Study::run`] evaluates with the full workload matrix and the
//!    batched engine.
//!
//! The outcome renders as a standard `lnuca-report/v1` document with a
//! `sweep` extension — evaluated/pruned counts, the ε used, and the Pareto
//! frontier — which `lnuca check-report` validates field-for-field
//! ([`crate::scenario::validate_report`]).

use crate::configs;
use crate::experiments::{ExperimentOptions, ExperimentPlan, Study};
use crate::spec::{BackingSpec, HierarchySpec};
use crate::system::System;
use lnuca_core::LNucaGeometry;
use lnuca_energy::AreaModel;
use lnuca_noc::RoutingPolicy;
use lnuca_types::ConfigError;
use lnuca_workloads::WorkloadProfile;
use serde::json::Value;
use serde::{Deserialize, Serialize};

/// What sits behind the fabric in a sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepBacking {
    /// The paper's 8 MB L3.
    PaperL3,
    /// Nothing on chip: fabric misses go straight to DRAM.
    Memory,
}

impl SweepBacking {
    fn short(self) -> &'static str {
        match self {
            SweepBacking::PaperL3 => "l3",
            SweepBacking::Memory => "mem",
        }
    }
}

/// The axes of a design-space sweep: the cross product of every listed
/// value is one candidate [`HierarchySpec`].
///
/// `#[non_exhaustive]` — start from [`SweepConfig::grid`] (the full
/// 160-point default) or [`SweepConfig::miniature`] (a 16-point grid for CI
/// and tests) and mutate fields.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Sweep (and report/plan) name.
    pub name: String,
    /// L-NUCA tile sizes in KB.
    pub tile_kb: Vec<u64>,
    /// Fabric level counts (2..=8).
    pub levels: Vec<u8>,
    /// Transport/Replacement routing policies.
    pub routings: Vec<RoutingPolicy>,
    /// Backing stores behind the fabric.
    pub backings: Vec<SweepBacking>,
    /// Multipliers on the paper DRAM `first_chunk_cycles` (1 = paper
    /// timing). A slow-memory variant of an otherwise identical point costs
    /// the same area and strictly more cycles and energy, so grids that
    /// include one always exercise the pruning stage.
    pub memory_scales: Vec<u64>,
    /// Core counts. `1` is the classic single-core hierarchy; larger
    /// values replicate the private front end (root + fabric) per core
    /// over the shared backing, with MSI coherence between them — so CMP
    /// points compete on the same Pareto frontier as single-core ones.
    pub cores: Vec<usize>,
    /// Relative ε of the dominance test (knob `LNUCA_SWEEP_EPSILON`).
    pub epsilon: f64,
    /// Instructions of the probe stage (knob `LNUCA_SWEEP_PROBE`).
    pub probe_instructions: u64,
    /// Options of the survivor evaluation stage (quick-mode instruction
    /// counts, the batched engine, workload selection).
    pub options: ExperimentOptions,
}

impl SweepConfig {
    /// The default full grid: 5 tile sizes × 4 level counts × 2 routings ×
    /// 2 backings × 2 memory timings × 3 core counts = 480 points.
    #[must_use]
    pub fn grid() -> Self {
        SweepConfig {
            name: "sweep".to_owned(),
            tile_kb: vec![2, 4, 8, 16, 32],
            levels: vec![2, 3, 4, 5],
            routings: vec![RoutingPolicy::RandomValid, RoutingPolicy::DimensionOrder],
            backings: vec![SweepBacking::PaperL3, SweepBacking::Memory],
            memory_scales: vec![1, 3],
            cores: vec![1, 2, 4],
            epsilon: 0.02,
            probe_instructions: 2_000,
            options: Self::survivor_options(4_000),
        }
    }

    /// A 32-point grid (2 tile sizes × 2 level counts × 1 routing ×
    /// 2 backings × 2 memory timings × 2 core counts) small enough for CI
    /// and unit tests.
    #[must_use]
    pub fn miniature() -> Self {
        SweepConfig {
            name: "sweep-mini".to_owned(),
            tile_kb: vec![4, 8],
            levels: vec![2, 3],
            routings: vec![RoutingPolicy::RandomValid],
            backings: vec![SweepBacking::PaperL3, SweepBacking::Memory],
            memory_scales: vec![1, 3],
            cores: vec![1, 2],
            epsilon: 0.02,
            probe_instructions: 1_000,
            options: Self::survivor_options(2_000),
        }
    }

    /// Quick-mode options for the survivor stage: one benchmark per suite,
    /// the batched data-parallel engine at full batch width.
    fn survivor_options(instructions: u64) -> ExperimentOptions {
        ExperimentOptions::builder()
            .instructions(instructions)
            .benchmarks_per_suite(Some(1))
            .batch_size(usize::MAX)
            .build()
    }

    /// Number of points the grid expands to.
    #[must_use]
    pub fn point_count(&self) -> usize {
        self.tile_kb.len()
            * self.levels.len()
            * self.routings.len()
            * self.backings.len()
            * self.memory_scales.len()
            * self.cores.len()
    }

    /// Expands the grid into validated specs, each with an explicit,
    /// collision-free label encoding its coordinates (derived labels would
    /// collide for points differing only in routing or memory timing).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if an axis value yields an invalid
    /// component (level count out of range, tile size not a power of two,
    /// a zero memory scale).
    pub fn expand(&self) -> Result<Vec<HierarchySpec>, ConfigError> {
        let mut specs = Vec::with_capacity(self.point_count());
        for &levels in &self.levels {
            for &tile_kb in &self.tile_kb {
                for &routing in &self.routings {
                    for &backing in &self.backings {
                        for &scale in &self.memory_scales {
                            for &cores in &self.cores {
                                if scale == 0 {
                                    return Err(ConfigError::new(
                                        "memory_scales",
                                        "memory timing multipliers must be nonzero",
                                    ));
                                }
                                let mut fabric = lnuca_core::LNucaConfig::paper(levels)?;
                                fabric.tile_size_bytes = tile_kb * 1024;
                                fabric.routing = routing;
                                let routing_short = match routing {
                                    RoutingPolicy::RandomValid => "rnd",
                                    RoutingPolicy::DimensionOrder => "dim",
                                };
                                // Override labels skip the automatic CMP
                                // `{N}x ` prefix, so the core count is
                                // encoded here; single-core labels keep
                                // their historical form.
                                let cmp = if cores > 1 { format!("{cores}x-") } else { String::new() };
                                let label = format!(
                                    "{cmp}LN{levels}-t{tile_kb}k-{routing_short}-{}-m{scale}",
                                    backing.short()
                                );
                                let mut memory = configs::paper_memory();
                                memory.first_chunk_cycles *= scale;
                                let mut builder = HierarchySpec::builder()
                                    .label(label)
                                    .fabric(fabric)
                                    .memory(memory)
                                    .cores(cores);
                                builder = match backing {
                                    SweepBacking::PaperL3 => builder.backing_cache(configs::paper_l3()),
                                    SweepBacking::Memory => builder.backing(BackingSpec::Memory),
                                };
                                specs.push(builder.build()?);
                            }
                        }
                    }
                }
            }
        }
        Ok(specs)
    }

    /// Runs the sweep: expand → probe → prune → evaluate survivors.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the grid expands to an invalid spec or
    /// a simulation rejects its configuration. Individual survivor runs
    /// that fail at simulation time are reported through
    /// [`Study::failures`], like any experiment.
    pub fn run(&self) -> Result<SweepOutcome, ConfigError> {
        let specs = self.expand()?;
        let model = AreaModel::paper();
        let probe_profile = probe_profile();
        let mut probes = Vec::with_capacity(specs.len());
        for spec in &specs {
            let result = System::run_spec(spec, &probe_profile, self.probe_instructions, 1)?;
            probes.push(ProbePoint {
                label: spec.label(),
                ipc: result.ipc,
                energy_pj: result.energy.total_pj(),
                area_mm2: spec_area_mm2(spec, &model),
            });
        }
        let dominated = dominated_mask(&probes, self.epsilon);
        let survivors: Vec<HierarchySpec> = specs
            .into_iter()
            .zip(&dominated)
            .filter_map(|(spec, &dead)| (!dead).then_some(spec))
            .collect();
        let pruned = dominated.iter().filter(|&&d| d).count();
        let plan = ExperimentPlan::builder(self.name.clone())
            .configs(survivors)
            .options(self.options.clone())
            .build()?;
        let study = Study::run(&plan)?;
        let frontier = frontier_points(&plan, &study, &probes, self.epsilon);
        Ok(SweepOutcome {
            config: self.clone(),
            probes,
            pruned,
            plan,
            study,
            frontier,
        })
    }
}

/// The probe stage's representative workload: the balanced default profile
/// (its warm region is the capacity band the tile-size axis moves through).
fn probe_profile() -> WorkloadProfile {
    let mut profile = WorkloadProfile::default();
    profile.name = "sweep.probe".to_owned();
    profile
}

/// The cheap (IPC, energy, area) estimate of one grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbePoint {
    /// Spec label of the point.
    pub label: String,
    /// Probe-run IPC (higher is better).
    pub ipc: f64,
    /// Probe-run total energy in pJ (lower is better).
    pub energy_pj: f64,
    /// Modelled on-chip cache area in mm² (lower is better).
    pub area_mm2: f64,
}

/// Whether `a` ε-dominates `b`: no worse on every axis, and relatively
/// better by more than `epsilon` on at least one — so near-ties (within the
/// probe stage's noise floor) never prune each other.
#[must_use]
pub fn dominates(a: &ProbePoint, b: &ProbePoint, epsilon: f64) -> bool {
    a.ipc >= b.ipc
        && a.energy_pj <= b.energy_pj
        && a.area_mm2 <= b.area_mm2
        && (a.ipc > b.ipc * (1.0 + epsilon)
            || a.energy_pj < b.energy_pj * (1.0 - epsilon)
            || a.area_mm2 < b.area_mm2 * (1.0 - epsilon))
}

/// Marks every point that some other point ε-dominates.
fn dominated_mask(points: &[ProbePoint], epsilon: f64) -> Vec<bool> {
    points
        .iter()
        .map(|p| points.iter().any(|q| dominates(q, p, epsilon)))
        .collect()
}

/// One surviving point of the final Pareto frontier, carrying the
/// full-fidelity metrics of the survivor evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Spec label of the point.
    pub label: String,
    /// Harmonic-mean IPC over the survivor stage's workloads.
    pub ipc: f64,
    /// Mean total energy per workload in pJ.
    pub energy_pj: f64,
    /// Modelled on-chip cache area in mm² (from the probe stage — area is
    /// workload-independent).
    pub area_mm2: f64,
}

/// Aggregates the survivor study per configuration and keeps the points no
/// other survivor ε-dominates — the Pareto frontier of the sweep.
fn frontier_points(
    plan: &ExperimentPlan,
    study: &Study,
    probes: &[ProbePoint],
    epsilon: f64,
) -> Vec<FrontierPoint> {
    let mut aggregated = Vec::new();
    for label in &study.configs {
        let runs: Vec<_> = study.results.iter().filter(|r| &r.label == label).collect();
        if runs.is_empty() {
            continue; // every run of this survivor failed
        }
        let inv_sum: f64 = runs.iter().map(|r| 1.0 / r.ipc).sum();
        let ipc = runs.len() as f64 / inv_sum;
        let energy_pj =
            runs.iter().map(|r| r.energy.total_pj()).sum::<f64>() / runs.len() as f64;
        let area_mm2 = probes
            .iter()
            .find(|p| &p.label == label)
            .map_or(0.0, |p| p.area_mm2);
        aggregated.push(ProbePoint {
            label: label.clone(),
            ipc,
            energy_pj,
            area_mm2,
        });
    }
    debug_assert_eq!(study.configs.len(), plan.configs.len());
    let dominated = dominated_mask(&aggregated, epsilon);
    aggregated
        .into_iter()
        .zip(dominated)
        .filter_map(|(p, dead)| {
            (!dead).then_some(FrontierPoint {
                label: p.label,
                ipc: p.ipc,
                energy_pj: p.energy_pj,
                area_mm2: p.area_mm2,
            })
        })
        .collect()
}

/// Modelled on-chip cache area of a spec: the (2-ported) root, the fabric's
/// tiles and networks, every intermediate level, and the backing store.
#[must_use]
pub fn spec_area_mm2(spec: &HierarchySpec, model: &AreaModel) -> f64 {
    let mut area = match &spec.fabric {
        Some(fabric) => {
            let tiles = LNucaGeometry::new(fabric.levels)
                .map(|g| g.tile_count())
                .unwrap_or(0);
            model.lnuca_mm2(spec.root.size_bytes, tiles, fabric.tile_size_bytes)
        }
        None => model.l1_mm2(spec.root.size_bytes),
    };
    // Each core replicates the private front end (root + fabric); the
    // intermediate levels and backing store are shared.
    area *= spec.cores as f64;
    for level in &spec.intermediate {
        area += model.sram_mm2(level.cache.size_bytes);
    }
    match &spec.backing {
        BackingSpec::Cache(cache) => area += model.l3_mm2(cache.size_bytes),
        BackingSpec::DNuca(dnuca) => {
            area += model.dnuca_mm2(dnuca.rows * dnuca.cols, dnuca.bank_size_bytes);
        }
        BackingSpec::Memory => {}
    }
    area
}

/// Everything a sweep produced: the probe estimates, the pruning outcome,
/// and the survivor study.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The configuration that ran.
    pub config: SweepConfig,
    /// Probe estimates of every expanded point, in grid order.
    pub probes: Vec<ProbePoint>,
    /// Points the probe stage pruned as ε-dominated.
    pub pruned: usize,
    /// The survivor plan (what the expensive stage actually ran).
    pub plan: ExperimentPlan,
    /// Full-fidelity results of the survivors.
    pub study: Study,
    /// The Pareto frontier over the survivors' final metrics.
    pub frontier: Vec<FrontierPoint>,
}

impl SweepOutcome {
    /// Points the grid expanded to.
    #[must_use]
    pub fn evaluated(&self) -> usize {
        self.probes.len()
    }

    /// Points that survived pruning.
    #[must_use]
    pub fn survivors(&self) -> usize {
        self.evaluated() - self.pruned
    }

    /// Renders the sweep as an `lnuca-report/v1` document: the standard
    /// report of the survivor study ([`crate::scenario::report_value`])
    /// plus the `sweep` extension object `check-report` validates.
    #[must_use]
    pub fn report_value(&self) -> Value {
        let mut report = crate::scenario::report_value(&self.plan, &self.study);
        let frontier: Vec<Value> = self
            .frontier
            .iter()
            .map(|p| {
                Value::Object(vec![
                    ("label".to_owned(), Value::String(p.label.clone())),
                    ("ipc".to_owned(), Value::Float(p.ipc)),
                    ("energy_pj".to_owned(), Value::Float(p.energy_pj)),
                    ("area_mm2".to_owned(), Value::Float(p.area_mm2)),
                ])
            })
            .collect();
        let sweep = Value::Object(vec![
            ("evaluated".to_owned(), Value::UInt(self.evaluated() as u64)),
            ("pruned".to_owned(), Value::UInt(self.pruned as u64)),
            ("survivors".to_owned(), Value::UInt(self.survivors() as u64)),
            ("epsilon".to_owned(), Value::Float(self.config.epsilon)),
            (
                "probe_instructions".to_owned(),
                Value::UInt(self.config.probe_instructions),
            ),
            (
                "cores".to_owned(),
                Value::Array(
                    self.config.cores.iter().map(|&c| Value::UInt(c as u64)).collect(),
                ),
            ),
            ("frontier".to_owned(), Value::Array(frontier)),
        ]);
        if let Value::Object(fields) = &mut report {
            fields.push(("sweep".to_owned(), sweep));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_default_grid_meets_the_hundred_point_floor() {
        let grid = SweepConfig::grid();
        assert!(grid.point_count() >= 100, "grid has {} points", grid.point_count());
        let specs = grid.expand().expect("the default grid expands");
        assert_eq!(specs.len(), grid.point_count());
        // Labels are collision-free by construction.
        let labels: std::collections::HashSet<String> =
            specs.iter().map(HierarchySpec::label).collect();
        assert_eq!(labels.len(), specs.len());
    }

    #[test]
    fn dominance_requires_a_clear_margin() {
        let a = ProbePoint { label: "a".into(), ipc: 1.0, energy_pj: 100.0, area_mm2: 1.0 };
        let near = ProbePoint { label: "b".into(), ipc: 0.99, energy_pj: 100.5, area_mm2: 1.0 };
        let worse = ProbePoint { label: "c".into(), ipc: 0.8, energy_pj: 130.0, area_mm2: 1.0 };
        let tradeoff = ProbePoint { label: "d".into(), ipc: 1.3, energy_pj: 90.0, area_mm2: 2.0 };
        assert!(dominates(&a, &worse, 0.02));
        assert!(!dominates(&a, &near, 0.02), "near-ties are kept");
        assert!(!dominates(&a, &tradeoff, 0.02) && !dominates(&tradeoff, &a, 0.02));
    }

    #[test]
    fn slow_memory_points_are_always_dominated() {
        // Same shape at paper vs 3x DRAM latency: equal area, worse IPC and
        // energy — the guaranteed-prunable axis of the default grids.
        let fast = ProbePoint { label: "m1".into(), ipc: 0.9, energy_pj: 100.0, area_mm2: 1.5 };
        let slow = ProbePoint { label: "m3".into(), ipc: 0.5, energy_pj: 140.0, area_mm2: 1.5 };
        assert!(dominates(&fast, &slow, 0.02));
        let mask = dominated_mask(&[fast, slow], 0.02);
        assert_eq!(mask, vec![false, true]);
    }

    #[test]
    fn a_miniature_sweep_prunes_and_reports_cleanly() {
        let mut config = SweepConfig::miniature();
        config.options.instructions = 1_000;
        let outcome = config.run().expect("the miniature sweep runs");
        assert_eq!(outcome.evaluated(), config.point_count());
        assert!(outcome.pruned > 0, "the slow-DRAM axis guarantees dominated points");
        assert!(outcome.survivors() >= 1, "something must survive to evaluate");
        assert!(outcome.study.failures.is_empty(), "{:?}", outcome.study.failures);
        assert!(!outcome.frontier.is_empty(), "the frontier is never empty");
        crate::scenario::validate_report(&outcome.report_value())
            .expect("the extended report is check-report clean");
    }

    #[test]
    fn the_cores_axis_expands_to_cmp_points_and_is_recorded() {
        let grid = SweepConfig::grid();
        assert_eq!(grid.cores, vec![1, 2, 4]);
        let mut mini = SweepConfig::miniature();
        mini.cores = vec![1, 4];
        let specs = mini.expand().expect("the CMP grid expands");
        assert_eq!(specs.len(), mini.point_count());
        let cmp: Vec<_> = specs.iter().filter(|s| s.cores > 1).collect();
        assert_eq!(cmp.len(), specs.len() / 2, "half the points are 4-core");
        assert!(cmp.iter().all(|s| s.label().starts_with("4x-")), "CMP labels encode the core count");
        // Replicated private front ends cost area: with no shared backing
        // the 4-core twin of a point is exactly four front ends.
        let solo = specs.iter().find(|s| s.cores == 1 && s.label().contains("-mem-")).unwrap();
        let quad = specs
            .iter()
            .find(|s| s.cores == 4 && s.label().ends_with(solo.label().as_str()))
            .unwrap();
        let model = AreaModel::paper();
        let (a_solo, a_quad) = (spec_area_mm2(solo, &model), spec_area_mm2(quad, &model));
        assert!((a_quad - 4.0 * a_solo).abs() < 1e-9, "quad {a_quad} vs solo {a_solo}");
    }

    #[test]
    fn area_model_covers_every_backing() {
        let model = AreaModel::paper();
        let ln3_l3 = HierarchySpec::builder()
            .fabric(lnuca_core::LNucaConfig::paper(3).unwrap())
            .backing_cache(configs::paper_l3())
            .build()
            .unwrap();
        let ln3_mem = HierarchySpec::builder()
            .fabric(lnuca_core::LNucaConfig::paper(3).unwrap())
            .build()
            .unwrap();
        let conventional =
            crate::configs::HierarchyKind::Conventional(configs::conventional()).to_spec();
        let a_l3 = spec_area_mm2(&ln3_l3, &model);
        let a_mem = spec_area_mm2(&ln3_mem, &model);
        let a_conv = spec_area_mm2(&conventional, &model);
        assert!(a_l3 > a_mem, "the L3 adds area");
        assert!(a_conv > 0.9, "conventional = L1 + L2 + L3");
        // The fabric-only front end matches the calibrated Table II model.
        let expected = model.lnuca_mm2(32 * 1024, 14, 8 * 1024);
        assert!((a_mem - expected).abs() < 1e-9);
    }
}
