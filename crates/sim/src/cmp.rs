//! Multicore (CMP) simulation: N private root-tile domains over one shared
//! backing, kept coherent by the MSI directory of `lnuca-coherence`
//! (DESIGN.md §17).
//!
//! # Model
//!
//! A [`CmpMachine`] replicates the *private* side of a
//! [`HierarchySpec`] once per core: the root cache (L1) plus, when the spec
//! has an L-NUCA fabric, a private second level acting exactly like the
//! fabric does for the single-core shapes — a victim store for root
//! evictions (the Replacement network's job in the paper). The fabric is
//! collapsed into an equivalent set-associative cache (largest
//! power-of-two capacity not exceeding the fabric's, single-cycle-per-level
//! latency) so the private domain stays a synchronous functional model the
//! directory can reason about line by line. Behind the private domains sits
//! one **shared** backing — the spec's L3 cache, a capacity/latency
//! equivalent of its D-NUCA, or nothing but DRAM — plus the paper's
//! main-memory channel model.
//!
//! # Determinism and engine-agnosticism
//!
//! Every functional and coherence transition happens synchronously inside
//! [`CmpMemory`]'s admission path, at the cycle the owning core issues the
//! request; only the *completion time* is deferred, precomputed at issue.
//! Cores are ticked in ascending core index at every visited cycle, and a
//! request is rejected only by its own core's fixed in-flight window — so
//! the sequence of directory operations is a pure function of the workload
//! streams, independent of how the driver advances time. That makes
//! [`Engine::CycleStep`], [`Engine::EventHorizon`] and the batched runner
//! bit-identical for CMP runs exactly as they are for single-core runs:
//! ticking any component at a non-event cycle is a no-op, so visiting
//! extra cycles (or skipping dead ones) cannot reorder anything.
//!
//! # Zero steady-state allocation
//!
//! All queues (per-core in-flight windows) are bounded and preallocated,
//! the directory is fixed-slot (DESIGN.md §9), and the caches never
//! allocate after construction; a steady-state cycle performs no heap
//! allocation.

use crate::energy_model;
use crate::spec::{BackingSpec, HierarchySpec};
use crate::supervise::RunGuard;
use crate::system::{Engine, RunResult};
use lnuca_coherence::{Directory, DirectoryConfig, DirectoryCounters, MsiState, Recall};
use lnuca_cpu::{drain_ready, CoreConfig, CoreStats, DataMemory, OooCore};
use lnuca_mem::{
    CacheConfig, CacheStats, ConventionalCache, MainMemory, NoProbe, ProbeEvent, ProbeSink,
};
use lnuca_types::{Addr, ConfigError, Cycle, MemRequest, MemResponse, RunError, ServiceLevel};
use lnuca_workloads::{Suite, TraceGenerator, WorkloadProfile};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Per-core in-flight window: how many demand requests one core may have
/// outstanding before [`CmpMemory`] rejects further issues (mirrors the
/// single-core hierarchies' L1 MSHR count, Table I).
pub const CORE_SLOTS: usize = crate::configs::L1_MSHRS;

/// Cycles charged for the directory lookup every private-domain miss or
/// upgrade performs before data (or permission) can be returned.
pub const DIRECTORY_CYCLES: u64 = 3;

/// Extra cycles charged when a transaction had to reach into remote
/// private domains (invalidations or a dirty-owner downgrade): one
/// round trip over the on-chip interconnect.
pub const REMOTE_CYCLES: u64 = 10;

/// Serializable snapshot of the MSI directory counters, carried in
/// [`RunResult::coherence`] for CMP runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoherenceStats {
    /// Read transactions handled by the directory.
    pub reads: u64,
    /// Write/upgrade transactions handled by the directory.
    pub writes: u64,
    /// Transactions that found the line already tracked.
    pub hits: u64,
    /// Transactions that allocated a fresh directory entry.
    pub misses: u64,
    /// Lines whose tracking entry was freed (last private copy dropped).
    pub evictions: u64,
    /// Invalidation messages sent to remote cores.
    pub invalidations_sent: u64,
    /// Modified owners downgraded to Shared by a remote read.
    pub downgrades: u64,
    /// Dirty lines written back toward the shared level.
    pub writebacks: u64,
    /// Directory-capacity recalls (a tracked line displaced to make room).
    pub recalls: u64,
    /// Invalidations received, per core.
    pub per_core_invalidations: Vec<u64>,
}

impl From<&DirectoryCounters> for CoherenceStats {
    fn from(c: &DirectoryCounters) -> Self {
        CoherenceStats {
            reads: c.reads,
            writes: c.writes,
            hits: c.hits,
            misses: c.misses,
            evictions: c.evictions,
            invalidations_sent: c.invalidations_sent,
            downgrades: c.downgrades,
            writebacks: c.writebacks,
            recalls: c.recalls,
            per_core_invalidations: c.per_core_invalidations.clone(),
        }
    }
}

/// One per-core row of a CMP [`RunResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreRow {
    /// Core index.
    pub core: usize,
    /// Instructions this core committed.
    pub instructions: u64,
    /// This core's committed IPC over the shared clock.
    pub ipc: f64,
    /// Core-side counters.
    pub stats: CoreStats,
    /// Private L1 counters.
    pub l1: CacheStats,
    /// Private fabric-equivalent counters, when the spec has a fabric.
    pub fabric: Option<CacheStats>,
    /// Demand accesses serviced entirely inside the private domain.
    pub coherence_hits: u64,
    /// Demand accesses that needed a directory transaction.
    pub coherence_misses: u64,
    /// Invalidations this core's private domain received.
    pub invalidations_received: u64,
}

/// The per-core private domain: root cache, optional fabric-equivalent
/// second level, and the bounded completion queue feeding the core back.
#[derive(Debug)]
struct Lane {
    l1: ConventionalCache,
    fabric: Option<ConventionalCache>,
    pending: VecDeque<MemResponse>,
    coherence_hits: u64,
    coherence_misses: u64,
}

impl Lane {
    fn invalidate(&mut self, addr: Addr) -> bool {
        let in_l1 = self.l1.invalidate(addr).is_some();
        let in_fabric = self
            .fabric
            .as_mut()
            .is_some_and(|f| f.invalidate(addr).is_some());
        in_l1 || in_fabric
    }
}

/// The shared memory side of a CMP: every core's private domain, the
/// shared backing, the DRAM channel and the MSI directory.
///
/// Implements [`DataMemory`] only so it can live inside
/// [`crate::hierarchy::AnyHierarchy`]; cores drive it through per-core
/// [`CoreView`]s instead, which carry the issuing core's index.
#[derive(Debug)]
pub struct CmpMemory<P: ProbeSink = NoProbe> {
    lanes: Vec<Lane>,
    shared: Option<ConventionalCache>,
    shared_level: ServiceLevel,
    memory: MainMemory,
    memory_block: u64,
    directory: Directory,
    block_size: u64,
    label: String,
    memory_accesses: u64,
    writebacks: u64,
    probe: P,
}

impl<P: ProbeSink> CmpMemory<P> {
    /// Builds the memory side of a CMP from a validated spec.
    fn from_spec(spec: &HierarchySpec, probe: P) -> Result<Self, ConfigError> {
        spec.validate()?;
        let block_size = spec.root.block_size;
        let fabric_config = spec
            .fabric
            .as_ref()
            .map(|f| fabric_equivalent(f, block_size))
            .transpose()?;
        let lanes = (0..spec.cores)
            .map(|_| -> Result<Lane, ConfigError> {
                Ok(Lane {
                    l1: ConventionalCache::new(spec.root.clone())?,
                    fabric: fabric_config
                        .clone()
                        .map(ConventionalCache::new)
                        .transpose()?,
                    pending: VecDeque::with_capacity(CORE_SLOTS),
                    coherence_hits: 0,
                    coherence_misses: 0,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let (shared, shared_level, memory_block) = match &spec.backing {
            BackingSpec::Cache(cfg) => (
                Some(ConventionalCache::new(cfg.clone())?),
                ServiceLevel::L3,
                cfg.block_size,
            ),
            BackingSpec::DNuca(cfg) => {
                let equivalent = dnuca_equivalent(cfg)?;
                let block = equivalent.block_size;
                (
                    Some(ConventionalCache::new(equivalent)?),
                    ServiceLevel::DNucaRow(0),
                    block,
                )
            }
            BackingSpec::Memory => (None, ServiceLevel::Memory, block_size),
        };
        let directory = Directory::new(DirectoryConfig::new(spec.cores))
            .map_err(|e| ConfigError::new("cores", e.0))?;
        Ok(CmpMemory {
            lanes,
            shared,
            shared_level,
            memory: MainMemory::new(spec.memory.clone())?,
            memory_block,
            directory,
            block_size,
            label: spec.label(),
            memory_accesses: 0,
            writebacks: 0,
            probe,
        })
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.lanes.len()
    }

    /// The probe sink (for reading back recorded events).
    #[must_use]
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consumes the memory, returning the probe sink.
    #[must_use]
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// The MSI directory's counters.
    #[must_use]
    pub fn directory_counters(&self) -> &DirectoryCounters {
        self.directory.counters()
    }

    /// The block size lines are tracked at (the directory's line unit).
    #[must_use]
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Final (state, sharer mask, owner) of a line, for the oracle.
    #[must_use]
    pub fn line_state(&self, line: u64) -> (MsiState, u64, Option<usize>) {
        self.directory.state_of(line)
    }

    /// Iterates over every line the directory still tracks.
    pub fn tracked_lines(&self) -> impl Iterator<Item = (u64, MsiState, u64, Option<usize>)> + '_ {
        self.directory.lines()
    }

    /// Aggregate statistics over all private domains plus the shared side,
    /// in the shape the report/energy code consumes. The private
    /// fabric-equivalents aggregate into `l2`, the shared backing into
    /// `l3` (regardless of its kind — the D-NUCA equivalent is a
    /// conventional cache here; DESIGN.md §17).
    #[must_use]
    pub fn stats(&self) -> crate::hierarchy::HierarchyStats {
        let mut l1 = CacheStats::default();
        let mut fabric = CacheStats::default();
        let mut has_fabric = false;
        for lane in &self.lanes {
            add_cache_stats(&mut l1, lane.l1.stats());
            if let Some(f) = &lane.fabric {
                has_fabric = true;
                add_cache_stats(&mut fabric, f.stats());
            }
        }
        crate::hierarchy::HierarchyStats {
            label: self.label.clone(),
            l1,
            l2: has_fabric.then_some(fabric),
            deeper_levels: Vec::new(),
            l3: self.shared.as_ref().map(|s| *s.stats()),
            lnuca: None,
            lnuca_tiles: 0,
            dnuca: None,
            dnuca_mesh: None,
            dnuca_banks: 0,
            memory_accesses: self.memory_accesses,
            write_drains: self.writebacks,
        }
    }

    /// The admission path: every functional/coherence transition of the
    /// request happens here, synchronously; only the completion is
    /// deferred, at a time fully determined at issue.
    fn issue_for(&mut self, core: usize, req: MemRequest, now: Cycle) -> bool {
        if self.lanes[core].pending.len() >= CORE_SLOTS {
            return false;
        }
        let is_write = req.kind.is_write();
        let line = req.addr.0 / self.block_size;
        let line_addr = Addr(line * self.block_size);

        let in_l1 = self.lanes[core].l1.probe(line_addr);
        let in_fabric = self.lanes[core]
            .fabric
            .as_ref()
            .is_some_and(|f| f.probe(line_addr));
        let (state, sharers, owner) = self.directory.state_of(line);
        let permitted = if is_write {
            state == MsiState::Modified && owner == Some(core)
        } else {
            sharers & (1u64 << core) != 0
        };
        let local_hit = (in_l1 || in_fabric) && permitted;
        self.probe.record(ProbeEvent::CoherentAccess {
            core: core as u8,
            addr: req.addr,
            is_write,
            hit: local_hit,
        });

        let (done, served) = if local_hit {
            self.lanes[core].coherence_hits += 1;
            self.service_local(core, line_addr, is_write, in_l1, now)
        } else {
            self.lanes[core].coherence_misses += 1;
            self.service_transaction(core, line, line_addr, is_write, in_l1 || in_fabric, now)
        };
        let resp = MemResponse::for_request(&req, done, served);
        self.lanes[core].pending.push_back(resp);
        true
    }

    /// A private-domain hit: data comes from the L1 or is promoted out of
    /// the fabric-equivalent, no directory involvement.
    fn service_local(
        &mut self,
        core: usize,
        line_addr: Addr,
        is_write: bool,
        in_l1: bool,
        now: Cycle,
    ) -> (Cycle, ServiceLevel) {
        if in_l1 {
            let out = self.lanes[core].l1.access(line_addr, is_write, now);
            (out.resolved_at(), ServiceLevel::L1)
        } else {
            // Root miss, fabric hit: charge the root lookup, then the
            // fabric access, then promote the line back to the root (its
            // victim demotes into the fabric, as the paper's Replacement
            // network would).
            let miss = self.lanes[core].l1.access(line_addr, is_write, now);
            let fabric = self.lanes[core]
                .fabric
                .as_mut()
                .expect("local fabric hit requires a fabric")
                .access(line_addr, is_write, miss.resolved_at());
            self.promote(core, line_addr);
            (fabric.resolved_at(), ServiceLevel::LNucaLevel(2))
        }
    }

    /// A directory transaction: read/write miss or write upgrade.
    fn service_transaction(
        &mut self,
        core: usize,
        line: u64,
        line_addr: Addr,
        is_write: bool,
        had_copy: bool,
        now: Cycle,
    ) -> (Cycle, ServiceLevel) {
        let tx = if is_write {
            self.directory.write(core, line)
        } else {
            self.directory.read(core, line)
        };
        // Functional side effects first, in a fixed order: the recall (a
        // *different* line displaced from the directory), then the remote
        // invalidations of this line, then the dirty-owner writeback.
        if let Some(recall) = tx.recall {
            self.apply_recall(recall);
        }
        if tx.invalidate != 0 {
            for c in 0..self.lanes.len() {
                if tx.invalidate & (1u64 << c) != 0 {
                    self.lanes[c].invalidate(line_addr);
                }
            }
        }
        if tx.writeback {
            self.write_to_shared(line_addr);
        }

        // Timing: root lookup, then (for true misses) the walk outward.
        let l1_out = self.lanes[core].l1.access(line_addr, is_write, now);
        let mut ready = l1_out.resolved_at() + DIRECTORY_CYCLES;
        let mut served = if had_copy {
            // Upgrade: the data is already local, only permission moved.
            ServiceLevel::L1
        } else {
            if let Some(fabric) = self.lanes[core].fabric.as_mut() {
                ready = fabric.access(line_addr, is_write, ready).resolved_at();
            }
            let (outer_ready, outer_served) = self.fetch_shared(line_addr, ready);
            ready = outer_ready;
            self.fill_private(core, line_addr);
            outer_served
        };
        if had_copy && !self.lanes[core].l1.probe(line_addr) {
            // Upgrading a line that only the fabric holds: promote it.
            self.promote(core, line_addr);
            served = ServiceLevel::LNucaLevel(2);
        }
        if tx.invalidate != 0 || tx.writeback {
            ready += REMOTE_CYCLES;
        }
        (ready, served)
    }

    /// Fetches a line from the shared level (or DRAM), filling the shared
    /// cache on a shared miss.
    fn fetch_shared(&mut self, line_addr: Addr, start: Cycle) -> (Cycle, ServiceLevel) {
        match &mut self.shared {
            Some(shared) => {
                let out = shared.access(line_addr, false, start);
                if out.is_hit() {
                    (out.resolved_at(), self.shared_level)
                } else {
                    self.memory_accesses += 1;
                    let done = self.memory.access(out.resolved_at(), self.memory_block);
                    shared.fill(line_addr, false);
                    (done, ServiceLevel::Memory)
                }
            }
            None => {
                self.memory_accesses += 1;
                let done = self.memory.access(start, self.memory_block);
                (done, ServiceLevel::Memory)
            }
        }
    }

    /// Fills a fetched line into the core's root cache, demoting the
    /// root victim into the fabric-equivalent and dropping the fabric
    /// victim out of the private domain.
    fn fill_private(&mut self, core: usize, line_addr: Addr) {
        if let Some(victim) = self.lanes[core].l1.fill(line_addr, false) {
            self.demote(core, victim.addr);
        }
    }

    /// Moves a fabric-resident line up into the root (the victim demotes
    /// back down), keeping exactly one private copy per core.
    fn promote(&mut self, core: usize, line_addr: Addr) {
        if let Some(fabric) = self.lanes[core].fabric.as_mut() {
            fabric.invalidate(line_addr);
        }
        if let Some(victim) = self.lanes[core].l1.fill(line_addr, false) {
            self.demote(core, victim.addr);
        }
    }

    /// A root victim demotes into the fabric-equivalent when there is
    /// one; its own victim — or the root victim directly, without a
    /// fabric — leaves the private domain and is reported to the
    /// directory (with dirtiness taken from the MSI state, the single
    /// source of truth for modified data).
    fn demote(&mut self, core: usize, victim_addr: Addr) {
        match self.lanes[core].fabric.as_mut() {
            Some(fabric) => {
                if let Some(out) = fabric.fill(victim_addr, false) {
                    self.drop_from_domain(core, out.addr);
                }
            }
            None => self.drop_from_domain(core, victim_addr),
        }
    }

    fn drop_from_domain(&mut self, core: usize, addr: Addr) {
        let line = addr.0 / self.block_size;
        let (state, _, owner) = self.directory.state_of(line);
        let dirty = state == MsiState::Modified && owner == Some(core);
        self.directory.evict(core, line, dirty);
        if dirty {
            self.write_to_shared(Addr(line * self.block_size));
        }
        self.probe.record(ProbeEvent::CoherentEvict {
            core: core as u8,
            addr,
        });
    }

    /// A directory recall: every private copy of the displaced line is
    /// invalidated; a modified copy drains to the shared level.
    fn apply_recall(&mut self, recall: Recall) {
        let addr = Addr(recall.line * self.block_size);
        for c in 0..self.lanes.len() {
            if recall.invalidate & (1u64 << c) != 0 {
                self.lanes[c].invalidate(addr);
            }
        }
        if recall.writeback {
            self.write_to_shared(addr);
        }
        self.probe.record(ProbeEvent::CoherentRecall { addr });
    }

    /// Drains modified data toward the shared level (writeback-allocate).
    fn write_to_shared(&mut self, addr: Addr) {
        self.writebacks += 1;
        if let Some(shared) = &mut self.shared {
            if shared.probe(addr) {
                shared.mark_dirty(addr);
            } else {
                shared.fill(addr, true);
            }
        }
    }

    fn pending_next_event(&self, now: Cycle) -> Option<Cycle> {
        self.lanes
            .iter()
            .flat_map(|lane| lane.pending.iter())
            .map(|r| r.completed_at.max(now.next()))
            .min()
    }
}

impl<P: ProbeSink> DataMemory for CmpMemory<P> {
    /// Core-less issue is not part of the CMP model; requests must come
    /// through a [`CoreView`]. Rejecting (rather than panicking) keeps the
    /// trait total for the [`crate::hierarchy::AnyHierarchy`] wrapper.
    fn issue(&mut self, _req: MemRequest, _now: Cycle) -> bool {
        false
    }

    fn drain_completions(&mut self, now: Cycle, out: &mut Vec<MemResponse>) {
        for lane in &mut self.lanes {
            drain_ready(&mut lane.pending, now, out);
        }
    }

    fn tick(&mut self, _now: Cycle) {}

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.pending_next_event(now)
    }
}

/// One core's window onto the shared [`CmpMemory`]: tags every request
/// with the core index and drains only that core's completions.
pub struct CoreView<'a, P: ProbeSink> {
    mem: &'a mut CmpMemory<P>,
    core: usize,
}

impl<P: ProbeSink> DataMemory for CoreView<'_, P> {
    fn issue(&mut self, req: MemRequest, now: Cycle) -> bool {
        self.mem.issue_for(self.core, req, now)
    }

    fn drain_completions(&mut self, now: Cycle, out: &mut Vec<MemResponse>) {
        drain_ready(&mut self.mem.lanes[self.core].pending, now, out);
    }

    fn tick(&mut self, _now: Cycle) {}

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.mem.lanes[self.core]
            .pending
            .iter()
            .map(|r| r.completed_at.max(now.next()))
            .min()
    }
}

/// A complete CMP machine: N out-of-order cores (one decorrelated trace
/// each, via [`TraceGenerator::for_core`]) over one [`CmpMemory`].
pub struct CmpMachine<P: ProbeSink = NoProbe> {
    cores: Vec<OooCore<std::iter::Take<TraceGenerator>>>,
    mem: CmpMemory<P>,
    workload: String,
    suite: Suite,
}

impl<P: ProbeSink> CmpMachine<P> {
    /// Builds the machine: `instructions` is the **per-core** budget, and
    /// `seed` the base trace seed each core perturbs by its index.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the spec or any derived component
    /// configuration is invalid.
    pub fn from_spec(
        spec: &HierarchySpec,
        profile: &WorkloadProfile,
        instructions: u64,
        seed: u64,
        probe: P,
    ) -> Result<Self, ConfigError> {
        let mem = CmpMemory::from_spec(spec, probe)?;
        let cores = (0..spec.cores)
            .map(|c| {
                let trace = TraceGenerator::for_core(profile.clone(), seed, c, spec.cores)
                    .take(usize::try_from(instructions).unwrap_or(usize::MAX));
                OooCore::new(CoreConfig::paper(), trace)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CmpMachine {
            cores,
            mem,
            workload: profile.name.clone(),
            suite: profile.suite,
        })
    }

    /// `true` once every core has drained its trace and pipeline.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.cores.iter().all(OooCore::is_finished)
    }

    /// Total instructions committed across all cores.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.cores.iter().map(OooCore::committed).sum()
    }

    /// One simulated cycle: the memory side first, then every core in
    /// ascending index — the fixed order the determinism argument of the
    /// [module docs](self) relies on.
    pub fn tick(&mut self, now: Cycle) {
        self.mem.tick(now);
        for (c, core) in self.cores.iter_mut().enumerate() {
            let mut view = CoreView {
                mem: &mut self.mem,
                core: c,
            };
            core.tick(now, &mut view);
        }
    }

    /// The machine-wide event horizon: the earliest pending completion or
    /// unfinished-core event (DESIGN.md §10 contract, merged over all
    /// components).
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon = self.mem.pending_next_event(now);
        for core in &self.cores {
            horizon = match (horizon, core.next_event(now)) {
                (Some(h), Some(c)) => Some(h.min(c)),
                (h, c) => h.or(c),
            };
        }
        horizon
    }

    /// Closes every core's stall windows, exactly as the solo run tail
    /// does per core.
    pub fn finalize(&mut self, now: Cycle) {
        for core in &mut self.cores {
            core.finalize_stats(now);
        }
    }

    /// Materialises the [`RunResult`]: aggregate counters plus one
    /// [`CoreRow`] per core and the directory snapshot.
    #[must_use]
    pub fn result(&self, now: Cycle) -> RunResult {
        let stats = self.mem.stats();
        let energy = energy_model::account_for(&stats, now.0);
        let mut core_total = CoreStats::default();
        let per_core = self
            .cores
            .iter()
            .enumerate()
            .map(|(c, core)| {
                add_core_stats(&mut core_total, core.stats());
                CoreRow {
                    core: c,
                    instructions: core.committed(),
                    ipc: core.stats().ipc(now),
                    stats: *core.stats(),
                    l1: *self.mem.lanes[c].l1.stats(),
                    fabric: self.mem.lanes[c].fabric.as_ref().map(|f| *f.stats()),
                    coherence_hits: self.mem.lanes[c].coherence_hits,
                    coherence_misses: self.mem.lanes[c].coherence_misses,
                    invalidations_received: self
                        .mem
                        .directory_counters()
                        .per_core_invalidations
                        .get(c)
                        .copied()
                        .unwrap_or(0),
                }
            })
            .collect();
        RunResult {
            label: stats.label.clone(),
            workload: self.workload.clone(),
            suite: self.suite,
            instructions: self.committed(),
            cycles: now.0,
            ipc: core_total.ipc(now),
            core: core_total,
            hierarchy: stats,
            energy,
            per_core,
            coherence: Some(CoherenceStats::from(self.mem.directory_counters())),
        }
    }

    /// Consumes the machine, returning the memory side (probe and
    /// directory still inside).
    #[must_use]
    pub fn into_memory(self) -> CmpMemory<P> {
        self.mem
    }
}

/// The CMP counterpart of the solo run loop in
/// [`crate::system::System::run_spec_guarded`]: same cycle cap, same
/// engine formulas, same guard observation points — `instructions` is the
/// per-core budget.
///
/// # Errors
///
/// Returns [`RunError::Config`] if the composition is invalid, or
/// whatever failure the guard trips with.
pub fn run_cmp_guarded<P: ProbeSink, G: RunGuard>(
    engine: Engine,
    spec: &HierarchySpec,
    profile: &WorkloadProfile,
    instructions: u64,
    seed: u64,
    probe: P,
    guard: &mut G,
) -> Result<(RunResult, crate::hierarchy::AnyHierarchy<P>), RunError> {
    let mut machine = CmpMachine::from_spec(spec, profile, instructions, seed, probe)?;
    let cycle_cap = instructions.saturating_mul(400) + 1_000_000;
    let mut now = Cycle(0);
    while !machine.is_finished() && now.0 < cycle_cap {
        guard.observe(now, machine.committed())?;
        machine.tick(now);
        now = match engine {
            Engine::CycleStep => now.next(),
            Engine::EventHorizon => {
                if machine.is_finished() {
                    now.next()
                } else {
                    let next = machine
                        .next_event(now)
                        .unwrap_or(Cycle(cycle_cap))
                        .max(now.next())
                        .min(Cycle(cycle_cap).max(now.next()));
                    match guard.horizon_clamp() {
                        Some(clamp) => next.min(Cycle(clamp.max(now.0 + 1))),
                        None => next,
                    }
                }
            }
        };
    }
    machine.finalize(now);
    let result = machine.result(now);
    Ok((result, crate::hierarchy::AnyHierarchy::Cmp(machine.into_memory())))
}

/// Collapses an L-NUCA fabric into the private-second-level equivalent:
/// largest power-of-two capacity not exceeding the fabric's, tile
/// associativity (rounded down to a power of two), root-block lines, and
/// one cycle per fabric level of latency.
fn fabric_equivalent(
    fabric: &lnuca_core::LNucaConfig,
    block_size: u64,
) -> Result<CacheConfig, ConfigError> {
    let capacity = lnuca_core::LNucaGeometry::new(fabric.levels)?
        .capacity_bytes(fabric.tile_size_bytes);
    let size = pow2_floor(capacity.max(block_size * 2));
    let ways = pow2_floor(fabric.tile_ways.max(1) as u64) as usize;
    let levels = u64::from(fabric.levels);
    CacheConfig::builder("fabric")
        .size_bytes(size)
        .ways(ways)
        .block_size(block_size)
        .completion_cycles(levels + 1)
        .initiation_interval(1)
        .miss_determination_cycles(levels.max(1))
        .build()
}

/// Collapses a D-NUCA into the shared-backing equivalent: full capacity,
/// bank associativity and block size, bank latency plus the mean mesh
/// traversal.
fn dnuca_equivalent(dnuca: &lnuca_dnuca::DNucaConfig) -> Result<CacheConfig, ConfigError> {
    let traversal = dnuca.routing_latency * dnuca.rows as u64;
    CacheConfig::builder("shared-dnuca")
        .size_bytes(pow2_floor(dnuca.capacity_bytes()))
        .ways(pow2_floor(dnuca.bank_ways.max(1) as u64) as usize)
        .block_size(dnuca.block_size)
        .completion_cycles(dnuca.bank_completion_cycles + traversal)
        .initiation_interval(dnuca.bank_initiation_interval)
        .build()
}

fn pow2_floor(x: u64) -> u64 {
    debug_assert!(x > 0);
    1u64 << (63 - x.leading_zeros())
}

fn add_cache_stats(total: &mut CacheStats, s: &CacheStats) {
    total.accesses += s.accesses;
    total.read_hits += s.read_hits;
    total.read_misses += s.read_misses;
    total.write_hits += s.write_hits;
    total.write_misses += s.write_misses;
    total.fills += s.fills;
    total.clean_evictions += s.clean_evictions;
    total.dirty_evictions += s.dirty_evictions;
}

fn add_core_stats(total: &mut CoreStats, s: &CoreStats) {
    total.fetched += s.fetched;
    total.committed += s.committed;
    total.loads += s.loads;
    total.stores += s.stores;
    total.branches += s.branches;
    total.mispredictions += s.mispredictions;
    total.load_latency_sum += s.load_latency_sum;
    total.load_latency_samples += s.load_latency_samples;
    total.rob_full_stalls += s.rob_full_stalls;
    total.memory_reject_stalls += s.memory_reject_stalls;
    total.store_buffer_stalls += s.store_buffer_stalls;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use crate::spec::BackingSpec;
    use lnuca_workloads::{suites, AccessPattern};

    fn cmp_spec(cores: usize, fabric: bool, backing: BackingSpec) -> HierarchySpec {
        let mut builder = HierarchySpec::builder().backing(backing).cores(cores);
        if fabric {
            builder = builder.fabric(lnuca_core::LNucaConfig::paper(2).unwrap());
        }
        builder.build().unwrap()
    }

    fn sharing_profile() -> WorkloadProfile {
        suites::adversarial()
            .into_iter()
            .find(|p| p.pattern == AccessPattern::ProducerConsumer)
            .expect("the adversarial suite ships a producer-consumer class")
    }

    #[test]
    fn a_cmp_run_commits_every_core_budget_and_reports_rows() {
        let spec = cmp_spec(4, true, BackingSpec::DNuca(lnuca_dnuca::DNucaConfig::paper()));
        let profile = sharing_profile();
        let (result, _) = run_cmp_guarded(
            Engine::EventHorizon,
            &spec,
            &profile,
            800,
            7,
            lnuca_mem::NoProbe,
            &mut crate::supervise::NoGuard,
        )
        .unwrap();
        assert_eq!(result.instructions, 4 * 800);
        assert_eq!(result.per_core.len(), 4);
        for row in &result.per_core {
            assert_eq!(row.instructions, 800);
            assert!(row.fabric.is_some());
        }
        let coherence = result.coherence.as_ref().unwrap();
        assert!(coherence.reads + coherence.writes > 0);
        assert!(result.label.starts_with("4x "));
        assert!(result.ipc > 0.0);
    }

    #[test]
    fn sharing_workloads_move_the_directory() {
        let spec = cmp_spec(2, false, BackingSpec::Cache(configs::paper_l3()));
        let profile = sharing_profile();
        let (result, hierarchy) = run_cmp_guarded(
            Engine::EventHorizon,
            &spec,
            &profile,
            1_500,
            3,
            lnuca_mem::NoProbe,
            &mut crate::supervise::NoGuard,
        )
        .unwrap();
        let coherence = result.coherence.as_ref().unwrap();
        assert!(
            coherence.invalidations_sent > 0,
            "producer-consumer sharing must invalidate remote copies: {coherence:?}"
        );
        assert!(coherence.writebacks > 0, "dirty lines must drain: {coherence:?}");
        let crate::hierarchy::AnyHierarchy::Cmp(mem) = hierarchy else {
            panic!("CMP runs return the CMP memory");
        };
        // Residency/directory agreement at the end of the run: every
        // privately held line is tracked, with the holder in the sharer set.
        for (c, lane) in mem.lanes.iter().enumerate() {
            for line in lane.l1.lines() {
                let (state, sharers, _) = mem.line_state(line.addr.0 / mem.block_size);
                assert_ne!(state, MsiState::Invalid, "core {c} holds an untracked line");
                assert!(sharers & (1u64 << c) != 0, "core {c} missing from sharer set");
            }
        }
    }

    #[test]
    fn both_engines_are_bit_identical_for_cmp_runs() {
        for (fabric, backing) in [
            (true, BackingSpec::DNuca(lnuca_dnuca::DNucaConfig::paper())),
            (false, BackingSpec::Cache(configs::paper_l3())),
            (true, BackingSpec::Memory),
        ] {
            let spec = cmp_spec(4, fabric, backing);
            let profile = sharing_profile();
            let horizon = run_cmp_guarded(
                Engine::EventHorizon,
                &spec,
                &profile,
                700,
                11,
                lnuca_mem::NoProbe,
                &mut crate::supervise::NoGuard,
            )
            .unwrap()
            .0;
            let step = run_cmp_guarded(
                Engine::CycleStep,
                &spec,
                &profile,
                700,
                11,
                lnuca_mem::NoProbe,
                &mut crate::supervise::NoGuard,
            )
            .unwrap()
            .0;
            assert_eq!(horizon, step, "engines diverged for {}", spec.label());
        }
    }

    #[test]
    fn single_core_members_never_emit_coherence_traffic() {
        // The degenerate 1-core CMP machine still runs (the directory just
        // never invalidates anyone).
        let spec = cmp_spec(1, false, BackingSpec::Cache(configs::paper_l3()));
        let profile = sharing_profile();
        let (result, _) = run_cmp_guarded(
            Engine::EventHorizon,
            &spec,
            &profile,
            500,
            5,
            lnuca_mem::NoProbe,
            &mut crate::supervise::NoGuard,
        )
        .unwrap();
        let coherence = result.coherence.as_ref().unwrap();
        assert_eq!(coherence.invalidations_sent, 0);
        assert_eq!(coherence.downgrades, 0);
    }
}
