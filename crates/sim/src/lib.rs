//! Full-system simulation and experiment harness for the Light NUCA paper.
//!
//! This crate glues every substrate together: the out-of-order core
//! (`lnuca-cpu`), the conventional caches and DRAM (`lnuca-mem`), the L-NUCA
//! fabric (`lnuca-core`), the D-NUCA baseline (`lnuca-dnuca`), the synthetic
//! workloads (`lnuca-workloads`) and the energy/area models (`lnuca-energy`).
//! It provides:
//!
//! * [`configs`] — the paper's four hierarchy configurations (Fig. 1) with
//!   all Table I parameters as defaults,
//! * [`spec`] — the declarative [`HierarchySpec`]: root cache + optional
//!   L-NUCA fabric + intermediate cache chain + L3/D-NUCA/memory backing,
//!   subsuming all four [`HierarchyKind`] variants and admitting shapes the
//!   closed enum could not express,
//! * [`hierarchy`] — [`ClassicHierarchy`] (fabric-less) and
//!   [`LNucaHierarchy`] (fabric-fronted), both built from specs and
//!   implementing [`lnuca_cpu::DataMemory`],
//! * [`system`] — a [`System`] = core + hierarchy, runnable for a given
//!   instruction budget,
//! * [`energy_model`] — turns run statistics into the stacked-bar energy
//!   accounts of Figs. 4(b) and 5(b),
//! * [`batch`] — the [`BatchRunner`]: one worker stepping N independent
//!   simulations in lockstep along a per-batch horizon heap, bit-identical
//!   per member to the solo path,
//! * [`experiments`] — the declarative [`ExperimentPlan`] and the single
//!   [`Study::run`] entry point (the paper studies are the built-in
//!   `paper_*` plans); `ExperimentOptions::batch_size` routes the matrix
//!   through the batched engine,
//! * [`supervise`] — run supervision (DESIGN.md §14): panic isolation per
//!   job and batch member, cycle/livelock/wall-clock watchdogs, bounded
//!   retry, the cooperative [`StopSignal`] behind service cancellation and
//!   drain (DESIGN.md §15), and the deterministic fault-injection seam,
//! * [`journal`] — the crash-safe, content-addressed study journal behind
//!   `lnuca run --journal`/`--resume`,
//! * [`scenario`] — `lnuca-scenario/v1` JSON documents for plans, the
//!   built-in scenario registry and the `lnuca-report/v1` emitter,
//! * [`report`] — plain-text table formatting shared by the bench binaries.
//!
//! # Example
//!
//! ```
//! use lnuca_sim::spec::HierarchySpec;
//! use lnuca_sim::system::System;
//! use lnuca_workloads::suites;
//!
//! // The paper's 2-level L-NUCA in front of the 8 MB L3, as a composed spec.
//! let spec = HierarchySpec::builder()
//!     .fabric(lnuca_core::LNucaConfig::paper(2)?)
//!     .backing_cache(lnuca_sim::configs::paper_l3())
//!     .build()?;
//! let profile = suites::spec_int_like()[0].clone();
//! let result = System::run_spec(&spec, &profile, 20_000, 1)?;
//! assert!(result.ipc > 0.0);
//! assert_eq!(result.label, "LN2-72KB");
//! # Ok::<(), lnuca_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cmp;
pub mod configs;
pub mod energy_model;
pub mod experiments;
pub mod hierarchy;
pub mod journal;
pub mod report;
pub mod scenario;
pub mod spec;
pub mod supervise;
pub mod sweep;
pub mod system;

pub use batch::{BatchJob, BatchRunner};
pub use cmp::{CmpMachine, CmpMemory, CoherenceStats, CoreRow};
pub use configs::HierarchyKind;
pub use experiments::{ExperimentPlan, FailedRun, Study};
pub use hierarchy::{ClassicHierarchy, HierarchyStats, LNucaHierarchy};
pub use spec::{BackingSpec, HierarchySpec, IntermediateSpec};
pub use supervise::{Budgets, StopSignal, Supervisor};
pub use sweep::{SweepConfig, SweepOutcome};
pub use system::{Engine, RunResult, System};
