//! Full-system simulation and experiment harness for the Light NUCA paper.
//!
//! This crate glues every substrate together: the out-of-order core
//! (`lnuca-cpu`), the conventional caches and DRAM (`lnuca-mem`), the L-NUCA
//! fabric (`lnuca-core`), the D-NUCA baseline (`lnuca-dnuca`), the synthetic
//! workloads (`lnuca-workloads`) and the energy/area models (`lnuca-energy`).
//! It provides:
//!
//! * [`configs`] — the paper's four hierarchy configurations (Fig. 1) with
//!   all Table I parameters as defaults,
//! * [`hierarchy`] — [`ClassicHierarchy`] (conventional 3-level and
//!   L1 + D-NUCA) and [`LNucaHierarchy`] (L-NUCA + L3 and
//!   L-NUCA + D-NUCA), both implementing [`lnuca_cpu::DataMemory`],
//! * [`system`] — a [`System`] = core + hierarchy, runnable for a given
//!   instruction budget,
//! * [`energy_model`] — turns run statistics into the stacked-bar energy
//!   accounts of Figs. 4(b) and 5(b),
//! * [`experiments`] — one entry point per paper table/figure,
//! * [`report`] — plain-text table formatting shared by the bench binaries.
//!
//! # Example
//!
//! ```
//! use lnuca_sim::configs::{self, HierarchyKind};
//! use lnuca_sim::system::System;
//! use lnuca_workloads::suites;
//!
//! let profile = suites::spec_int_like()[0].clone();
//! let config = configs::lnuca_hierarchy(2);
//! let result = System::run_workload(&HierarchyKind::LNucaL3(config), &profile, 20_000, 1)?;
//! assert!(result.ipc > 0.0);
//! # Ok::<(), lnuca_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod configs;
pub mod energy_model;
pub mod experiments;
pub mod hierarchy;
pub mod report;
pub mod system;

pub use configs::HierarchyKind;
pub use hierarchy::{ClassicHierarchy, HierarchyStats, LNucaHierarchy};
pub use system::{Engine, RunResult, System};
