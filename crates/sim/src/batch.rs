//! Batched data-parallel execution: one worker steps N independent
//! simulations in lockstep (DESIGN.md §13).
//!
//! A [`BatchRunner`] owns N fully independent members (hierarchy + core +
//! trace, exactly what [`crate::system::System::run_spec_probed`] builds)
//! and generalises the event-horizon engine (DESIGN.md §10) to a
//! **per-batch horizon heap**: each live member's next due cycle sits in a
//! min-heap, every [`BatchRunner::step`] advances the batch clock to the
//! minimum due cycle and ticks exactly the members scheduled there (ties
//! broken by member index). Members that finish — or go quiescent past
//! their cycle cap — retire and drop out of the heap.
//!
//! Because every member is ticked at precisely the clock values its own
//! solo run loop would visit, with identical state transitions in between,
//! a batched run is **bit-identical** to its single-run counterpart for
//! every member — results *and* probe event streams. This is the
//! batch-equivalence invariant; `lnuca-verify` layers it over the
//! differential oracle and `tests/batch_equivalence.rs` pins it across the
//! full verify matrix.
//!
//! Members are constructed inside one [`TagSlab`] scope, so their packed
//! tag lanes land side by side in a few contiguous chunks
//! (structure-of-arrays across the batch) instead of N scattered boxes.
//! After construction the steady-state loop performs no heap allocation
//! (DESIGN.md §9); memory is touched again only when a member retires and
//! its [`RunResult`] is materialised.
//!
//! # Example
//!
//! ```
//! use lnuca_sim::batch::{BatchJob, BatchRunner};
//! use lnuca_sim::spec::HierarchySpec;
//! use lnuca_sim::system::{Engine, System};
//! use lnuca_workloads::suites;
//!
//! let spec = HierarchySpec::builder()
//!     .fabric(lnuca_core::LNucaConfig::paper(2)?)
//!     .build()?;
//! let profiles = suites::spec_int_like();
//! let jobs: Vec<BatchJob> = profiles[..2]
//!     .iter()
//!     .map(|profile| BatchJob { spec: &spec, profile, instructions: 2_000, seed: 7 })
//!     .collect();
//! let batched = BatchRunner::new(Engine::EventHorizon, &jobs)?.run_results();
//! let solo = System::run_spec_with(Engine::EventHorizon, &spec, &profiles[0], 2_000, 7)?;
//! assert_eq!(batched[0], solo, "batched members are bit-identical to solo runs");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::energy_model;
use crate::hierarchy::AnyHierarchy;
use crate::spec::HierarchySpec;
use crate::supervise::{JobGuard, RunGuard};
use crate::system::{Engine, RunResult, System};
use lnuca_cpu::{CoreConfig, DataMemory, OooCore};
use lnuca_mem::{NoProbe, ProbeSink, TagSlab};
use lnuca_types::{ConfigError, Cycle, RunError};
use lnuca_workloads::{Suite, TraceGenerator, WorkloadProfile};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One member of a batch: the same (spec, profile, instructions, seed)
/// quadruple a solo [`System::run_spec_with`] call takes.
#[derive(Debug, Clone, Copy)]
pub struct BatchJob<'a> {
    /// Hierarchy to simulate.
    pub spec: &'a HierarchySpec,
    /// Synthetic workload profile.
    pub profile: &'a WorkloadProfile,
    /// Instruction budget.
    pub instructions: u64,
    /// Trace seed.
    pub seed: u64,
}

/// The simulated components of one member: a single-core hierarchy+core
/// pair, or a whole CMP machine when the member's spec has `cores > 1`.
/// Both expose the same tick/horizon/finish surface, so [`advance`] and
/// [`retire`] replicate the corresponding solo loop either way.
enum Machine<P: ProbeSink> {
    Solo {
        hierarchy: AnyHierarchy<P>,
        core: OooCore<std::iter::Take<TraceGenerator>>,
    },
    Cmp(crate::cmp::CmpMachine<P>),
}

impl<P: ProbeSink> Machine<P> {
    fn is_finished(&self) -> bool {
        match self {
            Machine::Solo { core, .. } => core.is_finished(),
            Machine::Cmp(m) => m.is_finished(),
        }
    }

    fn committed(&self) -> u64 {
        match self {
            Machine::Solo { core, .. } => core.committed(),
            Machine::Cmp(m) => m.committed(),
        }
    }

    fn tick(&mut self, now: Cycle) {
        match self {
            Machine::Solo { hierarchy, core } => {
                hierarchy.tick(now);
                core.tick(now, hierarchy);
            }
            Machine::Cmp(m) => m.tick(now),
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        match self {
            Machine::Solo { hierarchy, core } => {
                match (hierarchy.next_event(now), core.next_event(now)) {
                    (Some(h), Some(c)) => Some(h.min(c)),
                    (h, c) => h.or(c),
                }
            }
            Machine::Cmp(m) => m.next_event(now),
        }
    }

    fn into_hierarchy(self) -> AnyHierarchy<P> {
        match self {
            Machine::Solo { hierarchy, .. } => hierarchy,
            Machine::Cmp(m) => AnyHierarchy::Cmp(m.into_memory()),
        }
    }
}

/// One in-flight member: its components plus its private clock. The clock
/// always holds the `now` value the member's solo run loop would see at
/// the top of its next iteration.
struct Member<P: ProbeSink> {
    machine: Machine<P>,
    workload: String,
    suite: Suite,
    /// Safety cap, identical to the solo loop's
    /// (`instructions * 400 + 1_000_000`).
    cap: u64,
    now: Cycle,
    done: Option<RunResult>,
    /// Watchdog of a supervised member (`None` on the plain path, which
    /// then has zero per-tick observation overhead).
    guard: Option<JobGuard>,
    /// A tripped watchdog quarantines the member here; its stats are never
    /// finalised and `done` stays empty.
    failed: Option<RunError>,
}

/// Steps a batch of independent simulations in lockstep; see the
/// [module docs](self) for the execution model and the equivalence
/// invariant.
pub struct BatchRunner<P: ProbeSink = NoProbe> {
    engine: Engine,
    members: Vec<Member<P>>,
    /// Min-heap of `(due cycle, member index)` over the live members.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Scratch for the member indices due at the current horizon
    /// (preallocated: the steady-state loop must not allocate).
    due_scratch: Vec<usize>,
    live: usize,
    slab: TagSlab,
}

impl BatchRunner<NoProbe> {
    /// Builds a batch over `jobs` with no instrumentation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any member's configuration is invalid.
    pub fn new(engine: Engine, jobs: &[BatchJob<'_>]) -> Result<Self, ConfigError> {
        Self::with_probes(engine, jobs, || NoProbe)
    }
}

impl<P: ProbeSink> BatchRunner<P> {
    /// Builds a batch over `jobs`, giving each member the probe sink the
    /// factory produces for it (in job order). Like the solo probed entry
    /// points, probes observe but never feed back: results are
    /// bit-identical for any sink.
    ///
    /// All allocation happens here: member components are built inside one
    /// [`TagSlab`] scope (co-locating their tag lanes), and the horizon
    /// heap and scratch buffers are sized for the whole batch.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any member's configuration is invalid.
    pub fn with_probes(
        engine: Engine,
        jobs: &[BatchJob<'_>],
        probe: impl FnMut() -> P,
    ) -> Result<Self, ConfigError> {
        Self::with_supervision(engine, jobs, probe, |_| None)
    }

    /// [`BatchRunner::with_probes`] plus per-member supervision
    /// (DESIGN.md §14): `guard` produces each member's watchdog (in job
    /// order; `None` = unsupervised member). A member whose guard trips is
    /// quarantined — it stops being stepped and reports its failure through
    /// [`BatchRunner::run_outcomes`] — while its siblings keep stepping at
    /// exactly the cycles their solo loops would visit, so survivors stay
    /// bit-identical to their solo baselines.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any member's configuration is invalid.
    pub fn with_supervision(
        engine: Engine,
        jobs: &[BatchJob<'_>],
        mut probe: impl FnMut() -> P,
        mut guard: impl FnMut(usize) -> Option<JobGuard>,
    ) -> Result<Self, ConfigError> {
        let slab = TagSlab::new();
        let members = slab.scoped(|| -> Result<Vec<Member<P>>, ConfigError> {
            let mut members = Vec::with_capacity(jobs.len());
            for (idx, job) in jobs.iter().enumerate() {
                let machine = if job.spec.cores > 1 {
                    Machine::Cmp(crate::cmp::CmpMachine::from_spec(
                        job.spec,
                        job.profile,
                        job.instructions,
                        job.seed,
                        probe(),
                    )?)
                } else {
                    let hierarchy = System::build_spec_probed(job.spec, probe())?;
                    let trace = TraceGenerator::new(job.profile.clone(), job.seed)
                        .take(usize::try_from(job.instructions).unwrap_or(usize::MAX));
                    let core = OooCore::new(CoreConfig::paper(), trace)?;
                    Machine::Solo { hierarchy, core }
                };
                members.push(Member {
                    machine,
                    workload: job.profile.name.clone(),
                    suite: job.profile.suite,
                    cap: job.instructions.saturating_mul(400) + 1_000_000,
                    now: Cycle(0),
                    done: None,
                    guard: guard(idx),
                    failed: None,
                });
            }
            Ok(members)
        })?;

        let mut runner = BatchRunner {
            engine,
            heap: BinaryHeap::with_capacity(members.len() + 1),
            due_scratch: Vec::with_capacity(members.len()),
            live: 0,
            members,
            slab,
        };
        for idx in 0..runner.members.len() {
            // Mirror the solo loop's entry condition: a member that is
            // already finished (or capped) at cycle 0 retires without a
            // single tick, exactly as the solo `while` would never run.
            let member = &mut runner.members[idx];
            if member.machine.is_finished() || member.now.0 >= member.cap {
                retire(member);
            } else {
                runner.heap.push(Reverse((member.now.0, idx)));
                runner.live += 1;
            }
        }
        Ok(runner)
    }

    /// Number of members (live or retired).
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the batch has no members at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of members still running.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// The batch clock: the minimum due cycle across live members (`None`
    /// once every member has retired).
    #[must_use]
    pub fn clock(&self) -> Option<Cycle> {
        self.heap.peek().map(|&Reverse((due, _))| Cycle(due))
    }

    /// The tag arena the members' packed lanes were carved from.
    #[must_use]
    pub fn slab(&self) -> &TagSlab {
        &self.slab
    }

    /// Advances the batch clock to the minimum due cycle and ticks every
    /// member scheduled there (ascending member index), re-scheduling each
    /// at its next due cycle or retiring it. Returns `true` while members
    /// remain live.
    ///
    /// The steady-state path performs no heap allocation; a retiring
    /// member allocates once to materialise its [`RunResult`].
    pub fn step(&mut self) -> bool {
        let Some(&Reverse((horizon, _))) = self.heap.peek() else {
            return false;
        };
        self.due_scratch.clear();
        while let Some(&Reverse((due, idx))) = self.heap.peek() {
            if due != horizon {
                break;
            }
            self.heap.pop();
            self.due_scratch.push(idx);
        }
        for i in 0..self.due_scratch.len() {
            let idx = self.due_scratch[i];
            match advance(&mut self.members[idx], self.engine) {
                Advance::Continue(next) => self.heap.push(Reverse((next.0, idx))),
                Advance::Retired => {
                    retire(&mut self.members[idx]);
                    self.live -= 1;
                }
                Advance::Failed(err) => {
                    // Quarantine: the member keeps its failure, is never
                    // finalised, and simply stops being scheduled — its
                    // siblings' tick sequences are unaffected.
                    self.members[idx].failed = Some(err);
                    self.live -= 1;
                }
            }
        }
        self.live > 0
    }

    /// Runs the batch to completion and returns every member's result and
    /// final hierarchy (probe still inside), in job order. Only for
    /// unguarded batches — a supervised member's failure panics here; use
    /// [`BatchRunner::run_outcomes`] for supervised batches.
    #[must_use]
    pub fn run(self) -> Vec<(RunResult, AnyHierarchy<P>)> {
        self.run_outcomes()
            .into_iter()
            .map(|(outcome, hierarchy)| {
                (
                    outcome.expect("unguarded batch members cannot fail"),
                    hierarchy,
                )
            })
            .collect()
    }

    /// Runs the batch to completion and returns every member's outcome —
    /// its bit-identical [`RunResult`] or the watchdog failure that
    /// quarantined it — plus its final hierarchy, in job order.
    #[must_use]
    pub fn run_outcomes(mut self) -> Vec<(Result<RunResult, RunError>, AnyHierarchy<P>)> {
        while self.step() {}
        self.members
            .into_iter()
            .map(|m| {
                let outcome = match m.failed {
                    Some(err) => Err(err),
                    None => Ok(m.done.expect("stepping retired every non-failed member")),
                };
                (outcome, m.machine.into_hierarchy())
            })
            .collect()
    }

    /// Runs the batch to completion and returns the results in job order
    /// (unguarded batches only; see [`BatchRunner::run`]).
    #[must_use]
    pub fn run_results(self) -> Vec<RunResult> {
        self.run().into_iter().map(|(result, _)| result).collect()
    }
}

/// What one [`advance`] call decided for a member.
enum Advance {
    /// Keep stepping; the member is next due at this cycle.
    Continue(Cycle),
    /// The solo loop would exit here: finalise and materialise the result.
    Retired,
    /// The member's watchdog tripped: quarantine it.
    Failed(RunError),
}

/// One iteration of the member's solo run loop (same tick order, same
/// engine formulas, same cap as [`System::run_spec_probed`]): ticks the
/// member at `member.now`, stores its next clock value, and returns the
/// next due cycle — or `None` when the solo loop would exit.
fn advance<P: ProbeSink>(member: &mut Member<P>, engine: Engine) -> Advance {
    let now = member.now;
    let cap = member.cap;
    if let Some(guard) = member.guard.as_mut() {
        // Same observation point as the solo guarded loop, so a watchdog
        // trips at the same cycle batched as solo.
        if let Err(err) = guard.observe(now, member.machine.committed()) {
            return Advance::Failed(err);
        }
    }
    member.machine.tick(now);
    let next = match engine {
        Engine::CycleStep => now.next(),
        Engine::EventHorizon => {
            if member.machine.is_finished() {
                // Match the reference engine's final clock exactly.
                now.next()
            } else {
                let next = member
                    .machine
                    .next_event(now)
                    .unwrap_or(Cycle(cap))
                    .max(now.next())
                    .min(Cycle(cap).max(now.next()));
                match member.guard.as_ref().and_then(JobGuard::horizon_clamp) {
                    // Mirror the solo guarded loop's clamp exactly.
                    Some(clamp) => next.min(Cycle(clamp.max(now.0 + 1))),
                    None => next,
                }
            }
        }
    };
    member.now = next;
    if !member.machine.is_finished() && next.0 < cap {
        Advance::Continue(next)
    } else {
        Advance::Retired
    }
}

/// Finalises a member exactly as the solo run tail does and materialises
/// its [`RunResult`].
fn retire<P: ProbeSink>(member: &mut Member<P>) {
    let now = member.now;
    match &mut member.machine {
        Machine::Solo { hierarchy, core } => {
            core.finalize_stats(now);
            let stats = hierarchy.stats();
            let energy = energy_model::account_for(&stats, now.0);
            member.done = Some(RunResult {
                label: stats.label.clone(),
                workload: member.workload.clone(),
                suite: member.suite,
                instructions: core.committed(),
                cycles: now.0,
                ipc: core.stats().ipc(now),
                core: *core.stats(),
                hierarchy: stats,
                energy,
                per_core: Vec::new(),
                coherence: None,
            });
        }
        Machine::Cmp(machine) => {
            machine.finalize(now);
            member.done = Some(machine.result(now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{self, HierarchyKind};
    use lnuca_workloads::suites;

    fn paper_specs() -> Vec<HierarchySpec> {
        vec![
            HierarchyKind::Conventional(configs::conventional()).to_spec(),
            HierarchyKind::LNucaL3(configs::lnuca_hierarchy(2)).to_spec(),
            HierarchyKind::DNuca(configs::dnuca_hierarchy()).to_spec(),
        ]
    }

    #[test]
    fn a_mixed_batch_matches_its_solo_runs_bit_for_bit() {
        for engine in [Engine::EventHorizon, Engine::CycleStep] {
            let specs = paper_specs();
            let profiles = suites::spec_int_like();
            let jobs: Vec<BatchJob> = specs
                .iter()
                .zip(&profiles)
                .enumerate()
                .map(|(i, (spec, profile))| BatchJob {
                    spec,
                    profile,
                    instructions: 1_500 + 200 * i as u64,
                    seed: 3 + i as u64,
                })
                .collect();
            let batched = BatchRunner::new(engine, &jobs).unwrap().run_results();
            for (job, result) in jobs.iter().zip(&batched) {
                let solo =
                    System::run_spec_with(engine, job.spec, job.profile, job.instructions, job.seed)
                        .unwrap();
                assert_eq!(result, &solo, "{} under {:?}", job.profile.name, engine);
            }
        }
    }

    #[test]
    fn members_retire_independently_and_in_any_order() {
        let specs = paper_specs();
        let profile = &suites::spec_int_like()[0];
        // Wildly different budgets: the long member keeps running after the
        // short ones retire.
        let jobs: Vec<BatchJob> = [4_000u64, 0, 400]
            .iter()
            .map(|&instructions| BatchJob {
                spec: &specs[1],
                profile,
                instructions,
                seed: 11,
            })
            .collect();
        let mut runner = BatchRunner::new(Engine::EventHorizon, &jobs).unwrap();
        assert_eq!(runner.len(), 3);
        assert_eq!(runner.live(), 3, "even a zero-budget member gets its first tick, as solo would");
        while runner.step() {}
        assert_eq!(runner.live(), 0);
        assert!(runner.clock().is_none());
        let results = runner.run_results();
        assert_eq!(results[0].instructions, 4_000);
        assert_eq!(results[1].instructions, 0);
        assert_eq!(results[2].instructions, 400);
        for (job, result) in jobs.iter().zip(&results) {
            let solo = System::run_spec_with(
                Engine::EventHorizon,
                job.spec,
                job.profile,
                job.instructions,
                job.seed,
            )
            .unwrap();
            assert_eq!(result, &solo);
        }
    }

    #[test]
    fn batch_members_share_slab_chunks() {
        let specs = paper_specs();
        let profile = &suites::spec_int_like()[0];
        let jobs: Vec<BatchJob> = (0..4)
            .map(|i| BatchJob {
                spec: &specs[0],
                profile,
                instructions: 100,
                seed: i,
            })
            .collect();
        let runner = BatchRunner::new(Engine::EventHorizon, &jobs).unwrap();
        assert!(runner.slab().allocated_words() > 0, "tag lanes come from the slab");
        assert!(
            runner.slab().chunk_count() < 4,
            "members' lanes are co-located, not one chunk per member"
        );
    }

    #[test]
    fn an_empty_batch_is_immediately_complete() {
        let mut runner = BatchRunner::new(Engine::EventHorizon, &[]).unwrap();
        assert!(runner.is_empty());
        assert!(!runner.step());
        assert!(runner.run_results().is_empty());
    }
}
