//! A complete system: out-of-order core + memory hierarchy.

use crate::configs::HierarchyKind;
use crate::energy_model;
use crate::hierarchy::{AnyHierarchy, ClassicHierarchy, HierarchyStats, LNucaHierarchy};
use crate::spec::HierarchySpec;
use crate::supervise::{NoGuard, RunGuard};
use lnuca_cpu::{CoreConfig, CoreStats, DataMemory, OooCore};
use lnuca_energy::EnergyAccount;
use lnuca_mem::{NoProbe, ProbeSink};
use lnuca_types::{ConfigError, Cycle, RunError};
use lnuca_workloads::{Suite, TraceGenerator, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// How [`System::run_workload_with`] advances simulated time.
///
/// Both engines drive the same components through the same ticks and are
/// **bit-identical** in every [`RunResult`] field — pinned by
/// `tests/event_horizon_determinism.rs` — they differ only in how much wall
/// clock is wasted crawling through dead cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Engine {
    /// Advance `now` by one cycle per iteration (the reference engine).
    CycleStep,
    /// Jump `now` straight to the minimum [`lnuca_cpu::DataMemory::next_event`]
    /// / [`lnuca_cpu::OooCore::next_event`] horizon whenever no component is
    /// actively transferring, instead of single-stepping through idle time
    /// (DESIGN.md §10).
    #[default]
    EventHorizon,
}

impl Engine {
    /// Machine-readable engine name, as recorded in the
    /// `lnuca-bench-baseline/v2` schema's `engine` field.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Engine::CycleStep => "cycle-step",
            Engine::EventHorizon => "event-horizon",
        }
    }

    /// Parses an engine name as the `LNUCA_ENGINE` knob and the scenario
    /// files spell it; `None` for anything unrecognised.
    #[must_use]
    pub fn parse(raw: &str) -> Option<Engine> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "event" | "event-horizon" | "horizon" => Some(Engine::EventHorizon),
            "cycle" | "cycle-step" | "step" | "naive" => Some(Engine::CycleStep),
            _ => None,
        }
    }
}

/// The outcome of simulating one workload on one hierarchy.
///
/// Every field is a deterministic function of (hierarchy kind, workload
/// profile, instruction count, seed) — `PartialEq` compares bit-exactly,
/// which is what the parallel-vs-sequential determinism tests rely on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Hierarchy label (e.g. `LN3-144KB`).
    pub label: String,
    /// Workload name (e.g. `int.compress`).
    pub workload: String,
    /// Workload suite (Integer or Floating-Point).
    pub suite: Suite,
    /// Instructions committed.
    pub instructions: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Committed instructions per cycle.
    pub ipc: f64,
    /// Core-side counters.
    pub core: CoreStats,
    /// Hierarchy-side counters.
    pub hierarchy: HierarchyStats,
    /// Energy ledger of the run.
    pub energy: EnergyAccount,
    /// Per-core rows of a CMP run; empty for single-core runs, so
    /// single-core comparisons and serialisations are unchanged.
    pub per_core: Vec<crate::cmp::CoreRow>,
    /// MSI-directory counters of a CMP run; `None` for single-core runs.
    pub coherence: Option<crate::cmp::CoherenceStats>,
}

/// Builder/driver for a core + hierarchy simulation.
///
/// # Example
///
/// ```
/// use lnuca_sim::configs::{self, HierarchyKind};
/// use lnuca_sim::system::System;
/// use lnuca_workloads::WorkloadProfile;
///
/// let kind = HierarchyKind::Conventional(configs::conventional());
/// let result = System::run_workload(&kind, &WorkloadProfile::default(), 5_000, 7)?;
/// assert_eq!(result.instructions, 5_000);
/// assert!(result.ipc > 0.0);
/// # Ok::<(), lnuca_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct System;

impl System {
    /// Instantiates the hierarchy described by `kind`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any component configuration is invalid.
    pub fn build_hierarchy(kind: &HierarchyKind) -> Result<AnyHierarchy, ConfigError> {
        Self::build_hierarchy_probed(kind, NoProbe)
    }

    /// Instantiates the hierarchy described by `kind` with functional
    /// instrumentation reporting to `probe` (DESIGN.md §11). The enum is
    /// lowered to its [`HierarchySpec`] first; the spec path is the one
    /// implementation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any component configuration is invalid.
    pub fn build_hierarchy_probed<P: ProbeSink>(
        kind: &HierarchyKind,
        probe: P,
    ) -> Result<AnyHierarchy<P>, ConfigError> {
        Self::build_spec_probed(&kind.to_spec(), probe)
    }

    /// Instantiates the hierarchy described by `spec`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the composition is invalid.
    pub fn build_spec(spec: &HierarchySpec) -> Result<AnyHierarchy, ConfigError> {
        Self::build_spec_probed(spec, NoProbe)
    }

    /// Instantiates the hierarchy described by `spec` with functional
    /// instrumentation reporting to `probe`: a
    /// [`crate::hierarchy::LNucaHierarchy`] when the spec has a fabric, a
    /// [`crate::hierarchy::ClassicHierarchy`] otherwise.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the composition is invalid.
    pub fn build_spec_probed<P: ProbeSink>(
        spec: &HierarchySpec,
        probe: P,
    ) -> Result<AnyHierarchy<P>, ConfigError> {
        Ok(if spec.fabric.is_some() {
            AnyHierarchy::LNuca(LNucaHierarchy::from_spec_probed(spec, probe)?)
        } else {
            AnyHierarchy::Classic(ClassicHierarchy::from_spec_probed(spec, probe)?)
        })
    }

    /// Runs `instructions` instructions of `profile` on the hierarchy
    /// described by `kind`, with the paper's core configuration and the
    /// default [`Engine::EventHorizon`] time stepping.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any configuration is invalid.
    pub fn run_workload(
        kind: &HierarchyKind,
        profile: &WorkloadProfile,
        instructions: u64,
        seed: u64,
    ) -> Result<RunResult, ConfigError> {
        Self::run_workload_with(Engine::EventHorizon, kind, profile, instructions, seed)
    }

    /// Runs `instructions` instructions of `profile` on the hierarchy
    /// described by `kind`, advancing time with the given [`Engine`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any configuration is invalid.
    pub fn run_workload_with(
        engine: Engine,
        kind: &HierarchyKind,
        profile: &WorkloadProfile,
        instructions: u64,
        seed: u64,
    ) -> Result<RunResult, ConfigError> {
        Self::run_workload_probed(engine, kind, profile, instructions, seed, NoProbe)
            .map(|(result, _)| result)
    }

    /// Runs `instructions` instructions of `profile` on the hierarchy
    /// described by `kind`, reporting every functional state transition to
    /// `probe`, and returns the final hierarchy (probe still inside —
    /// [`AnyHierarchy::into_probe`] extracts it) alongside the results so
    /// callers can also enumerate final cache residency.
    ///
    /// The probe observes but never feeds back: results are bit-identical to
    /// [`System::run_workload_with`] for any sink. The differential oracle in
    /// `lnuca-verify` records the event stream this way and replays it
    /// through its timing-free reference model.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any configuration is invalid.
    pub fn run_workload_probed<P: ProbeSink>(
        engine: Engine,
        kind: &HierarchyKind,
        profile: &WorkloadProfile,
        instructions: u64,
        seed: u64,
        probe: P,
    ) -> Result<(RunResult, AnyHierarchy<P>), ConfigError> {
        Self::run_spec_probed(engine, &kind.to_spec(), profile, instructions, seed, probe)
    }

    /// Runs `instructions` instructions of `profile` on the hierarchy
    /// described by `spec`, with the default [`Engine::EventHorizon`] time
    /// stepping.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the composition is invalid.
    pub fn run_spec(
        spec: &HierarchySpec,
        profile: &WorkloadProfile,
        instructions: u64,
        seed: u64,
    ) -> Result<RunResult, ConfigError> {
        Self::run_spec_with(Engine::EventHorizon, spec, profile, instructions, seed)
    }

    /// Runs `instructions` instructions of `profile` on the hierarchy
    /// described by `spec`, advancing time with the given [`Engine`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the composition is invalid.
    pub fn run_spec_with(
        engine: Engine,
        spec: &HierarchySpec,
        profile: &WorkloadProfile,
        instructions: u64,
        seed: u64,
    ) -> Result<RunResult, ConfigError> {
        Self::run_spec_probed(engine, spec, profile, instructions, seed, NoProbe)
            .map(|(result, _)| result)
    }

    /// The spec-level core of every run entry point: see
    /// [`System::run_workload_probed`] for the probe semantics.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the composition is invalid.
    pub fn run_spec_probed<P: ProbeSink>(
        engine: Engine,
        spec: &HierarchySpec,
        profile: &WorkloadProfile,
        instructions: u64,
        seed: u64,
        probe: P,
    ) -> Result<(RunResult, AnyHierarchy<P>), ConfigError> {
        match Self::run_spec_guarded(engine, spec, profile, instructions, seed, probe, &mut NoGuard)
        {
            Ok(pair) => Ok(pair),
            Err(RunError::Config(err)) => Err(err),
            Err(other) => unreachable!("NoGuard cannot trip a watchdog: {other}"),
        }
    }

    /// [`System::run_spec_probed`] with a [`RunGuard`] observing every loop
    /// iteration (DESIGN.md §14): the supervision layer's watchdogs hook in
    /// here. The guard is generic, so the [`NoGuard`] path compiles to the
    /// exact unguarded loop; with an active guard the event-horizon jump is
    /// additionally clamped to [`RunGuard::horizon_clamp`] — extra ticks at
    /// non-event cycles are state-wise no-ops (the cycle-step engine visits
    /// every cycle and is bit-identical), so results never change; the
    /// clamp only makes watchdog trip cycles deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Config`] if the composition is invalid, or
    /// whatever failure the guard trips with.
    pub fn run_spec_guarded<P: ProbeSink, G: RunGuard>(
        engine: Engine,
        spec: &HierarchySpec,
        profile: &WorkloadProfile,
        instructions: u64,
        seed: u64,
        probe: P,
        guard: &mut G,
    ) -> Result<(RunResult, AnyHierarchy<P>), RunError> {
        if spec.cores > 1 {
            // Multicore shapes run on the CMP machine (DESIGN.md §17):
            // same engines, same guard observation points, same cap.
            return crate::cmp::run_cmp_guarded(
                engine,
                spec,
                profile,
                instructions,
                seed,
                probe,
                guard,
            );
        }
        let mut hierarchy = Self::build_spec_probed(spec, probe)?;
        let trace =
            TraceGenerator::new(profile.clone(), seed).take(usize::try_from(instructions).unwrap_or(usize::MAX));
        let mut core = OooCore::new(CoreConfig::paper(), trace)?;

        let mut now = Cycle(0);
        // Generous safety cap: no workload should need 400 cycles per
        // instruction; hitting the cap indicates a simulator bug and shows up
        // as an implausible IPC in the results.
        let cycle_cap = instructions.saturating_mul(400) + 1_000_000;
        while !core.is_finished() && now.0 < cycle_cap {
            guard.observe(now, core.committed())?;
            hierarchy.tick(now);
            core.tick(now, &mut hierarchy);
            now = match engine {
                Engine::CycleStep => now.next(),
                Engine::EventHorizon => {
                    if core.is_finished() {
                        // Match the reference engine's final clock exactly.
                        now.next()
                    } else {
                        // Jump to the earliest cycle either side can act.
                        // `None`+`None` means neither component will ever act
                        // again: jump to the cap, exactly where per-cycle
                        // stepping (all no-op ticks) would also end up.
                        let horizon = match (hierarchy.next_event(now), core.next_event(now)) {
                            (Some(h), Some(c)) => Some(h.min(c)),
                            (h, c) => h.or(c),
                        };
                        let next = horizon
                            .unwrap_or(Cycle(cycle_cap))
                            .max(now.next())
                            .min(Cycle(cycle_cap).max(now.next()));
                        match guard.horizon_clamp() {
                            // Never jump past the next cycle the guard must
                            // observe, while always making progress.
                            Some(clamp) => next.min(Cycle(clamp.max(now.0 + 1))),
                            None => next,
                        }
                    }
                }
            };
        }
        core.finalize_stats(now);

        let stats = hierarchy.stats();
        let energy = energy_model::account_for(&stats, now.0);
        let result = RunResult {
            label: stats.label.clone(),
            workload: profile.name.clone(),
            suite: profile.suite,
            instructions: core.committed(),
            cycles: now.0,
            ipc: core.stats().ipc(now),
            core: *core.stats(),
            hierarchy: stats,
            energy,
            per_core: Vec::new(),
            coherence: None,
        };
        Ok((result, hierarchy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use lnuca_workloads::suites;

    const SMALL_RUN: u64 = 4_000;

    #[test]
    fn every_hierarchy_kind_builds() {
        for kind in [
            HierarchyKind::Conventional(configs::conventional()),
            HierarchyKind::LNucaL3(configs::lnuca_hierarchy(2)),
            HierarchyKind::LNucaL3(configs::lnuca_hierarchy(4)),
            HierarchyKind::DNuca(configs::dnuca_hierarchy()),
            HierarchyKind::LNucaDNuca(configs::lnuca_dnuca_hierarchy(3)),
        ] {
            assert!(System::build_hierarchy(&kind).is_ok(), "failed to build {}", kind.label());
        }
    }

    #[test]
    fn a_small_run_commits_every_instruction_and_reports_energy() {
        let kind = HierarchyKind::LNucaL3(configs::lnuca_hierarchy(3));
        let profile = &suites::spec_int_like()[0];
        let result = System::run_workload(&kind, profile, SMALL_RUN, 1).unwrap();
        assert_eq!(result.instructions, SMALL_RUN);
        assert!(result.ipc > 0.05 && result.ipc < 4.0, "IPC {} out of range", result.ipc);
        assert!(result.energy.total_pj() > 0.0);
        assert!(result.hierarchy.lnuca.is_some());
        assert_eq!(result.label, "LN3-144KB");
        assert_eq!(result.workload, profile.name);
    }

    #[test]
    fn runs_are_reproducible_for_the_same_seed() {
        let kind = HierarchyKind::Conventional(configs::conventional());
        let profile = &suites::spec_fp_like()[0];
        let a = System::run_workload(&kind, profile, SMALL_RUN, 9).unwrap();
        let b = System::run_workload(&kind, profile, SMALL_RUN, 9).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert!((a.ipc - b.ipc).abs() < 1e-12);
    }

    #[test]
    fn the_fabric_services_a_visible_share_of_former_l2_hits() {
        // The structural claim behind Table III: under an L-NUCA hierarchy a
        // workload with an L2-sized working set gets a significant number of
        // its reads serviced by the tiles.
        let profile = &suites::spec_int_like()[0];
        let lnuca = System::run_workload(
            &HierarchyKind::LNucaL3(configs::lnuca_hierarchy(3)),
            profile,
            15_000,
            2,
        )
        .unwrap();
        let fabric = lnuca.hierarchy.lnuca.as_ref().unwrap();
        assert!(fabric.read_hits() > 30, "fabric read hits: {}", fabric.read_hits());
        assert!(
            fabric.read_hits_in_level(2) >= fabric.read_hits_in_level(3),
            "closer levels service at least as many hits as farther ones"
        );
    }
}
