//! The four cache hierarchies evaluated in the paper (Fig. 1), with the
//! Table I parameters as defaults.

use lnuca_core::LNucaConfig;
use lnuca_dnuca::DNucaConfig;
use lnuca_mem::{AccessMode, CacheConfig, MemoryConfig, WritePolicy};
use serde::{Deserialize, Serialize};

/// Number of MSHR entries in front of the L1 / root tile (Table I).
pub const L1_MSHRS: usize = 16;
/// Number of MSHR entries in front of the L2 (Table I).
pub const L2_MSHRS: usize = 16;
/// Number of MSHR entries in front of the L3 (Table I).
pub const L3_MSHRS: usize = 8;
/// Secondary misses allowed per MSHR entry (Table I).
pub const MSHR_SECONDARY: usize = 4;
/// Write-buffer entries in front of the L2 and the L3 (Table I).
pub const WRITE_BUFFER_ENTRIES: usize = 32;

/// Cycles for a miss request to travel from the L1 to the L2 macro over the
/// inter-cache interconnect of the conventional hierarchy.
///
/// The paper's whole premise is that a multi-hundred-kilobyte L2 sits at the
/// far end of global wires ("inter-cache latency gap"), and its methodology
/// explicitly models buses between the cache levels. The L-NUCA tiles, in
/// contrast, sit immediately next to the root tile and pay only their
/// single-cycle hops. Two cycles of request transfer and two cycles of
/// response transfer (a 64-byte block over a 32-byte bus) reproduce that
/// asymmetry; the L3 latency of Table I (20 cycles) already includes its own
/// wire delay and is charged identically in every configuration.
pub const L2_REQUEST_TRANSFER_CYCLES: u64 = 2;

/// Cycles for a 64-byte L2 block to travel back to the L1 over the
/// inter-cache bus (see [`L2_REQUEST_TRANSFER_CYCLES`]).
pub const L2_RESPONSE_TRANSFER_CYCLES: u64 = 2;

/// The paper's 32 KB, 4-way, 32 B-block, write-through, 2-port L1 (also used
/// as the L-NUCA root tile).
#[must_use]
pub fn paper_l1() -> CacheConfig {
    CacheConfig::builder("L1")
        .size_bytes(32 * 1024)
        .ways(4)
        .block_size(32)
        .completion_cycles(2)
        .initiation_interval(1)
        .ports(2)
        .access_mode(AccessMode::Parallel)
        .write_policy(WritePolicy::WriteThrough)
        .build()
        .expect("the paper L1 configuration is valid")
}

/// The paper's 256 KB, 8-way, 64 B-block, copy-back, serial-access L2.
#[must_use]
pub fn paper_l2() -> CacheConfig {
    CacheConfig::builder("L2")
        .size_bytes(256 * 1024)
        .ways(8)
        .block_size(64)
        .completion_cycles(4)
        .initiation_interval(2)
        .ports(1)
        .access_mode(AccessMode::Serial)
        .write_policy(WritePolicy::CopyBack)
        .build()
        .expect("the paper L2 configuration is valid")
}

/// The paper's 8 MB, 16-way, 128 B-block L3 (20-cycle completion, 15-cycle
/// initiation), similar to the Intel Core 2's last-level cache.
#[must_use]
pub fn paper_l3() -> CacheConfig {
    CacheConfig::builder("L3")
        .size_bytes(8 * 1024 * 1024)
        .ways(16)
        .block_size(128)
        .completion_cycles(20)
        .initiation_interval(15)
        .ports(1)
        .access_mode(AccessMode::Serial)
        .write_policy(WritePolicy::CopyBack)
        .build()
        .expect("the paper L3 configuration is valid")
}

/// The paper's main-memory timing (200-cycle first chunk, 4-cycle inter
/// chunk, 16-byte wires).
#[must_use]
pub fn paper_memory() -> MemoryConfig {
    MemoryConfig::default()
}

/// Configuration of the conventional three-level hierarchy (Fig. 1(a)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConventionalConfig {
    /// First-level cache.
    pub l1: CacheConfig,
    /// Second-level cache.
    pub l2: CacheConfig,
    /// Third-level cache.
    pub l3: CacheConfig,
    /// Main memory.
    pub memory: MemoryConfig,
}

/// Configuration of the L-NUCA + L3 hierarchy (Fig. 1(b)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LNucaL3Config {
    /// Root tile (L1).
    pub l1: CacheConfig,
    /// The L-NUCA fabric.
    pub lnuca: LNucaConfig,
    /// Third-level cache behind the fabric.
    pub l3: CacheConfig,
    /// Main memory.
    pub memory: MemoryConfig,
}

/// Configuration of the L1 + D-NUCA hierarchy (Fig. 1(c)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DNucaOnlyConfig {
    /// First-level cache.
    pub l1: CacheConfig,
    /// The D-NUCA secondary cache.
    pub dnuca: DNucaConfig,
    /// Main memory.
    pub memory: MemoryConfig,
}

/// Configuration of the L-NUCA + D-NUCA hierarchy (Fig. 1(d)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LNucaDNucaConfig {
    /// Root tile (L1).
    pub l1: CacheConfig,
    /// The L-NUCA fabric.
    pub lnuca: LNucaConfig,
    /// The D-NUCA behind the fabric.
    pub dnuca: DNucaConfig,
    /// Main memory.
    pub memory: MemoryConfig,
}

/// One of the four hierarchies under study, ready to be instantiated by
/// [`crate::system::System`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HierarchyKind {
    /// Conventional L1 + L2 + L3 (the Fig. 4 baseline, `L2-256KB`).
    Conventional(ConventionalConfig),
    /// L1 (root tile) + L-NUCA + L3 (`LN2/LN3/LN4`).
    LNucaL3(LNucaL3Config),
    /// L1 + D-NUCA (the Fig. 5 baseline, `DN-4x8`).
    DNuca(DNucaOnlyConfig),
    /// L1 (root tile) + L-NUCA + D-NUCA (`LNx + DN-4x8`).
    LNucaDNuca(LNucaDNucaConfig),
}

impl HierarchyKind {
    /// Short configuration name matching the paper's figures
    /// (`L2-256KB`, `LN3-144KB`, `DN-4x8`, `LN2 + DN-4x8`, ...).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            HierarchyKind::Conventional(c) => {
                format!("L2-{}KB", c.l2.size_bytes / 1024)
            }
            HierarchyKind::LNucaL3(c) => {
                let tiles = lnuca_core::LNucaGeometry::new(c.lnuca.levels)
                    .map(|g| g.capacity_bytes(c.lnuca.tile_size_bytes))
                    .unwrap_or(0);
                format!(
                    "LN{}-{}KB",
                    c.lnuca.levels,
                    (tiles + c.l1.size_bytes) / 1024
                )
            }
            HierarchyKind::DNuca(c) => {
                format!("DN-{}x{}", c.dnuca.rows, c.dnuca.cols)
            }
            HierarchyKind::LNucaDNuca(c) => {
                format!("LN{} + DN-{}x{}", c.lnuca.levels, c.dnuca.rows, c.dnuca.cols)
            }
        }
    }
}

/// The paper's conventional baseline (`L2-256KB`).
#[must_use]
pub fn conventional() -> ConventionalConfig {
    ConventionalConfig {
        l1: paper_l1(),
        l2: paper_l2(),
        l3: paper_l3(),
        memory: paper_memory(),
    }
}

/// The paper's L-NUCA + L3 hierarchy with the given number of levels
/// (2, 3 or 4 in the evaluation).
///
/// # Panics
///
/// Panics if `levels` is outside the supported 2..=8 range.
#[must_use]
pub fn lnuca_hierarchy(levels: u8) -> LNucaL3Config {
    LNucaL3Config {
        l1: paper_l1(),
        lnuca: LNucaConfig::paper(levels).expect("levels validated by the caller"),
        l3: paper_l3(),
        memory: paper_memory(),
    }
}

/// The paper's D-NUCA baseline (`DN-4x8`).
#[must_use]
pub fn dnuca_hierarchy() -> DNucaOnlyConfig {
    DNucaOnlyConfig {
        l1: paper_l1(),
        dnuca: DNucaConfig::paper(),
        memory: paper_memory(),
    }
}

/// The paper's L-NUCA + D-NUCA hierarchy with the given number of L-NUCA
/// levels.
///
/// # Panics
///
/// Panics if `levels` is outside the supported 2..=8 range.
#[must_use]
pub fn lnuca_dnuca_hierarchy(levels: u8) -> LNucaDNucaConfig {
    LNucaDNucaConfig {
        l1: paper_l1(),
        lnuca: LNucaConfig::paper(levels).expect("levels validated by the caller"),
        dnuca: DNucaConfig::paper(),
        memory: paper_memory(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cache_configs_match_table1() {
        let l1 = paper_l1();
        assert_eq!(l1.size_bytes, 32 * 1024);
        assert_eq!(l1.ports, 2);
        assert_eq!(l1.write_policy, WritePolicy::WriteThrough);
        let l2 = paper_l2();
        assert_eq!(l2.completion_cycles, 4);
        assert_eq!(l2.initiation_interval, 2);
        let l3 = paper_l3();
        assert_eq!(l3.size_bytes, 8 * 1024 * 1024);
        assert_eq!(l3.completion_cycles, 20);
        assert_eq!(paper_memory().first_chunk_cycles, 200);
    }

    #[test]
    fn hierarchy_labels_match_the_figures() {
        assert_eq!(HierarchyKind::Conventional(conventional()).label(), "L2-256KB");
        assert_eq!(HierarchyKind::LNucaL3(lnuca_hierarchy(2)).label(), "LN2-72KB");
        assert_eq!(HierarchyKind::LNucaL3(lnuca_hierarchy(3)).label(), "LN3-144KB");
        assert_eq!(HierarchyKind::LNucaL3(lnuca_hierarchy(4)).label(), "LN4-248KB");
        assert_eq!(HierarchyKind::DNuca(dnuca_hierarchy()).label(), "DN-4x8");
        assert_eq!(
            HierarchyKind::LNucaDNuca(lnuca_dnuca_hierarchy(2)).label(),
            "LN2 + DN-4x8"
        );
    }

    #[test]
    fn mshr_and_write_buffer_constants_match_table1() {
        assert_eq!((L1_MSHRS, L2_MSHRS, L3_MSHRS), (16, 16, 8));
        assert_eq!(MSHR_SECONDARY, 4);
        assert_eq!(WRITE_BUFFER_ENTRIES, 32);
    }
}
