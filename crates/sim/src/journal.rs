//! The crash-safe study journal behind `lnuca run --journal`/`--resume`
//! (DESIGN.md §14).
//!
//! A journal is a JSON-Lines file: one header line identifying the plan,
//! then one self-checked record line per **completed** run, appended (and
//! pushed to the OS in a single `write` call) the moment the run finishes.
//! Failures are never journaled — they are deterministic (or worth
//! retrying) and simply run again on resume.
//!
//! The header carries a digest over the plan's *semantic* fields only: the
//! resolved workload names, the instruction budget, the base seed and the
//! fully-expanded hierarchy configurations. Execution knobs that cannot
//! change results — thread count, engine, batch size, watchdog budgets,
//! retries, the plan name — are excluded, so a study journaled on one
//! machine can be resumed with different parallelism and still produce a
//! byte-identical report (runs are deterministic; see
//! `tests/journal_digest.rs` for the pinned invariants).
//!
//! Robustness contract:
//!
//! * a torn trailing line (the process died mid-append) is silently
//!   dropped — that run simply re-runs;
//! * any other malformed line, a failed per-line checksum, a header
//!   mismatch or an out-of-range job index is a structured
//!   [`RunError::JournalCorrupt`] — never a panic, never silent reuse of
//!   data from a different plan.

use crate::experiments::{ExperimentPlan, RunPerf};
use crate::scenario::spec_to_value;
use crate::system::RunResult;
use lnuca_core::LNucaStats;
use lnuca_cpu::CoreStats;
use lnuca_dnuca::DNucaStats;
use lnuca_energy::EnergyAccount;
use lnuca_mem::CacheStats;
use lnuca_noc::mesh::MeshStats;
use lnuca_types::{ConfigError, RunError};
use lnuca_workloads::Suite;
use serde::json::{self, Value};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::{Mutex, PoisonError};

/// Schema identifier of the journal header line.
pub const JOURNAL_SCHEMA: &str = "lnuca-journal/v1";

// ---------------------------------------------------------------------------
// Digests and compact encoding
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit over a byte string — stable, dependency-free, plenty for
/// torn-write detection and plan identity (this is an integrity check, not
/// a cryptographic commitment).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Renders a [`Value`] as single-line compact JSON (no spaces, no
/// trailing newline) — the canonical byte string journal digests are
/// computed over. The vendored document model only ships a pretty-printer;
/// record lines must be exactly one line each.
fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            // Journal records never hold Float (floats travel as bit
            // patterns), but keep the writer total and JSON-valid.
            if v.is_finite() {
                let s = format!("{v}");
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    out.push_str(&s);
                } else {
                    out.push_str(&s);
                    out.push_str(".0");
                }
            } else {
                out.push_str("0.0");
            }
        }
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(members) => {
            out.push('{');
            for (i, (key, value)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, key);
                out.push(':');
                write_compact(value, out);
            }
            out.push('}');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn compact(value: &Value) -> String {
    let mut out = String::new();
    write_compact(value, &mut out);
    out
}

/// The semantic identity of a plan: exactly the fields that determine the
/// bit-identical results of its matrix. Workloads are resolved to their
/// final name list (capturing both the selection keyword and any
/// per-suite cap); configurations are fully expanded spec documents.
fn plan_semantic_value(plan: &ExperimentPlan) -> Result<Value, ConfigError> {
    let workloads: Vec<Value> = plan
        .options
        .workloads()?
        .iter()
        .map(|profile| Value::String(profile.name.clone()))
        .collect();
    Ok(Value::Object(vec![
        ("schema".to_owned(), Value::String(JOURNAL_SCHEMA.to_owned())),
        ("instructions".to_owned(), Value::UInt(plan.options.instructions)),
        ("seed".to_owned(), Value::UInt(plan.options.seed)),
        ("workloads".to_owned(), Value::Array(workloads)),
        (
            "configs".to_owned(),
            Value::Array(plan.configs.iter().map(spec_to_value).collect()),
        ),
    ]))
}

/// Digest of a plan's semantic fields (see `plan_semantic_value`) — the
/// content address a journal is bound to.
///
/// # Errors
///
/// [`RunError::Config`] when the plan's workload selection does not
/// resolve.
pub fn plan_digest(plan: &ExperimentPlan) -> Result<u64, RunError> {
    let value = plan_semantic_value(plan).map_err(RunError::Config)?;
    Ok(fnv1a(compact(&value).as_bytes()))
}

/// Number of (configuration, workload) cells in a plan's matrix — the
/// index space journal records live in.
///
/// # Errors
///
/// [`RunError::Config`] when the plan's workload selection does not
/// resolve.
pub fn job_count(plan: &ExperimentPlan) -> Result<usize, RunError> {
    let workloads = plan.options.workloads().map_err(RunError::Config)?;
    Ok(plan.configs.len() * workloads.len())
}

fn hex(digest: u64) -> String {
    format!("{digest:016x}")
}

// ---------------------------------------------------------------------------
// Result/perf codec (bit-exact: floats travel as `f64::to_bits`)
// ---------------------------------------------------------------------------

fn bits(v: f64) -> Value {
    Value::UInt(v.to_bits())
}

fn u64v(v: u64) -> Value {
    Value::UInt(v)
}

fn strv(s: &str) -> Value {
    Value::String(s.to_owned())
}

fn opt(value: Option<Value>) -> Value {
    value.unwrap_or(Value::Null)
}

fn suite_to_value(suite: Suite) -> Value {
    Value::String(
        match suite {
            Suite::Integer => "int",
            Suite::FloatingPoint => "fp",
        }
        .to_owned(),
    )
}

fn cache_stats_to_value(s: &CacheStats) -> Value {
    Value::Object(vec![
        ("accesses".to_owned(), u64v(s.accesses)),
        ("read_hits".to_owned(), u64v(s.read_hits)),
        ("read_misses".to_owned(), u64v(s.read_misses)),
        ("write_hits".to_owned(), u64v(s.write_hits)),
        ("write_misses".to_owned(), u64v(s.write_misses)),
        ("fills".to_owned(), u64v(s.fills)),
        ("clean_evictions".to_owned(), u64v(s.clean_evictions)),
        ("dirty_evictions".to_owned(), u64v(s.dirty_evictions)),
    ])
}

fn core_stats_to_value(s: &CoreStats) -> Value {
    Value::Object(vec![
        ("fetched".to_owned(), u64v(s.fetched)),
        ("committed".to_owned(), u64v(s.committed)),
        ("loads".to_owned(), u64v(s.loads)),
        ("stores".to_owned(), u64v(s.stores)),
        ("branches".to_owned(), u64v(s.branches)),
        ("mispredictions".to_owned(), u64v(s.mispredictions)),
        ("load_latency_sum".to_owned(), u64v(s.load_latency_sum)),
        ("load_latency_samples".to_owned(), u64v(s.load_latency_samples)),
        ("rob_full_stalls".to_owned(), u64v(s.rob_full_stalls)),
        ("memory_reject_stalls".to_owned(), u64v(s.memory_reject_stalls)),
        ("store_buffer_stalls".to_owned(), u64v(s.store_buffer_stalls)),
    ])
}

fn u64_array(values: &[u64]) -> Value {
    Value::Array(values.iter().copied().map(u64v).collect())
}

fn lnuca_stats_to_value(s: &LNucaStats) -> Value {
    Value::Object(vec![
        ("searches".to_owned(), u64v(s.searches)),
        ("read_hits_per_level".to_owned(), u64_array(&s.read_hits_per_level)),
        ("write_hits_per_level".to_owned(), u64_array(&s.write_hits_per_level)),
        ("global_misses".to_owned(), u64v(s.global_misses)),
        ("tile_lookups".to_owned(), u64v(s.tile_lookups)),
        ("in_flight_hits".to_owned(), u64v(s.in_flight_hits)),
        ("tile_fills".to_owned(), u64v(s.tile_fills)),
        ("spills".to_owned(), u64v(s.spills)),
        ("root_evictions".to_owned(), u64v(s.root_evictions)),
        ("transport_deliveries".to_owned(), u64v(s.transport_deliveries)),
        ("transport_latency_sum".to_owned(), u64v(s.transport_latency_sum)),
        (
            "transport_min_latency_sum".to_owned(),
            u64v(s.transport_min_latency_sum),
        ),
        ("transport_stall_cycles".to_owned(), u64v(s.transport_stall_cycles)),
        (
            "replacement_stall_cycles".to_owned(),
            u64v(s.replacement_stall_cycles),
        ),
        ("search_link_traversals".to_owned(), u64v(s.search_link_traversals)),
        (
            "transport_link_traversals".to_owned(),
            u64v(s.transport_link_traversals),
        ),
        (
            "replacement_link_traversals".to_owned(),
            u64v(s.replacement_link_traversals),
        ),
    ])
}

fn dnuca_stats_to_value(s: &DNucaStats) -> Value {
    Value::Object(vec![
        ("accesses".to_owned(), u64v(s.accesses)),
        ("hits_per_row".to_owned(), u64_array(&s.hits_per_row)),
        ("misses".to_owned(), u64v(s.misses)),
        ("bank_lookups".to_owned(), u64v(s.bank_lookups)),
        ("bank_fills".to_owned(), u64v(s.bank_fills)),
        ("migrations".to_owned(), u64v(s.migrations)),
        ("dirty_evictions".to_owned(), u64v(s.dirty_evictions)),
        ("hit_latency_sum".to_owned(), u64v(s.hit_latency_sum)),
    ])
}

fn mesh_stats_to_value(s: &MeshStats) -> Value {
    Value::Object(vec![
        ("messages".to_owned(), u64v(s.messages)),
        ("hops".to_owned(), u64v(s.hops)),
        ("flit_hops".to_owned(), u64v(s.flit_hops)),
        ("contention_cycles".to_owned(), u64v(s.contention_cycles)),
    ])
}

fn energy_to_value(account: &EnergyAccount) -> Value {
    let bucket = |entries: Vec<(&str, f64)>| {
        Value::Object(
            entries
                .into_iter()
                .map(|(name, pj)| (name.to_owned(), bits(pj)))
                .collect(),
        )
    };
    Value::Object(vec![
        ("dynamic".to_owned(), bucket(account.dynamic_entries().collect())),
        ("static".to_owned(), bucket(account.static_entries().collect())),
    ])
}

fn hierarchy_stats_to_value(s: &crate::hierarchy::HierarchyStats) -> Value {
    Value::Object(vec![
        ("label".to_owned(), strv(&s.label)),
        ("l1".to_owned(), cache_stats_to_value(&s.l1)),
        ("l2".to_owned(), opt(s.l2.as_ref().map(cache_stats_to_value))),
        (
            "deeper_levels".to_owned(),
            Value::Array(s.deeper_levels.iter().map(cache_stats_to_value).collect()),
        ),
        ("l3".to_owned(), opt(s.l3.as_ref().map(cache_stats_to_value))),
        ("lnuca".to_owned(), opt(s.lnuca.as_ref().map(lnuca_stats_to_value))),
        ("lnuca_tiles".to_owned(), u64v(s.lnuca_tiles as u64)),
        ("dnuca".to_owned(), opt(s.dnuca.as_ref().map(dnuca_stats_to_value))),
        (
            "dnuca_mesh".to_owned(),
            opt(s.dnuca_mesh.as_ref().map(mesh_stats_to_value)),
        ),
        ("dnuca_banks".to_owned(), u64v(s.dnuca_banks as u64)),
        ("memory_accesses".to_owned(), u64v(s.memory_accesses)),
        ("write_drains".to_owned(), u64v(s.write_drains)),
    ])
}

fn core_row_to_value(row: &crate::cmp::CoreRow) -> Value {
    Value::Object(vec![
        ("core".to_owned(), u64v(row.core as u64)),
        ("instructions".to_owned(), u64v(row.instructions)),
        ("ipc".to_owned(), bits(row.ipc)),
        ("stats".to_owned(), core_stats_to_value(&row.stats)),
        ("l1".to_owned(), cache_stats_to_value(&row.l1)),
        ("fabric".to_owned(), opt(row.fabric.as_ref().map(cache_stats_to_value))),
        ("coherence_hits".to_owned(), u64v(row.coherence_hits)),
        ("coherence_misses".to_owned(), u64v(row.coherence_misses)),
        (
            "invalidations_received".to_owned(),
            u64v(row.invalidations_received),
        ),
    ])
}

fn coherence_stats_to_value(s: &crate::cmp::CoherenceStats) -> Value {
    Value::Object(vec![
        ("reads".to_owned(), u64v(s.reads)),
        ("writes".to_owned(), u64v(s.writes)),
        ("hits".to_owned(), u64v(s.hits)),
        ("misses".to_owned(), u64v(s.misses)),
        ("evictions".to_owned(), u64v(s.evictions)),
        ("invalidations_sent".to_owned(), u64v(s.invalidations_sent)),
        ("downgrades".to_owned(), u64v(s.downgrades)),
        ("writebacks".to_owned(), u64v(s.writebacks)),
        ("recalls".to_owned(), u64v(s.recalls)),
        (
            "per_core_invalidations".to_owned(),
            Value::Array(s.per_core_invalidations.iter().copied().map(u64v).collect()),
        ),
    ])
}

fn result_to_value(result: &RunResult) -> Value {
    let mut fields = vec![
        ("label".to_owned(), strv(&result.label)),
        ("workload".to_owned(), strv(&result.workload)),
        ("suite".to_owned(), suite_to_value(result.suite)),
        ("instructions".to_owned(), u64v(result.instructions)),
        ("cycles".to_owned(), u64v(result.cycles)),
        ("ipc".to_owned(), bits(result.ipc)),
        ("core".to_owned(), core_stats_to_value(&result.core)),
        ("hierarchy".to_owned(), hierarchy_stats_to_value(&result.hierarchy)),
        ("energy".to_owned(), energy_to_value(&result.energy)),
    ];
    // CMP-only fields are emitted only for CMP results, so single-core
    // journal lines (and their digests) are byte-identical to older
    // releases.
    if !result.per_core.is_empty() {
        fields.push((
            "per_core".to_owned(),
            Value::Array(result.per_core.iter().map(core_row_to_value).collect()),
        ));
    }
    if let Some(coherence) = &result.coherence {
        fields.push(("coherence".to_owned(), coherence_stats_to_value(coherence)));
    }
    Value::Object(fields)
}

fn perf_to_value(perf: &RunPerf) -> Value {
    Value::Object(vec![
        ("label".to_owned(), strv(&perf.label)),
        ("workload".to_owned(), strv(&perf.workload)),
        ("wall_nanos".to_owned(), u64v(perf.wall_nanos)),
        ("cycles".to_owned(), u64v(perf.cycles)),
        ("kcycles_per_sec".to_owned(), bits(perf.kcycles_per_sec)),
    ])
}

// --- decoding -------------------------------------------------------------

type DecodeResult<T> = Result<T, String>;

fn field<'a>(value: &'a Value, key: &str) -> DecodeResult<&'a Value> {
    value.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn field_u64(value: &Value, key: &str) -> DecodeResult<u64> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not a non-negative integer"))
}

fn field_usize(value: &Value, key: &str) -> DecodeResult<usize> {
    usize::try_from(field_u64(value, key)?)
        .map_err(|_| format!("field {key:?} does not fit in usize"))
}

fn field_bits(value: &Value, key: &str) -> DecodeResult<f64> {
    Ok(f64::from_bits(field_u64(value, key)?))
}

fn field_str(value: &Value, key: &str) -> DecodeResult<String> {
    Ok(field(value, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))?
        .to_owned())
}

fn field_u64_array(value: &Value, key: &str) -> DecodeResult<Vec<u64>> {
    field(value, key)?
        .as_array()
        .ok_or_else(|| format!("field {key:?} is not an array"))?
        .iter()
        .map(|item| {
            item.as_u64()
                .ok_or_else(|| format!("field {key:?} holds a non-integer element"))
        })
        .collect()
}

/// `Null` → `None`, anything else decoded by `decode`.
fn field_opt<T>(
    value: &Value,
    key: &str,
    decode: impl Fn(&Value) -> DecodeResult<T>,
) -> DecodeResult<Option<T>> {
    match field(value, key)? {
        Value::Null => Ok(None),
        present => decode(present).map(Some),
    }
}

fn suite_from_value(value: &Value, key: &str) -> DecodeResult<Suite> {
    match field_str(value, key)?.as_str() {
        "int" => Ok(Suite::Integer),
        "fp" => Ok(Suite::FloatingPoint),
        other => Err(format!("unknown suite {other:?} (expected \"int\" or \"fp\")")),
    }
}

fn cache_stats_from_value(value: &Value) -> DecodeResult<CacheStats> {
    Ok(CacheStats {
        accesses: field_u64(value, "accesses")?,
        read_hits: field_u64(value, "read_hits")?,
        read_misses: field_u64(value, "read_misses")?,
        write_hits: field_u64(value, "write_hits")?,
        write_misses: field_u64(value, "write_misses")?,
        fills: field_u64(value, "fills")?,
        clean_evictions: field_u64(value, "clean_evictions")?,
        dirty_evictions: field_u64(value, "dirty_evictions")?,
    })
}

fn core_stats_from_value(value: &Value) -> DecodeResult<CoreStats> {
    Ok(CoreStats {
        fetched: field_u64(value, "fetched")?,
        committed: field_u64(value, "committed")?,
        loads: field_u64(value, "loads")?,
        stores: field_u64(value, "stores")?,
        branches: field_u64(value, "branches")?,
        mispredictions: field_u64(value, "mispredictions")?,
        load_latency_sum: field_u64(value, "load_latency_sum")?,
        load_latency_samples: field_u64(value, "load_latency_samples")?,
        rob_full_stalls: field_u64(value, "rob_full_stalls")?,
        memory_reject_stalls: field_u64(value, "memory_reject_stalls")?,
        store_buffer_stalls: field_u64(value, "store_buffer_stalls")?,
    })
}

fn lnuca_stats_from_value(value: &Value) -> DecodeResult<LNucaStats> {
    Ok(LNucaStats {
        searches: field_u64(value, "searches")?,
        read_hits_per_level: field_u64_array(value, "read_hits_per_level")?,
        write_hits_per_level: field_u64_array(value, "write_hits_per_level")?,
        global_misses: field_u64(value, "global_misses")?,
        tile_lookups: field_u64(value, "tile_lookups")?,
        in_flight_hits: field_u64(value, "in_flight_hits")?,
        tile_fills: field_u64(value, "tile_fills")?,
        spills: field_u64(value, "spills")?,
        root_evictions: field_u64(value, "root_evictions")?,
        transport_deliveries: field_u64(value, "transport_deliveries")?,
        transport_latency_sum: field_u64(value, "transport_latency_sum")?,
        transport_min_latency_sum: field_u64(value, "transport_min_latency_sum")?,
        transport_stall_cycles: field_u64(value, "transport_stall_cycles")?,
        replacement_stall_cycles: field_u64(value, "replacement_stall_cycles")?,
        search_link_traversals: field_u64(value, "search_link_traversals")?,
        transport_link_traversals: field_u64(value, "transport_link_traversals")?,
        replacement_link_traversals: field_u64(value, "replacement_link_traversals")?,
    })
}

fn dnuca_stats_from_value(value: &Value) -> DecodeResult<DNucaStats> {
    Ok(DNucaStats {
        accesses: field_u64(value, "accesses")?,
        hits_per_row: field_u64_array(value, "hits_per_row")?,
        misses: field_u64(value, "misses")?,
        bank_lookups: field_u64(value, "bank_lookups")?,
        bank_fills: field_u64(value, "bank_fills")?,
        migrations: field_u64(value, "migrations")?,
        dirty_evictions: field_u64(value, "dirty_evictions")?,
        hit_latency_sum: field_u64(value, "hit_latency_sum")?,
    })
}

fn mesh_stats_from_value(value: &Value) -> DecodeResult<MeshStats> {
    Ok(MeshStats {
        messages: field_u64(value, "messages")?,
        hops: field_u64(value, "hops")?,
        flit_hops: field_u64(value, "flit_hops")?,
        contention_cycles: field_u64(value, "contention_cycles")?,
    })
}

fn energy_from_value(value: &Value) -> DecodeResult<EnergyAccount> {
    let mut account = EnergyAccount::new();
    let bucket = |value: &Value, key: &str| -> DecodeResult<Vec<(String, f64)>> {
        field(value, key)?
            .as_object()
            .ok_or_else(|| format!("energy bucket {key:?} is not an object"))?
            .iter()
            .map(|(name, pj)| {
                let bits = pj
                    .as_u64()
                    .ok_or_else(|| format!("energy entry {name:?} is not a bit pattern"))?;
                Ok((name.clone(), f64::from_bits(bits)))
            })
            .collect()
    };
    for (name, pj) in bucket(value, "dynamic")? {
        account.add_dynamic(&name, pj);
    }
    for (name, pj) in bucket(value, "static")? {
        account.add_static(&name, pj);
    }
    Ok(account)
}

fn hierarchy_stats_from_value(value: &Value) -> DecodeResult<crate::hierarchy::HierarchyStats> {
    Ok(crate::hierarchy::HierarchyStats {
        label: field_str(value, "label")?,
        l1: cache_stats_from_value(field(value, "l1")?)?,
        l2: field_opt(value, "l2", cache_stats_from_value)?,
        deeper_levels: field(value, "deeper_levels")?
            .as_array()
            .ok_or_else(|| "field \"deeper_levels\" is not an array".to_owned())?
            .iter()
            .map(cache_stats_from_value)
            .collect::<DecodeResult<_>>()?,
        l3: field_opt(value, "l3", cache_stats_from_value)?,
        lnuca: field_opt(value, "lnuca", lnuca_stats_from_value)?,
        lnuca_tiles: field_usize(value, "lnuca_tiles")?,
        dnuca: field_opt(value, "dnuca", dnuca_stats_from_value)?,
        dnuca_mesh: field_opt(value, "dnuca_mesh", mesh_stats_from_value)?,
        dnuca_banks: field_usize(value, "dnuca_banks")?,
        memory_accesses: field_u64(value, "memory_accesses")?,
        write_drains: field_u64(value, "write_drains")?,
    })
}

fn core_row_from_value(value: &Value) -> DecodeResult<crate::cmp::CoreRow> {
    Ok(crate::cmp::CoreRow {
        core: field_usize(value, "core")?,
        instructions: field_u64(value, "instructions")?,
        ipc: field_bits(value, "ipc")?,
        stats: core_stats_from_value(field(value, "stats")?)?,
        l1: cache_stats_from_value(field(value, "l1")?)?,
        fabric: field_opt(value, "fabric", cache_stats_from_value)?,
        coherence_hits: field_u64(value, "coherence_hits")?,
        coherence_misses: field_u64(value, "coherence_misses")?,
        invalidations_received: field_u64(value, "invalidations_received")?,
    })
}

fn coherence_stats_from_value(value: &Value) -> DecodeResult<crate::cmp::CoherenceStats> {
    Ok(crate::cmp::CoherenceStats {
        reads: field_u64(value, "reads")?,
        writes: field_u64(value, "writes")?,
        hits: field_u64(value, "hits")?,
        misses: field_u64(value, "misses")?,
        evictions: field_u64(value, "evictions")?,
        invalidations_sent: field_u64(value, "invalidations_sent")?,
        downgrades: field_u64(value, "downgrades")?,
        writebacks: field_u64(value, "writebacks")?,
        recalls: field_u64(value, "recalls")?,
        per_core_invalidations: field_u64_array(value, "per_core_invalidations")?,
    })
}

fn result_from_value(value: &Value) -> DecodeResult<RunResult> {
    // Both CMP fields are absent from pre-multicore journals and from every
    // single-core line, so they decode as empty/None when missing.
    let per_core = match value.get("per_core") {
        None | Some(Value::Null) => Vec::new(),
        Some(rows) => rows
            .as_array()
            .ok_or_else(|| "field \"per_core\" is not an array".to_owned())?
            .iter()
            .map(core_row_from_value)
            .collect::<DecodeResult<_>>()?,
    };
    let coherence = match value.get("coherence") {
        None | Some(Value::Null) => None,
        Some(stats) => Some(coherence_stats_from_value(stats)?),
    };
    Ok(RunResult {
        label: field_str(value, "label")?,
        workload: field_str(value, "workload")?,
        suite: suite_from_value(value, "suite")?,
        instructions: field_u64(value, "instructions")?,
        cycles: field_u64(value, "cycles")?,
        ipc: field_bits(value, "ipc")?,
        core: core_stats_from_value(field(value, "core")?)?,
        hierarchy: hierarchy_stats_from_value(field(value, "hierarchy")?)?,
        energy: energy_from_value(field(value, "energy")?)?,
        per_core,
        coherence,
    })
}

fn perf_from_value(value: &Value) -> DecodeResult<RunPerf> {
    Ok(RunPerf {
        label: field_str(value, "label")?,
        workload: field_str(value, "workload")?,
        wall_nanos: field_u64(value, "wall_nanos")?,
        cycles: field_u64(value, "cycles")?,
        kcycles_per_sec: field_bits(value, "kcycles_per_sec")?,
    })
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// An append-only journal file shared by every worker of a study.
///
/// `record` is called from worker threads as runs complete; each record is
/// one `write` call of one newline-terminated line, so an interrupted
/// process leaves at most one torn trailing line (which
/// [`read_journal`] drops). Write errors are sticky and surfaced by
/// [`JournalWriter::finish`] — a journal problem must not abort the study
/// mid-flight, only mark it at the end.
#[derive(Debug)]
pub struct JournalWriter {
    inner: Mutex<WriterInner>,
}

#[derive(Debug)]
struct WriterInner {
    file: File,
    error: Option<String>,
}

impl JournalWriter {
    /// Creates (or truncates) the journal at `path` and writes the header
    /// line binding it to `plan`.
    ///
    /// # Errors
    ///
    /// [`RunError::JournalCorrupt`] when the file cannot be created or the
    /// plan's workloads do not resolve.
    pub fn create(path: &Path, plan: &ExperimentPlan, jobs: usize) -> Result<Self, RunError> {
        let digest = plan_digest(plan)?;
        let header = Value::Object(vec![
            ("schema".to_owned(), Value::String(JOURNAL_SCHEMA.to_owned())),
            ("plan".to_owned(), Value::String(plan.name.clone())),
            ("digest".to_owned(), Value::String(hex(digest))),
            ("jobs".to_owned(), Value::UInt(jobs as u64)),
        ]);
        let mut file = File::create(path).map_err(|e| corrupt(path, &e.to_string()))?;
        let mut line = compact(&header);
        line.push('\n');
        file.write_all(line.as_bytes())
            .map_err(|e| corrupt(path, &e.to_string()))?;
        Ok(JournalWriter {
            inner: Mutex::new(WriterInner { file, error: None }),
        })
    }

    /// Opens an existing, already-validated journal for appending (the
    /// resume path: [`read_journal`] has checked the header).
    ///
    /// # Errors
    ///
    /// [`RunError::JournalCorrupt`] when the file cannot be opened.
    pub fn append(path: &Path) -> Result<Self, RunError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| corrupt(path, &e.to_string()))?;
        Ok(JournalWriter {
            inner: Mutex::new(WriterInner { file, error: None }),
        })
    }

    /// Appends one completed run. Never fails the caller — I/O errors are
    /// remembered and surfaced by [`JournalWriter::finish`].
    pub fn record(&self, index: usize, result: &RunResult, perf: &RunPerf) {
        let body = Value::Object(vec![
            ("job".to_owned(), Value::UInt(index as u64)),
            ("result".to_owned(), result_to_value(result)),
            ("perf".to_owned(), perf_to_value(perf)),
        ]);
        let check = fnv1a(compact(&body).as_bytes());
        let Value::Object(mut members) = body else {
            unreachable!("body was constructed as an object")
        };
        members.push(("check".to_owned(), Value::String(hex(check))));
        let mut line = compact(&Value::Object(members));
        line.push('\n');
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if inner.error.is_some() {
            return;
        }
        if let Err(e) = inner.file.write_all(line.as_bytes()) {
            inner.error = Some(format!("journal append failed: {e}"));
        }
    }

    /// Flushes and surfaces any write error encountered during the study.
    ///
    /// # Errors
    ///
    /// [`RunError::JournalCorrupt`] when any record failed to append.
    pub fn finish(self) -> Result<(), RunError> {
        let inner = self
            .inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        match inner.error {
            Some(detail) => Err(RunError::JournalCorrupt { detail }),
            None => Ok(()),
        }
    }
}

fn corrupt(path: &Path, detail: &str) -> RunError {
    RunError::JournalCorrupt {
        detail: format!("{}: {detail}", path.display()),
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Reads a journal back for resumption: validates the header against
/// `plan`, checks every record line's checksum and returns the completed
/// runs indexed by matrix position (`None` = not journaled, re-run it).
///
/// A torn **trailing** line is dropped silently (the crash the journal
/// exists for); any other defect is [`RunError::JournalCorrupt`].
///
/// # Errors
///
/// [`RunError::JournalCorrupt`] on an unreadable file, a header that does
/// not match the plan (wrong schema, digest or job count) or a corrupt
/// interior line.
pub fn read_journal(
    path: &Path,
    plan: &ExperimentPlan,
    jobs: usize,
) -> Result<Vec<Option<(RunResult, RunPerf)>>, RunError> {
    let text = std::fs::read_to_string(path).map_err(|e| corrupt(path, &e.to_string()))?;
    let digest = plan_digest(plan)?;
    let lines: Vec<&str> = text.lines().filter(|line| !line.trim().is_empty()).collect();
    let Some((&header_line, records)) = lines.split_first() else {
        return Err(corrupt(path, "journal is empty (no header line)"));
    };
    let header = json::parse(header_line).map_err(|e| corrupt(path, &format!("header: {e}")))?;
    let schema = header.get("schema").and_then(Value::as_str).unwrap_or("");
    if schema != JOURNAL_SCHEMA {
        return Err(corrupt(
            path,
            &format!("unknown journal schema {schema:?} (expected {JOURNAL_SCHEMA:?})"),
        ));
    }
    let header_digest = header.get("digest").and_then(Value::as_str).unwrap_or("");
    if header_digest != hex(digest) {
        return Err(corrupt(
            path,
            &format!(
                "journal was written for a different plan (digest {header_digest}, this plan \
                 is {})",
                hex(digest)
            ),
        ));
    }
    let header_jobs = header.get("jobs").and_then(Value::as_u64);
    if header_jobs != Some(jobs as u64) {
        return Err(corrupt(
            path,
            &format!("journal header declares {header_jobs:?} jobs, this plan has {jobs}"),
        ));
    }

    let mut loaded: Vec<Option<(RunResult, RunPerf)>> = (0..jobs).map(|_| None).collect();
    for (i, line) in records.iter().enumerate() {
        let last = i + 1 == records.len();
        match decode_record(line, jobs) {
            Ok((index, result, perf)) => loaded[index] = Some((result, perf)),
            // The only tolerated defect: the final line was torn by the
            // crash/kill this journal exists to survive. That run re-runs.
            Err(_) if last => break,
            Err(detail) => {
                return Err(corrupt(path, &format!("record line {}: {detail}", i + 2)))
            }
        }
    }
    Ok(loaded)
}

fn decode_record(line: &str, jobs: usize) -> DecodeResult<(usize, RunResult, RunPerf)> {
    let value = json::parse(line).map_err(|e| e.to_string())?;
    let stored_check = field_str(&value, "check")?;
    let members = value
        .as_object()
        .ok_or_else(|| "record is not an object".to_owned())?;
    let body = Value::Object(
        members
            .iter()
            .filter(|(key, _)| key != "check")
            .cloned()
            .collect(),
    );
    let computed = hex(fnv1a(compact(&body).as_bytes()));
    if stored_check != computed {
        return Err(format!(
            "checksum mismatch (stored {stored_check}, computed {computed})"
        ));
    }
    let index = field_usize(&value, "job")?;
    if index >= jobs {
        return Err(format!("job index {index} out of range (plan has {jobs} jobs)"));
    }
    let result = result_from_value(field(&value, "result")?)?;
    let perf = perf_from_value(field(&value, "perf")?)?;
    Ok((index, result, perf))
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{ExperimentOptions, Study};
    use crate::spec::HierarchySpec;

    fn tiny_plan(name: &str) -> ExperimentPlan {
        ExperimentPlan::builder(name)
            .config(
                HierarchySpec::builder()
                    .fabric(lnuca_core::LNucaConfig::paper(2).expect("paper fabric is valid"))
                    .build()
                    .expect("tiny spec is valid"),
            )
            .options(
                ExperimentOptions::builder()
                    .instructions(1_500)
                    .benchmarks_per_suite(Some(1))
                    .build(),
            )
            .build()
            .expect("tiny plan is valid")
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "lnuca-journal-test-{tag}-{}.jsonl",
            std::process::id()
        ));
        path
    }

    #[test]
    fn result_codec_round_trips_bit_identically() {
        let plan = tiny_plan("codec");
        let study = Study::run(&plan).expect("tiny plan runs");
        for (result, perf) in study.results.iter().zip(&study.perf) {
            let back = result_from_value(&result_to_value(result)).expect("decodes");
            assert_eq!(&back, result);
            let perf_back = perf_from_value(&perf_to_value(perf)).expect("decodes");
            assert_eq!(&perf_back, perf);
        }
    }

    #[test]
    fn journaled_run_resumes_to_identical_study() {
        let plan = tiny_plan("resume");
        let path = temp_path("resume");
        let full = Study::run_journaled(&plan, &path, false).expect("journaled run succeeds");

        // Simulate a crash: drop the journal's trailing records (keep the
        // header and the first record) plus a torn half-line.
        let text = std::fs::read_to_string(&path).expect("journal readable");
        let mut lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "expected header + 2 records");
        lines.truncate(2);
        let torn = format!("{}\n{{\"job\":1,\"result\":{{\"lab", lines.join("\n"));
        std::fs::write(&path, torn).expect("journal writable");

        let resumed = Study::run_journaled(&plan, &path, true).expect("resume succeeds");
        assert_eq!(resumed.results, full.results);
        assert_eq!(resumed.configs, full.configs);
        assert!(resumed.failures.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_or_corrupt_journals_are_rejected() {
        let plan = tiny_plan("corrupt");
        let other = tiny_plan_with_seed(99);
        let path = temp_path("corrupt");
        Study::run_journaled(&plan, &path, false).expect("journaled run succeeds");

        // A journal for a different plan must not resume.
        let err = Study::run_journaled(&other, &path, true)
            .expect_err("foreign journal must be rejected");
        assert!(matches!(err, RunError::JournalCorrupt { .. }), "got {err}");

        // A corrupted interior record must be rejected, not skipped.
        let text = std::fs::read_to_string(&path).expect("journal readable");
        let mangled = text.replacen("\"cycles\":", "\"cycles\":9", 1);
        assert_ne!(text, mangled, "expected to mangle a record");
        std::fs::write(&path, mangled).expect("journal writable");
        let err = Study::run_journaled(&plan, &path, true)
            .expect_err("mangled journal must be rejected");
        assert!(matches!(err, RunError::JournalCorrupt { .. }), "got {err}");
        std::fs::remove_file(&path).ok();
    }

    fn tiny_plan_with_seed(seed: u64) -> ExperimentPlan {
        let base = tiny_plan("corrupt");
        ExperimentPlan::builder("corrupt")
            .configs(base.configs)
            .options(
                ExperimentOptions::builder()
                    .instructions(1_500)
                    .benchmarks_per_suite(Some(1))
                    .seed(seed)
                    .build(),
            )
            .build()
            .expect("plan is valid")
    }

    #[test]
    fn digest_ignores_execution_knobs_but_not_semantics() {
        let base = tiny_plan("digest");
        let base_digest = plan_digest(&base).expect("digest computes");

        // Non-semantic knobs: threads, engine, batch size, budgets, name.
        let mut exec = base.clone();
        exec.name = "renamed".to_owned();
        exec.options = ExperimentOptions::builder()
            .instructions(1_500)
            .benchmarks_per_suite(Some(1))
            .threads(7)
            .engine(crate::system::Engine::CycleStep)
            .batch_size(4)
            .cycle_budget(Some(123))
            .run_timeout_ms(Some(456))
            .livelock_window(Some(789))
            .retries(9)
            .build();
        assert_eq!(plan_digest(&exec).expect("digest computes"), base_digest);

        // Semantic fields: seed, instructions.
        let mut seeded = base.clone();
        seeded.options = ExperimentOptions::builder()
            .instructions(1_500)
            .benchmarks_per_suite(Some(1))
            .seed(2)
            .build();
        assert_ne!(plan_digest(&seeded).expect("digest computes"), base_digest);

        let mut longer = base.clone();
        longer.options = ExperimentOptions::builder()
            .instructions(3_000)
            .benchmarks_per_suite(Some(1))
            .build();
        assert_ne!(plan_digest(&longer).expect("digest computes"), base_digest);
    }

    #[test]
    fn compact_writer_is_parseable_and_stable() {
        let value = Value::Object(vec![
            ("s".to_owned(), Value::String("a\"b\\c\nd".to_owned())),
            (
                "a".to_owned(),
                Value::Array(vec![Value::UInt(1), Value::Null, Value::Bool(true)]),
            ),
            ("n".to_owned(), Value::Int(-3)),
        ]);
        let text = compact(&value);
        assert!(!text.contains('\n'), "compact output must be one line");
        let reparsed = json::parse(&text).expect("compact output parses");
        assert_eq!(reparsed, value);
        assert_eq!(compact(&reparsed), text);
    }
}
