//! The hierarchies with an L-NUCA fabric behind the root tile:
//! L-NUCA + L3 (Fig. 1(b)) and L-NUCA + D-NUCA (Fig. 1(d)).

use crate::configs::{self, HierarchyKind, LNucaDNucaConfig, LNucaL3Config};
use crate::hierarchy::{HierarchyStats, OuterLevel};
use crate::spec::HierarchySpec;
use lnuca_core::LNuca;
use lnuca_cpu::DataMemory;
use lnuca_mem::{
    AccessClass, AccessOutcome, ConventionalCache, MainMemory, MshrAllocation, MshrFile, NoProbe,
    ProbeEvent, ProbeSink, WriteBuffer,
};
use lnuca_types::{Addr, ConfigError, Cycle, MemRequest, MemResponse, ReqId, ServiceLevel};
use std::collections::VecDeque;

/// A pending search waiting for the single injection port of the Search
/// network.
#[derive(Debug, Clone, Copy)]
struct PendingSearch {
    addr: Addr,
    req: ReqId,
    is_write: bool,
    ready_at: Cycle,
}

/// Requests waiting on one in-flight block fetch, keyed by L1 block index.
/// The original request metadata is needed to build the responses once the
/// fabric or the outer level produces the block. Dead slots keep their
/// `reqs` allocation, so the steady state allocates nothing per miss
/// (DESIGN.md §9); one slot per L1 MSHR bounds the live set exactly.
#[derive(Debug)]
struct WaiterSlot {
    key: u64,
    live: bool,
    reqs: Vec<MemRequest>,
}

/// An L-NUCA hierarchy: the root tile (a conventional write-through L1 with
/// flow-control logic), the tile fabric, and an outer level (L3 or D-NUCA).
///
/// Misses in the root tile launch a search in the fabric (one injection per
/// cycle); hits anywhere in the fabric come back through the Transport
/// network and fill the root tile, whose victim re-enters the fabric through
/// the Replacement network — the distributed-victim-cache behaviour at the
/// heart of the paper. Global misses are forwarded to the outer level, and
/// blocks spilled by the outermost tiles are written back there when dirty.
///
/// The hierarchy is generic over a [`ProbeSink`] through which it reports
/// every functional state transition; the default [`NoProbe`] compiles the
/// instrumentation away entirely (DESIGN.md §11).
#[derive(Debug)]
pub struct LNucaHierarchy<P: ProbeSink = NoProbe> {
    label: String,
    probe: P,
    l1: ConventionalCache,
    l1_mshrs: MshrFile,
    fabric: LNuca,
    outer: OuterLevel,
    memory: MainMemory,
    write_buffer: WriteBuffer,
    pending_searches: VecDeque<PendingSearch>,
    waiters: Vec<WaiterSlot>,
    completions: VecDeque<MemResponse>,
    write_drains: u64,
    // Reused per-cycle buffers for the fabric's outputs (zero-allocation
    // steady state; see DESIGN.md §9). Each is cleared, refilled via the
    // fabric's `drain_*_into` and handed back within one `tick`.
    arrival_scratch: Vec<lnuca_core::Arrival>,
    miss_scratch: Vec<lnuca_core::GlobalMiss>,
    spill_scratch: Vec<lnuca_core::Spill>,
}

impl LNucaHierarchy {
    /// Builds the L-NUCA + L3 hierarchy (`LNx` configurations of Fig. 4)
    /// without instrumentation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any component configuration is invalid.
    pub fn with_l3(config: &LNucaL3Config) -> Result<Self, ConfigError> {
        Self::with_l3_probed(config, NoProbe)
    }

    /// Builds the L-NUCA + D-NUCA hierarchy (`LNx + DN-4x8` of Fig. 5)
    /// without instrumentation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any component configuration is invalid.
    pub fn with_dnuca(config: &LNucaDNucaConfig) -> Result<Self, ConfigError> {
        Self::with_dnuca_probed(config, NoProbe)
    }

    /// Builds the fabric hierarchy described by `spec` without
    /// instrumentation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the spec has no fabric (use
    /// [`crate::hierarchy::ClassicHierarchy`]) or any component is invalid.
    pub fn from_spec(spec: &HierarchySpec) -> Result<Self, ConfigError> {
        Self::from_spec_probed(spec, NoProbe)
    }
}

impl<P: ProbeSink> LNucaHierarchy<P> {
    /// Builds the L-NUCA + L3 hierarchy reporting functional transitions to
    /// `probe` (a thin wrapper lowering the paper config to its
    /// [`HierarchySpec`]).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any component configuration is invalid.
    pub fn with_l3_probed(config: &LNucaL3Config, probe: P) -> Result<Self, ConfigError> {
        Self::from_spec_probed(&HierarchyKind::LNucaL3(config.clone()).to_spec(), probe)
    }

    /// Builds the L-NUCA + D-NUCA hierarchy reporting functional transitions
    /// to `probe` (a thin wrapper lowering the paper config to its
    /// [`HierarchySpec`]).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any component configuration is invalid.
    pub fn with_dnuca_probed(config: &LNucaDNucaConfig, probe: P) -> Result<Self, ConfigError> {
        Self::from_spec_probed(&HierarchyKind::LNucaDNuca(config.clone()).to_spec(), probe)
    }

    /// Builds the fabric hierarchy described by `spec`, reporting functional
    /// transitions to `probe`: the root tile, the fabric, and the spec's
    /// intermediate chain and backing store behind them.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the spec has no fabric (use
    /// [`crate::hierarchy::ClassicHierarchy`]) or any component is invalid.
    pub fn from_spec_probed(spec: &HierarchySpec, probe: P) -> Result<Self, ConfigError> {
        let Some(fabric) = spec.fabric.clone() else {
            return Err(ConfigError::new(
                "fabric",
                "LNucaHierarchy needs a fabric; build a ClassicHierarchy instead",
            ));
        };
        spec.validate()?;
        Ok(LNucaHierarchy {
            label: spec.label(),
            probe,
            l1: ConventionalCache::new(spec.root.clone())?,
            l1_mshrs: MshrFile::new(
                configs::L1_MSHRS,
                configs::MSHR_SECONDARY,
                spec.root.block_size,
            )?,
            fabric: LNuca::new(fabric)?,
            outer: OuterLevel::from_spec(spec)?,
            memory: MainMemory::new(spec.memory)?,
            write_buffer: WriteBuffer::new(
                configs::WRITE_BUFFER_ENTRIES,
                spec.below_root_block_size(),
            )?,
            pending_searches: VecDeque::new(),
            waiters: (0..configs::L1_MSHRS)
                .map(|_| WaiterSlot {
                    key: 0,
                    live: false,
                    reqs: Vec::new(),
                })
                .collect(),
            completions: VecDeque::new(),
            write_drains: 0,
            arrival_scratch: Vec::new(),
            miss_scratch: Vec::new(),
            spill_scratch: Vec::new(),
        })
    }

    /// Snapshot of the accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            label: self.label.clone(),
            l1: *self.l1.stats(),
            l2: self.outer.l2_stats(),
            deeper_levels: self.outer.deeper_stats(),
            l3: self.outer.l3_stats(),
            lnuca: Some(self.fabric.stats().clone()),
            lnuca_tiles: self.fabric.geometry().tile_count(),
            dnuca: self.outer.dnuca_stats(),
            dnuca_mesh: self.outer.dnuca_mesh_stats(),
            dnuca_banks: self.outer.dnuca_banks(),
            memory_accesses: self.memory.accesses(),
            write_drains: self.write_drains,
        }
    }

    /// Configuration label (e.g. `LN3-144KB`).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The L-NUCA fabric (exposed for the integration tests).
    #[must_use]
    pub fn fabric(&self) -> &LNuca {
        &self.fabric
    }

    /// The probe sink (for reading back recorded events).
    #[must_use]
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consumes the hierarchy, returning the probe sink.
    #[must_use]
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// The root tile / L1 (exposed for residency enumeration in
    /// verification).
    #[must_use]
    pub fn l1(&self) -> &ConventionalCache {
        &self.l1
    }

    /// The outer level (exposed for residency enumeration in verification).
    #[must_use]
    pub fn outer(&self) -> &OuterLevel {
        &self.outer
    }

    fn block_key(&self, addr: Addr) -> u64 {
        addr.block_index(self.l1.config().block_size)
    }

    /// Installs a block in the root tile, pushing any displaced victim into
    /// the Replacement network.
    fn fill_root(&mut self, addr: Addr) {
        if let Some(victim) = self.l1.fill(addr, false) {
            // The root tile is write-through, so its victims are clean; the
            // fabric still receives them to act as a victim cache.
            self.probe.record(ProbeEvent::RootVictim {
                addr: victim.addr,
                dirty: victim.dirty,
            });
            self.fabric.evict_from_root(victim.addr, victim.dirty);
        }
    }

    /// Appends `req` to the waiter slot for its block, reviving a dead slot
    /// for the first waiter.
    fn push_waiter(&mut self, key: u64, req: MemRequest) {
        if let Some(slot) = self.waiters.iter_mut().find(|s| s.live && s.key == key) {
            slot.reqs.push(req);
            return;
        }
        let slot = self
            .waiters
            .iter_mut()
            .find(|s| !s.live)
            .expect("the MSHR file caps pending blocks at the slot count");
        slot.key = key;
        slot.live = true;
        slot.reqs.clear();
        slot.reqs.push(req);
    }

    /// Completes every request waiting on `addr` with the given attribution.
    fn complete_waiters(&mut self, addr: Addr, at: Cycle, served_by: ServiceLevel) {
        let key = self.block_key(addr);
        let _ = self.l1_mshrs.retire(addr);
        if let Some(slot) = self.waiters.iter_mut().find(|s| s.live && s.key == key) {
            slot.live = false;
            for req in slot.reqs.drain(..) {
                self.completions
                    .push_back(MemResponse::for_request(&req, at, served_by));
            }
        }
    }
}

impl<P: ProbeSink> DataMemory for LNucaHierarchy<P> {
    fn issue(&mut self, req: MemRequest, now: Cycle) -> bool {
        let addr = req.addr;
        let is_write = req.kind.is_write();

        // Merge with an in-flight fetch of the same block.
        if self.l1_mshrs.is_pending(addr) {
            return match self.l1_mshrs.allocate(addr, req.id) {
                MshrAllocation::Secondary | MshrAllocation::Primary => {
                    if is_write {
                        let _ = self.write_buffer.push(addr);
                    }
                    self.probe.record(ProbeEvent::Access {
                        addr,
                        is_write,
                        class: AccessClass::Merged,
                    });
                    let key = self.block_key(addr);
                    self.push_waiter(key, req);
                    true
                }
                MshrAllocation::Full => false,
            };
        }

        if !self.l1.probe(addr) && self.l1_mshrs.is_full() {
            return false;
        }

        match self.l1.access(addr, is_write, now) {
            AccessOutcome::Hit { ready_at } => {
                if is_write {
                    let _ = self.write_buffer.push(addr);
                }
                self.probe.record(ProbeEvent::Access {
                    addr,
                    is_write,
                    class: AccessClass::Hit,
                });
                self.completions
                    .push_back(MemResponse::for_request(&req, ready_at, ServiceLevel::L1));
                true
            }
            AccessOutcome::Miss { determined_at } => {
                match self.l1_mshrs.allocate(addr, req.id) {
                    MshrAllocation::Primary => {}
                    MshrAllocation::Secondary | MshrAllocation::Full => {
                        unreachable!("pending and full cases were handled above")
                    }
                }
                if is_write {
                    let _ = self.write_buffer.push(addr);
                }
                self.probe.record(ProbeEvent::Access {
                    addr,
                    is_write,
                    class: AccessClass::MissLaunched,
                });
                let key = self.block_key(addr);
                self.push_waiter(key, req);
                self.pending_searches.push_back(PendingSearch {
                    addr,
                    req: req.id,
                    is_write,
                    ready_at: determined_at,
                });
                true
            }
        }
    }

    fn drain_completions(&mut self, now: Cycle, out: &mut Vec<MemResponse>) {
        lnuca_cpu::drain_ready(&mut self.completions, now, out);
    }

    fn tick(&mut self, now: Cycle) {
        // 1. Advance the fabric.
        self.fabric.tick(now);

        // 2. Hits coming back through the Transport network.
        let mut arrivals = std::mem::take(&mut self.arrival_scratch);
        arrivals.clear();
        self.fabric.drain_arrivals_into(now, &mut arrivals);
        for &arrival in &arrivals {
            if arrival.dirty {
                // The root tile is write-through; the modified data the tile
                // was holding is pushed toward the outer level.
                let _ = self.write_buffer.push(arrival.addr);
            }
            self.probe.record(ProbeEvent::FabricHit {
                addr: arrival.addr,
                level: arrival.hit_level,
                dirty: arrival.dirty,
            });
            self.fill_root(arrival.addr);
            self.complete_waiters(
                arrival.addr,
                arrival.available_at,
                ServiceLevel::LNucaLevel(arrival.hit_level),
            );
        }
        self.arrival_scratch = arrivals;

        // 3. Global misses are forwarded to the outer level.
        let mut misses = std::mem::take(&mut self.miss_scratch);
        misses.clear();
        self.fabric.drain_global_misses_into(now, &mut misses);
        for &miss in &misses {
            let (completion, served) =
                self.outer
                    .fetch(miss.addr, miss.is_write, miss.determined_at, &mut self.memory);
            self.probe.record(ProbeEvent::OuterFetch {
                addr: miss.addr,
                is_write: miss.is_write,
                served,
            });
            self.fill_root(miss.addr);
            self.complete_waiters(miss.addr, completion, served);
        }
        self.miss_scratch = misses;

        // 4. Blocks spilled by the outermost tiles.
        let mut spills = std::mem::take(&mut self.spill_scratch);
        spills.clear();
        self.fabric.drain_spills_into(now, &mut spills);
        for &spill in &spills {
            self.probe.record(ProbeEvent::Spill {
                addr: spill.addr,
                dirty: spill.dirty,
            });
            if spill.dirty {
                let _ = self.write_buffer.push(spill.addr);
            }
        }
        self.spill_scratch = spills;

        // 5. Inject at most one pending search per cycle.
        while let Some(front) = self.pending_searches.front() {
            if front.ready_at > now {
                break;
            }
            let search = *front;
            if self
                .fabric
                .inject_search(search.addr, search.req, search.is_write, now)
            {
                self.pending_searches.pop_front();
            } else {
                break;
            }
        }

        // 6. Drain one coalesced write toward the outer level.
        if let Some(addr) = self.write_buffer.drain_one() {
            self.outer.write_through(addr);
            self.probe.record(ProbeEvent::WriteDrain { addr });
            self.write_drains += 1;
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let floor = now.next();
        if !self.write_buffer.is_empty() {
            return Some(floor);
        }
        let mut horizon = self.fabric.next_event(now);
        let merge = |cur: &mut Option<Cycle>, at: Cycle| Cycle::merge_horizon(cur, at, floor);
        // The injection port retries the front search once it is ready.
        if let Some(front) = self.pending_searches.front() {
            merge(&mut horizon, front.ready_at);
        }
        for response in &self.completions {
            merge(&mut horizon, response.completed_at);
        }
        horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnuca_types::ReqId;

    fn lnuca3() -> LNucaHierarchy {
        LNucaHierarchy::with_l3(&configs::lnuca_hierarchy(3)).unwrap()
    }

    fn read(id: u64, addr: u64, at: u64) -> MemRequest {
        MemRequest::read(ReqId(id), Addr(addr), Cycle(at))
    }

    /// Advances the hierarchy until the response for `id` appears, starting
    /// from cycle `from`.
    fn wait_for(h: &mut LNucaHierarchy, id: u64, from: u64) -> MemResponse {
        for c in from..from + 2_000_000 {
            h.tick(Cycle(c));
            for r in h.completions(Cycle(c)) {
                if r.id == ReqId(id) {
                    return r;
                }
            }
        }
        panic!("request {id} never completed");
    }

    #[test]
    fn cold_misses_are_served_by_the_outer_level() {
        let mut h = lnuca3();
        assert!(h.issue(read(1, 0x40_0000, 0), Cycle(0)));
        let resp = wait_for(&mut h, 1, 0);
        assert_eq!(resp.served_by, ServiceLevel::Memory);
        assert!(resp.latency() > 200);
        assert_eq!(h.fabric().stats().global_misses, 1);
    }

    #[test]
    fn l1_victims_are_recovered_from_the_fabric_not_the_l3() {
        let mut h = lnuca3();
        // Load a block, then evict it from the 4-way L1 set with conflicts.
        assert!(h.issue(read(1, 0x0, 0), Cycle(0)));
        let _ = wait_for(&mut h, 1, 0);
        let mut clock = 10_000u64;
        for i in 0..5u64 {
            let conflict = 0x8000 * (i + 1);
            assert!(h.issue(read(10 + i, conflict, clock), Cycle(clock)));
            let _ = wait_for(&mut h, 10 + i, clock);
            clock += 2_000;
        }
        assert!(!h.l1.probe(Addr(0x0)), "the original block must have been displaced");
        assert!(h.fabric().contains(Addr(0x0)), "the victim lives in the fabric");
        assert!(h.issue(read(99, 0x0, clock), Cycle(clock)));
        let resp = wait_for(&mut h, 99, clock);
        match resp.served_by {
            ServiceLevel::LNucaLevel(level) => assert!(level >= 2),
            other => panic!("expected an L-NUCA hit, got {other}"),
        }
        assert!(
            resp.latency() < 15,
            "a fabric hit must be far faster than the 20-cycle L3, got {}",
            resp.latency()
        );
        assert!(h.fabric().stats().read_hits() >= 1);
    }

    #[test]
    fn fabric_hits_are_faster_than_l3_hits() {
        // Same reuse pattern under LN3 vs under a conventional hierarchy
        // with the L2 removed (L3 only): the fabric services the victim
        // sooner than the 20-cycle L3 would.
        let mut h = lnuca3();
        assert!(h.issue(read(1, 0x1234_0000, 0), Cycle(0)));
        let cold = wait_for(&mut h, 1, 0);
        assert_eq!(cold.served_by, ServiceLevel::Memory);
        // Evict it from the root tile.
        let mut clock = 20_000u64;
        for i in 0..5u64 {
            assert!(h.issue(read(10 + i, 0x1234_0000 + 0x8000 * (i + 1), clock), Cycle(clock)));
            let _ = wait_for(&mut h, 10 + i, clock);
            clock += 2_000;
        }
        assert!(h.issue(read(99, 0x1234_0000, clock), Cycle(clock)));
        let warm = wait_for(&mut h, 99, clock);
        assert!(matches!(warm.served_by, ServiceLevel::LNucaLevel(_)));
        assert!(warm.latency() < 20);
    }

    #[test]
    fn secondary_misses_merge_and_complete_together() {
        let mut h = lnuca3();
        assert!(h.issue(read(1, 0x9000, 0), Cycle(0)));
        assert!(h.issue(read(2, 0x9008, 0), Cycle(0)));
        let mut got = Vec::new();
        for c in 0..100_000u64 {
            h.tick(Cycle(c));
            got.extend(h.completions(Cycle(c)));
            if got.len() == 2 {
                break;
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].completed_at, got[1].completed_at);
    }

    #[test]
    fn mshr_exhaustion_applies_back_pressure() {
        let mut h = lnuca3();
        for i in 0..16u64 {
            assert!(h.issue(read(i, 0x200_0000 + i * 4096, 0), Cycle(0)));
        }
        assert!(!h.issue(read(99, 0x500_0000, 0), Cycle(0)));
    }

    #[test]
    fn writes_hit_the_root_tile_and_drain_outward() {
        let mut h = lnuca3();
        assert!(h.issue(read(1, 0x6000, 0), Cycle(0)));
        let _ = wait_for(&mut h, 1, 0);
        let w = MemRequest::write(ReqId(2), Addr(0x6000), Cycle(3_000));
        assert!(h.issue(w, Cycle(3_000)));
        let resp = wait_for(&mut h, 2, 3_000);
        assert_eq!(resp.served_by, ServiceLevel::L1);
        for c in 3_010..3_200 {
            h.tick(Cycle(c));
        }
        assert!(h.stats().write_drains >= 1);
    }

    #[test]
    fn dnuca_backed_variant_builds_and_serves_requests() {
        let mut h = LNucaHierarchy::with_dnuca(&configs::lnuca_dnuca_hierarchy(2)).unwrap();
        assert!(h.issue(read(1, 0xCAFE_0000, 0), Cycle(0)));
        let resp = wait_for(&mut h, 1, 0);
        assert_eq!(resp.served_by, ServiceLevel::Memory);
        let stats = h.stats();
        assert_eq!(stats.label, "LN2 + DN-4x8");
        assert!(stats.dnuca.is_some());
        assert!(stats.lnuca.is_some());
    }
}
