//! The hierarchies with a conventional L1 in front: the 3-level baseline
//! (Fig. 1(a)) and L1 + D-NUCA (Fig. 1(c)).

use crate::configs::{self, ConventionalConfig, DNucaOnlyConfig, HierarchyKind};
use crate::hierarchy::{HierarchyStats, OuterLevel};
use crate::spec::HierarchySpec;
use lnuca_cpu::DataMemory;
use lnuca_mem::{
    AccessClass, AccessOutcome, ConventionalCache, MainMemory, MshrAllocation, MshrFile, NoProbe,
    ProbeEvent, ProbeSink, WriteBuffer,
};
use lnuca_types::{Addr, ConfigError, Cycle, MemRequest, MemResponse, ServiceLevel};
use std::collections::VecDeque;

/// One in-flight block fetch: its L1 block index, when it completes and who
/// serviced it.
#[derive(Debug, Clone, Copy)]
struct OutstandingFetch {
    key: u64,
    completion: Cycle,
    served: ServiceLevel,
}

/// A hierarchy with a conventional (non-tiled) L1 in front of an
/// [`OuterLevel`]: either L1 + L2 + L3 or L1 + D-NUCA.
///
/// The L1 is write-through with write-allocate; store traffic is absorbed by
/// a coalescing write buffer and drained one block per cycle to the outer
/// level (marking it dirty there), matching the 32-entry write buffers of
/// Table I. Misses allocate one of the 16 L1 MSHRs; when all are busy the
/// request is rejected and the core retries, which is how limited
/// memory-level parallelism is enforced.
///
/// The hierarchy is generic over a [`ProbeSink`] through which it reports
/// every functional state transition; the default [`NoProbe`] compiles the
/// instrumentation away entirely (DESIGN.md §11).
#[derive(Debug)]
pub struct ClassicHierarchy<P: ProbeSink = NoProbe> {
    label: String,
    l1: ConventionalCache,
    l1_mshrs: MshrFile,
    write_buffer: WriteBuffer,
    outer: OuterLevel,
    memory: MainMemory,
    probe: P,
    /// In-flight block fetches in a fixed array of [`configs::L1_MSHRS`]
    /// slots, mirroring the paper's 16 physical L1 MSHRs one to one (every
    /// entry here holds a primary-miss MSHR, so the file's capacity bounds
    /// this array exactly). First-fit allocation and an index-order retire
    /// sweep keep the order deterministic without any per-miss map churn.
    outstanding: [Option<OutstandingFetch>; configs::L1_MSHRS],
    completions: VecDeque<MemResponse>,
    write_drains: u64,
}

impl ClassicHierarchy {
    /// Builds the conventional three-level hierarchy (`L2-256KB` baseline)
    /// without instrumentation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any component configuration is invalid.
    pub fn conventional(config: &ConventionalConfig) -> Result<Self, ConfigError> {
        Self::conventional_probed(config, NoProbe)
    }

    /// Builds the L1 + D-NUCA hierarchy (`DN-4x8` baseline) without
    /// instrumentation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any component configuration is invalid.
    pub fn dnuca(config: &DNucaOnlyConfig) -> Result<Self, ConfigError> {
        Self::dnuca_probed(config, NoProbe)
    }

    /// Builds the fabric-less hierarchy described by `spec` without
    /// instrumentation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the spec has a fabric (use
    /// [`crate::hierarchy::LNucaHierarchy`]) or any component is invalid.
    pub fn from_spec(spec: &HierarchySpec) -> Result<Self, ConfigError> {
        Self::from_spec_probed(spec, NoProbe)
    }
}

impl<P: ProbeSink> ClassicHierarchy<P> {
    /// Builds the conventional three-level hierarchy reporting functional
    /// transitions to `probe` (a thin wrapper lowering the paper config to
    /// its [`HierarchySpec`]).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any component configuration is invalid.
    pub fn conventional_probed(config: &ConventionalConfig, probe: P) -> Result<Self, ConfigError> {
        Self::from_spec_probed(&HierarchyKind::Conventional(config.clone()).to_spec(), probe)
    }

    /// Builds the L1 + D-NUCA hierarchy reporting functional transitions to
    /// `probe` (a thin wrapper lowering the paper config to its
    /// [`HierarchySpec`]).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any component configuration is invalid.
    pub fn dnuca_probed(config: &DNucaOnlyConfig, probe: P) -> Result<Self, ConfigError> {
        Self::from_spec_probed(&HierarchyKind::DNuca(config.clone()).to_spec(), probe)
    }

    /// Builds the fabric-less hierarchy described by `spec`, reporting
    /// functional transitions to `probe`: the root cache in front of the
    /// spec's intermediate chain and backing store.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the spec has a fabric (use
    /// [`crate::hierarchy::LNucaHierarchy`]) or any component is invalid.
    pub fn from_spec_probed(spec: &HierarchySpec, probe: P) -> Result<Self, ConfigError> {
        if spec.fabric.is_some() {
            return Err(ConfigError::new(
                "fabric",
                "ClassicHierarchy models fabric-less hierarchies; build an LNucaHierarchy instead",
            ));
        }
        spec.validate()?;
        Ok(ClassicHierarchy {
            label: spec.label(),
            l1: ConventionalCache::new(spec.root.clone())?,
            l1_mshrs: MshrFile::new(
                configs::L1_MSHRS,
                configs::MSHR_SECONDARY,
                spec.root.block_size,
            )?,
            write_buffer: WriteBuffer::new(
                configs::WRITE_BUFFER_ENTRIES,
                spec.below_root_block_size(),
            )?,
            outer: OuterLevel::from_spec(spec)?,
            memory: MainMemory::new(spec.memory)?,
            probe,
            outstanding: [None; configs::L1_MSHRS],
            completions: VecDeque::new(),
            write_drains: 0,
        })
    }

    /// The probe sink (for reading back recorded events).
    #[must_use]
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consumes the hierarchy, returning the probe sink.
    #[must_use]
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// The L1 cache (exposed for residency enumeration in verification).
    #[must_use]
    pub fn l1(&self) -> &ConventionalCache {
        &self.l1
    }

    /// The outer level (exposed for residency enumeration in verification).
    #[must_use]
    pub fn outer(&self) -> &OuterLevel {
        &self.outer
    }

    /// Snapshot of the accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            label: self.label.clone(),
            l1: *self.l1.stats(),
            l2: self.outer.l2_stats(),
            deeper_levels: self.outer.deeper_stats(),
            l3: self.outer.l3_stats(),
            lnuca: None,
            lnuca_tiles: 0,
            dnuca: self.outer.dnuca_stats(),
            dnuca_mesh: self.outer.dnuca_mesh_stats(),
            dnuca_banks: self.outer.dnuca_banks(),
            memory_accesses: self.memory.accesses(),
            write_drains: self.write_drains,
        }
    }

    /// Configuration label (e.g. `L2-256KB`).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    fn block_key(&self, addr: Addr) -> u64 {
        addr.block_index(self.l1.config().block_size)
    }

    /// Completion time and attribution of the in-flight fetch for `key`.
    fn outstanding_for(&self, key: u64) -> (Cycle, ServiceLevel) {
        self.outstanding
            .iter()
            .flatten()
            .find(|f| f.key == key)
            .map(|f| (f.completion, f.served))
            .expect("a pending MSHR always has an outstanding-fetch slot")
    }

    /// Records an in-flight fetch in the first free slot (first fit).
    fn record_outstanding(&mut self, key: u64, completion: Cycle, served: ServiceLevel) {
        let slot = self
            .outstanding
            .iter_mut()
            .find(|s| s.is_none())
            .expect("the MSHR file caps primary misses at the slot count");
        *slot = Some(OutstandingFetch {
            key,
            completion,
            served,
        });
    }
}

impl<P: ProbeSink> DataMemory for ClassicHierarchy<P> {
    fn issue(&mut self, req: MemRequest, now: Cycle) -> bool {
        let addr = req.addr;
        let is_write = req.kind.is_write();
        let key = self.block_key(addr);

        // A fetch of this block is already in flight: merge into it.
        if self.l1_mshrs.is_pending(addr) {
            return match self.l1_mshrs.allocate(addr, req.id) {
                MshrAllocation::Secondary | MshrAllocation::Primary => {
                    let (completion, served) = self.outstanding_for(key);
                    if is_write {
                        let _ = self.write_buffer.push(addr);
                    }
                    self.probe.record(ProbeEvent::Access {
                        addr,
                        is_write,
                        class: AccessClass::Merged,
                    });
                    self.completions.push_back(MemResponse::for_request(
                        &req,
                        completion.max(now),
                        served,
                    ));
                    true
                }
                MshrAllocation::Full => false,
            };
        }

        // A new miss would need a free MSHR; reject early so the L1 port and
        // the miss counters are not touched by a request that must retry.
        if !self.l1.probe(addr) && self.l1_mshrs.is_full() {
            return false;
        }

        match self.l1.access(addr, is_write, now) {
            AccessOutcome::Hit { ready_at } => {
                if is_write {
                    let _ = self.write_buffer.push(addr);
                }
                self.probe.record(ProbeEvent::Access {
                    addr,
                    is_write,
                    class: AccessClass::Hit,
                });
                self.completions
                    .push_back(MemResponse::for_request(&req, ready_at, ServiceLevel::L1));
                true
            }
            AccessOutcome::Miss { determined_at } => {
                match self.l1_mshrs.allocate(addr, req.id) {
                    MshrAllocation::Primary => {}
                    MshrAllocation::Secondary | MshrAllocation::Full => {
                        unreachable!("pending and full cases were handled above")
                    }
                }
                let (completion, served) =
                    self.outer
                        .fetch(addr, is_write, determined_at, &mut self.memory);
                // Write-allocate: the block is installed in the L1; its
                // victim is clean because the L1 is write-through.
                let _ = self.l1.fill(addr, false);
                if is_write {
                    let _ = self.write_buffer.push(addr);
                }
                self.probe.record(ProbeEvent::Access {
                    addr,
                    is_write,
                    class: AccessClass::Miss(served),
                });
                self.record_outstanding(key, completion, served);
                self.completions
                    .push_back(MemResponse::for_request(&req, completion, served));
                true
            }
        }
    }

    fn drain_completions(&mut self, now: Cycle, out: &mut Vec<MemResponse>) {
        lnuca_cpu::drain_ready(&mut self.completions, now, out);
    }

    fn tick(&mut self, now: Cycle) {
        // Retire finished fetches so their MSHR entries free up, sweeping
        // the fixed slot array in index order (stable across runs).
        let block_size = self.l1.config().block_size;
        for slot in &mut self.outstanding {
            if let Some(fetch) = slot {
                if fetch.completion <= now {
                    let _ = self.l1_mshrs.retire(Addr(fetch.key * block_size));
                    *slot = None;
                }
            }
        }
        // Drain one coalesced write per cycle toward the outer level.
        if let Some(addr) = self.write_buffer.drain_one() {
            self.outer.write_through(addr);
            self.probe.record(ProbeEvent::WriteDrain { addr });
            self.write_drains += 1;
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let floor = now.next();
        // The write buffer drains (and dirties the outer level) every cycle
        // it holds anything.
        if !self.write_buffer.is_empty() {
            return Some(floor);
        }
        let mut horizon: Option<Cycle> = None;
        let merge = |cur: &mut Option<Cycle>, at: Cycle| Cycle::merge_horizon(cur, at, floor);
        // Undelivered responses mature at their completion cycles; in-flight
        // fetches retire (freeing MSHRs) at theirs.
        for response in &self.completions {
            merge(&mut horizon, response.completed_at);
        }
        for fetch in self.outstanding.iter().flatten() {
            merge(&mut horizon, fetch.completion);
        }
        horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnuca_types::ReqId;

    fn conventional() -> ClassicHierarchy {
        ClassicHierarchy::conventional(&configs::conventional()).unwrap()
    }

    fn read(id: u64, addr: u64, at: u64) -> MemRequest {
        MemRequest::read(ReqId(id), Addr(addr), Cycle(at))
    }

    #[test]
    fn first_access_goes_to_memory_and_repeat_hits_l1() {
        let mut h = conventional();
        assert!(h.issue(read(1, 0x5000, 0), Cycle(0)));
        let resp = wait_for(&mut h, 1);
        assert_eq!(resp.served_by, ServiceLevel::Memory);
        assert!(resp.latency() > 200);

        assert!(h.issue(read(2, 0x5000, 5_000), Cycle(5_000)));
        let resp = wait_for(&mut h, 2);
        assert_eq!(resp.served_by, ServiceLevel::L1);
        assert_eq!(resp.latency(), 2);
    }

    #[test]
    fn l1_victims_are_refetched_from_the_l2() {
        let mut h = conventional();
        // Touch a block, then push it out of the 32 KB L1 by touching enough
        // conflicting blocks (same L1 set, different tags) — but few enough
        // that the 8-way L2 still holds the original block.
        assert!(h.issue(read(1, 0x0, 0), Cycle(0)));
        let _ = wait_for(&mut h, 1);
        for i in 0..5u64 {
            let conflict = 0x8000 * (i + 1); // 32 KB apart => same L1 set
            assert!(h.issue(read(10 + i, conflict, 10_000 + i * 600), Cycle(10_000 + i * 600)));
            let _ = wait_for(&mut h, 10 + i);
        }
        assert!(h.issue(read(99, 0x0, 100_000), Cycle(100_000)));
        let resp = wait_for(&mut h, 99);
        assert_eq!(resp.served_by, ServiceLevel::L2, "evicted L1 block must still be in the L2");
        assert!(resp.latency() < 30);
    }

    #[test]
    fn mshr_exhaustion_rejects_new_primary_misses() {
        let mut h = conventional();
        // 16 distinct missing blocks fill the MSHR file.
        for i in 0..16u64 {
            assert!(h.issue(read(i, 0x100_0000 + i * 4096, 0), Cycle(0)));
        }
        assert!(
            !h.issue(read(99, 0xFFF_0000, 0), Cycle(0)),
            "the 17th outstanding miss must be rejected"
        );
        // Accesses to an already-outstanding block still merge.
        assert!(h.issue(read(100, 0x100_0000, 0), Cycle(0)));
    }

    #[test]
    fn secondary_misses_complete_with_the_primary() {
        let mut h = conventional();
        assert!(h.issue(read(1, 0x9000, 0), Cycle(0)));
        assert!(h.issue(read(2, 0x9010, 1), Cycle(1)));
        // Collect both completions in one pass so neither is dropped.
        let mut got: Vec<MemResponse> = Vec::new();
        for c in 0..10_000u64 {
            h.tick(Cycle(c));
            got.extend(h.completions(Cycle(c)));
            if got.len() == 2 {
                break;
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].completed_at, got[1].completed_at, "merged misses finish together");
        assert_eq!(got[0].served_by, got[1].served_by);
    }

    #[test]
    fn writes_complete_at_l1_speed_and_dirty_the_l2_via_the_write_buffer() {
        let mut h = conventional();
        // Bring the block on chip first.
        assert!(h.issue(read(1, 0x4000, 0), Cycle(0)));
        let _ = wait_for(&mut h, 1);
        let w = MemRequest::write(ReqId(2), Addr(0x4000), Cycle(2_000));
        assert!(h.issue(w, Cycle(2_000)));
        let resp = wait_for(&mut h, 2);
        assert_eq!(resp.served_by, ServiceLevel::L1);
        assert_eq!(resp.latency(), 2);
        // Let the write buffer drain.
        for c in 2_010..2_100 {
            h.tick(Cycle(c));
        }
        assert!(h.stats().write_drains >= 1);
    }

    #[test]
    fn dnuca_variant_attributes_hits_to_rows() {
        let mut h = ClassicHierarchy::dnuca(&configs::dnuca_hierarchy()).unwrap();
        assert!(h.issue(read(1, 0x7_0000, 0), Cycle(0)));
        let first = wait_for(&mut h, 1);
        assert_eq!(first.served_by, ServiceLevel::Memory);
        // Evict from L1 by conflicting blocks, then re-access: now served by
        // the D-NUCA.
        for i in 0..5u64 {
            assert!(h.issue(read(10 + i, 0x7_0000 + 0x8000 * (i + 1), 10_000 + i * 600), Cycle(10_000 + i * 600)));
            let _ = wait_for(&mut h, 10 + i);
        }
        assert!(h.issue(read(99, 0x7_0000, 100_000), Cycle(100_000)));
        let again = wait_for(&mut h, 99);
        assert!(matches!(again.served_by, ServiceLevel::DNucaRow(_)));
        let stats = h.stats();
        assert!(stats.dnuca.is_some());
        assert_eq!(stats.dnuca_banks, 32);
    }

    /// Drives ticks forward until the response for `id` appears.
    fn wait_for(h: &mut ClassicHierarchy, id: u64) -> MemResponse {
        for c in 0..2_000_000u64 {
            h.tick(Cycle(c));
            for r in h.completions(Cycle(c)) {
                if r.id == ReqId(id) {
                    return r;
                }
            }
        }
        panic!("request {id} never completed");
    }
}
