//! The levels below the L1 / L-NUCA: a chain of intermediate conventional
//! caches in front of a backing store (an L3-style cache, a D-NUCA, or
//! nothing but DRAM).
//!
//! Until the `HierarchySpec` redesign this was a closed three-variant enum
//! (`L2L3` / `L3Only` / `DNuca`); the composable form subsumes those three
//! shapes bit-identically — the paper's conventional hierarchy is one
//! intermediate (the L2, paying its bus transfers) in front of a cache
//! backing, the bare L3 is an empty chain in front of the same backing,
//! and the D-NUCA shapes are an empty chain in front of a D-NUCA — and
//! additionally admits deeper stacks and the bare-memory backing.

use crate::spec::{BackingSpec, HierarchySpec};
use lnuca_dnuca::{DNuca, DNucaOutcome};
use lnuca_mem::{AccessOutcome, ConventionalCache, MainMemory};
use lnuca_types::{Addr, ConfigError, Cycle, ServiceLevel};

/// One intermediate conventional cache level with its bus transfer costs.
#[derive(Debug)]
struct IntermediateLevel {
    cache: ConventionalCache,
    request_transfer: u64,
    response_transfer: u64,
}

/// The store behind the last intermediate level.
#[derive(Debug)]
pub enum Backing {
    /// An L3-style conventional cache.
    Cache(ConventionalCache),
    /// A D-NUCA.
    DNuca(DNuca),
    /// Nothing on chip: every miss of the levels above is a DRAM fetch of
    /// `block_size` bytes (the root's block — there is no outer cache to
    /// define a larger one).
    Memory {
        /// Fetch granularity in bytes.
        block_size: u64,
    },
}

/// The on-chip hierarchy below the first level.
///
/// `OuterLevel` resolves a miss coming from above by chaining accesses
/// level by level (respecting each level's port occupancy and the memory
/// channel), filling the traversed levels on the way back and reporting
/// where the data was found. Write-back traffic from dirty victims is
/// propagated downward.
#[derive(Debug)]
pub struct OuterLevel {
    /// Intermediate conventional caches, nearest first.
    levels: Vec<IntermediateLevel>,
    /// The backing store behind them.
    backing: Backing,
}

impl OuterLevel {
    /// Builds the outer levels described by `spec` (everything below the
    /// root cache and the fabric).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any component configuration is invalid.
    pub fn from_spec(spec: &HierarchySpec) -> Result<Self, ConfigError> {
        let levels = spec
            .intermediate
            .iter()
            .map(|level| {
                Ok(IntermediateLevel {
                    cache: ConventionalCache::new(level.cache.clone())?,
                    request_transfer: level.request_transfer_cycles,
                    response_transfer: level.response_transfer_cycles,
                })
            })
            .collect::<Result<Vec<_>, ConfigError>>()?;
        let backing = match &spec.backing {
            BackingSpec::Cache(cache) => Backing::Cache(ConventionalCache::new(cache.clone())?),
            BackingSpec::DNuca(dnuca) => Backing::DNuca(DNuca::new(dnuca.clone())?),
            BackingSpec::Memory => Backing::Memory {
                block_size: spec.root.block_size,
            },
        };
        Ok(OuterLevel { levels, backing })
    }

    /// Resolves a miss for the block containing `addr`, starting at `start`.
    ///
    /// Returns the cycle at which the block is available to the level above
    /// and the component that provided it. Each intermediate level charges
    /// its request transfer on the way down and (on a hit) its response
    /// transfer on the way back; levels traversed on a miss are filled, and
    /// their dirty victims are written back one level down. `is_write`
    /// reaches only the first level below (deeper levels see the fetch as a
    /// read, like the original chain did).
    pub fn fetch(
        &mut self,
        addr: Addr,
        is_write: bool,
        start: Cycle,
        memory: &mut MainMemory,
    ) -> (Cycle, ServiceLevel) {
        self.fetch_level(0, addr, is_write, start, memory)
    }

    fn fetch_level(
        &mut self,
        idx: usize,
        addr: Addr,
        is_write: bool,
        start: Cycle,
        memory: &mut MainMemory,
    ) -> (Cycle, ServiceLevel) {
        if idx == self.levels.len() {
            return match &mut self.backing {
                // The backing cache's latency already includes its wire
                // delay, and it is always accessed as a read (the fetch of
                // a block, not the demand write itself) — exactly like the
                // old `fetch_l3`.
                Backing::Cache(l3) => match l3.access(addr, false, start) {
                    AccessOutcome::Hit { ready_at } => (ready_at, ServiceLevel::L3),
                    AccessOutcome::Miss { determined_at } => {
                        let block = l3.config().block_size;
                        let ready = memory.access(determined_at, block);
                        // Fill the backing cache; its dirty victims go to
                        // memory (timing hidden by the write buffer, only
                        // energy sees the write).
                        let _ = l3.fill(addr, false);
                        (ready, ServiceLevel::Memory)
                    }
                },
                Backing::DNuca(dnuca) => match dnuca.access(addr, is_write, start) {
                    DNucaOutcome::Hit { ready_at, row } => (ready_at, ServiceLevel::DNucaRow(row)),
                    DNucaOutcome::Miss { determined_at } => {
                        let block = dnuca.config().block_size;
                        let ready = memory.access(determined_at, block);
                        // Dirty victims displaced by the fill go back to
                        // memory; the timing of that write is hidden by the
                        // write buffer.
                        let _ = dnuca.fill(addr, false, ready);
                        (ready, ServiceLevel::Memory)
                    }
                },
                Backing::Memory { block_size } => {
                    (memory.access(start, *block_size), ServiceLevel::Memory)
                }
            };
        }

        let outcome = {
            let level = &mut self.levels[idx];
            // The request pays this level's bus transfer to reach it.
            level.cache.access(addr, is_write, start + level.request_transfer)
        };
        match outcome {
            AccessOutcome::Hit { ready_at } => (
                ready_at + self.levels[idx].response_transfer,
                intermediate_service_level(idx),
            ),
            AccessOutcome::Miss { determined_at } => {
                let (ready, served) =
                    self.fetch_level(idx + 1, addr, false, determined_at, memory);
                // The block is installed at this level on its way up; dirty
                // victims are written back one level down.
                let victim = self.levels[idx].cache.fill(addr, false);
                if let Some(victim) = victim {
                    if victim.dirty {
                        self.writeback_below(idx + 1, victim.addr);
                    }
                }
                (ready, served)
            }
        }
    }

    /// Writes a dirty victim displaced from the level above `idx` into the
    /// first level at or below `idx`: marked dirty where resident, installed
    /// dirty into a cache level otherwise (that fill's own victim is
    /// absorbed by the write path, as the old L2→L3 rule did); D-NUCA and
    /// memory backings absorb absent blocks silently.
    fn writeback_below(&mut self, idx: usize, addr: Addr) {
        if idx < self.levels.len() {
            if !self.levels[idx].cache.mark_dirty(addr) {
                let _ = self.levels[idx].cache.fill(addr, true);
            }
            return;
        }
        match &mut self.backing {
            Backing::Cache(l3) => {
                if !l3.mark_dirty(addr) {
                    let _ = l3.fill(addr, true);
                }
            }
            Backing::DNuca(dnuca) => {
                let _ = dnuca.mark_dirty(addr);
            }
            Backing::Memory { .. } => {}
        }
    }

    /// Applies write(-through/-back) traffic arriving from the level above:
    /// the block is marked dirty where it resides (nearest level first); if
    /// it is nowhere on chip the write is absorbed by this level's write
    /// buffer and eventually reaches memory (only the energy accounting
    /// sees it).
    pub fn write_through(&mut self, addr: Addr) {
        for level in &mut self.levels {
            if level.cache.mark_dirty(addr) {
                return;
            }
        }
        match &mut self.backing {
            Backing::Cache(l3) => {
                let _ = l3.mark_dirty(addr);
            }
            Backing::DNuca(dnuca) => {
                let _ = dnuca.mark_dirty(addr);
            }
            Backing::Memory { .. } => {}
        }
    }

    /// The backing store (exposed for residency enumeration in
    /// verification).
    #[must_use]
    pub fn backing(&self) -> &Backing {
        &self.backing
    }

    /// The intermediate caches, nearest first (exposed for residency
    /// enumeration in verification).
    pub fn intermediate_caches(&self) -> impl Iterator<Item = &ConventionalCache> {
        self.levels.iter().map(|level| &level.cache)
    }

    /// Statistics of the first intermediate level (the L2 slot), if any.
    #[must_use]
    pub fn l2_stats(&self) -> Option<lnuca_mem::CacheStats> {
        self.levels.first().map(|level| *level.cache.stats())
    }

    /// Statistics of the intermediate levels beyond the first (deep stacks
    /// only; empty for every paper shape).
    #[must_use]
    pub fn deeper_stats(&self) -> Vec<lnuca_mem::CacheStats> {
        self.levels
            .iter()
            .skip(1)
            .map(|level| *level.cache.stats())
            .collect()
    }

    /// Statistics of the backing cache, if the backing is a cache.
    #[must_use]
    pub fn l3_stats(&self) -> Option<lnuca_mem::CacheStats> {
        match &self.backing {
            Backing::Cache(l3) => Some(*l3.stats()),
            _ => None,
        }
    }

    /// D-NUCA statistics, if the backing is a D-NUCA.
    #[must_use]
    pub fn dnuca_stats(&self) -> Option<lnuca_dnuca::DNucaStats> {
        match &self.backing {
            Backing::DNuca(dnuca) => Some(dnuca.stats().clone()),
            _ => None,
        }
    }

    /// D-NUCA mesh statistics, if the backing is a D-NUCA.
    #[must_use]
    pub fn dnuca_mesh_stats(&self) -> Option<lnuca_noc::mesh::MeshStats> {
        match &self.backing {
            Backing::DNuca(dnuca) => Some(*dnuca.mesh_stats()),
            _ => None,
        }
    }

    /// Number of D-NUCA banks (0 otherwise), for leakage accounting.
    #[must_use]
    pub fn dnuca_banks(&self) -> usize {
        match &self.backing {
            Backing::DNuca(dnuca) => dnuca.config().rows * dnuca.config().cols,
            _ => 0,
        }
    }
}

/// The attribution of a hit in intermediate level `idx`: the first
/// intermediate is the classical L2; deeper ones (spec-composed stacks
/// only) get their own variant.
fn intermediate_service_level(idx: usize) -> ServiceLevel {
    if idx == 0 {
        ServiceLevel::L2
    } else {
        ServiceLevel::Intermediate(u8::try_from(idx).unwrap_or(u8::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use crate::spec::{HierarchySpec, IntermediateSpec};
    use lnuca_dnuca::DNucaConfig;
    use lnuca_mem::{CacheConfig, MemoryConfig};

    fn memory() -> MainMemory {
        MainMemory::new(MemoryConfig::default()).unwrap()
    }

    fn l2l3() -> OuterLevel {
        OuterLevel::from_spec(
            &HierarchySpec::builder()
                .intermediate(IntermediateSpec::paper_l2())
                .backing_cache(configs::paper_l3())
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn l2l3_chain_escalates_until_it_finds_data() {
        let mut outer = l2l3();
        let mut mem = memory();
        let addr = Addr(0x10_0000);
        // Cold: comes from memory.
        let (t1, s1) = outer.fetch(addr, false, Cycle(0), &mut mem);
        assert_eq!(s1, ServiceLevel::Memory);
        assert!(t1.0 > 200, "must include the DRAM latency, got {t1}");
        // Second access: the L2 was filled on the way up.
        let (t2, s2) = outer.fetch(addr, false, Cycle(1_000), &mut mem);
        assert_eq!(s2, ServiceLevel::L2);
        assert_eq!(
            t2.since(Cycle(1_000)),
            4 + crate::configs::L2_REQUEST_TRANSFER_CYCLES
                + crate::configs::L2_RESPONSE_TRANSFER_CYCLES,
            "an L2 hit pays the interconnect transfers plus the 4-cycle completion"
        );
    }

    #[test]
    fn l3_only_serves_from_l3_after_a_fill() {
        let mut outer = OuterLevel::from_spec(
            &HierarchySpec::builder()
                .backing_cache(configs::paper_l3())
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut mem = memory();
        let addr = Addr(0xAB_0000);
        let (_, s1) = outer.fetch(addr, false, Cycle(0), &mut mem);
        assert_eq!(s1, ServiceLevel::Memory);
        let (t2, s2) = outer.fetch(addr, false, Cycle(5_000), &mut mem);
        assert_eq!(s2, ServiceLevel::L3);
        assert_eq!(t2.since(Cycle(5_000)), 20);
    }

    #[test]
    fn dnuca_outer_reports_row_attribution() {
        let mut outer = OuterLevel::from_spec(
            &HierarchySpec::builder()
                .backing_dnuca(DNucaConfig::paper())
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut mem = memory();
        let addr = Addr(0x77_0000);
        let (_, s1) = outer.fetch(addr, false, Cycle(0), &mut mem);
        assert_eq!(s1, ServiceLevel::Memory);
        let (_, s2) = outer.fetch(addr, false, Cycle(10_000), &mut mem);
        match s2 {
            ServiceLevel::DNucaRow(row) => assert_eq!(row, 3, "fills land in the farthest row"),
            other => panic!("expected a D-NUCA hit, got {other}"),
        }
        assert_eq!(outer.dnuca_banks(), 32);
    }

    #[test]
    fn write_through_marks_resident_blocks_dirty() {
        let mut outer = l2l3();
        let mut mem = memory();
        let addr = Addr(0x20_0000);
        outer.fetch(addr, false, Cycle(0), &mut mem);
        outer.write_through(addr);
        let l2 = outer.intermediate_caches().next().expect("one intermediate");
        assert!(l2.probe(addr));
    }

    #[test]
    fn memory_backing_always_fetches_from_dram() {
        let mut outer = OuterLevel::from_spec(&HierarchySpec::builder().build().unwrap()).unwrap();
        let mut mem = memory();
        let addr = Addr(0x5000);
        for round in 0..3u64 {
            let (t, s) = outer.fetch(addr, false, Cycle(round * 10_000), &mut mem);
            assert_eq!(s, ServiceLevel::Memory, "nothing on chip can cache the block");
            assert!(t.since(Cycle(round * 10_000)) > 200);
        }
        assert_eq!(mem.accesses(), 3);
        // Write drains vanish into DRAM (energy-only); no panic, no state.
        outer.write_through(addr);
        assert!(outer.l2_stats().is_none() && outer.l3_stats().is_none());
    }

    #[test]
    fn deep_stacks_chain_through_every_intermediate() {
        let l2b = CacheConfig::builder("L2B")
            .size_bytes(1024 * 1024)
            .ways(8)
            .block_size(64)
            .completion_cycles(8)
            .initiation_interval(4)
            .build()
            .unwrap();
        let mut outer = OuterLevel::from_spec(
            &HierarchySpec::builder()
                .intermediate(IntermediateSpec::paper_l2())
                .intermediate(IntermediateSpec::new(l2b).with_transfers(3, 3))
                .backing_cache(configs::paper_l3())
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut mem = memory();
        let addr = Addr(0x42_0000);
        let (_, s1) = outer.fetch(addr, false, Cycle(0), &mut mem);
        assert_eq!(s1, ServiceLevel::Memory);
        // Both intermediates were filled on the way up; the nearest one
        // answers first.
        let (_, s2) = outer.fetch(addr, false, Cycle(10_000), &mut mem);
        assert_eq!(s2, ServiceLevel::L2);
        // Evict the block from the 8-way L2 with nine conflicting blocks
        // (32 KB apart: same L2 set, mostly distinct L2B sets, so the
        // deeper 1 MB intermediate still holds it).
        let mut clock = 20_000;
        for i in 1..=9u64 {
            let conflict = Addr(0x42_0000 + i * 32 * 1024);
            outer.fetch(conflict, false, Cycle(clock), &mut mem);
            clock += 2_000;
        }
        let (_, s3) = outer.fetch(addr, false, Cycle(clock), &mut mem);
        assert_eq!(
            s3,
            ServiceLevel::Intermediate(1),
            "the deeper intermediate answers once the L2 evicted the block"
        );
        assert_eq!(outer.deeper_stats().len(), 1);
        assert!(outer.deeper_stats()[0].read_hits >= 1);
    }
}
