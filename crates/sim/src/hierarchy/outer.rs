//! The levels below the L1 / L-NUCA: either a conventional L2 + L3, a bare
//! L3, or a D-NUCA.

use lnuca_dnuca::{DNuca, DNucaOutcome};
use lnuca_mem::{AccessOutcome, ConventionalCache, MainMemory};
use lnuca_types::{Addr, Cycle, ServiceLevel};

/// The on-chip hierarchy below the first level.
///
/// `OuterLevel` resolves a miss coming from above by chaining accesses
/// level by level (respecting each level's port occupancy and the memory
/// channel), filling the traversed levels on the way back and reporting
/// where the data was found. Write-back traffic from dirty victims is
/// propagated downward.
#[derive(Debug)]
pub enum OuterLevel {
    /// A conventional L2 backed by an L3 (Fig. 1(a)).
    L2L3 {
        /// Second-level cache.
        l2: ConventionalCache,
        /// Third-level cache.
        l3: ConventionalCache,
    },
    /// A bare L3 (the level behind an L-NUCA in Fig. 1(b)).
    L3Only {
        /// Third-level cache.
        l3: ConventionalCache,
    },
    /// An 8 MB D-NUCA (Figs. 1(c) and 1(d)).
    DNuca {
        /// The D-NUCA cache.
        dnuca: DNuca,
    },
}

impl OuterLevel {
    /// Resolves a miss for the block containing `addr`, starting at `start`.
    ///
    /// Returns the cycle at which the block is available to the level above
    /// and the component that provided it. Levels traversed on a miss are
    /// filled; dirty victims are written back to the next level (or counted
    /// as memory writes).
    pub fn fetch(
        &mut self,
        addr: Addr,
        is_write: bool,
        start: Cycle,
        memory: &mut MainMemory,
    ) -> (Cycle, ServiceLevel) {
        match self {
            OuterLevel::L2L3 { l2, l3 } => {
                // The L2 macro sits across the inter-cache interconnect: the
                // request pays a transfer delay to reach it and the 64-byte
                // block pays another to come back (see
                // `configs::L2_REQUEST_TRANSFER_CYCLES`).
                let request_at = start + crate::configs::L2_REQUEST_TRANSFER_CYCLES;
                match l2.access(addr, is_write, request_at) {
                    AccessOutcome::Hit { ready_at } => (
                        ready_at + crate::configs::L2_RESPONSE_TRANSFER_CYCLES,
                        ServiceLevel::L2,
                    ),
                    AccessOutcome::Miss { determined_at } => {
                        let (ready, served) = fetch_l3(l3, addr, determined_at, memory);
                        // The block is installed in the L2 on its way up.
                        if let Some(victim) = l2.fill(addr, false) {
                            if victim.dirty && !l3.mark_dirty(victim.addr) {
                                l3.fill(victim.addr, true);
                            }
                        }
                        (ready, served)
                    }
                }
            }
            OuterLevel::L3Only { l3 } => fetch_l3(l3, addr, start, memory),
            OuterLevel::DNuca { dnuca } => match dnuca.access(addr, is_write, start) {
                DNucaOutcome::Hit { ready_at, row } => (ready_at, ServiceLevel::DNucaRow(row)),
                DNucaOutcome::Miss { determined_at } => {
                    let block = dnuca.config().block_size;
                    let ready = memory.access(determined_at, block);
                    // Dirty victims displaced by the fill go back to memory;
                    // the timing of that write is hidden by the write buffer.
                    let _ = dnuca.fill(addr, false, ready);
                    (ready, ServiceLevel::Memory)
                }
            },
        }
    }

    /// Applies write(-through/-back) traffic arriving from the level above:
    /// the block is marked dirty where it resides; if it is nowhere on chip
    /// the write is absorbed by this level's write buffer and eventually
    /// reaches memory (only the energy accounting sees it).
    pub fn write_through(&mut self, addr: Addr) {
        match self {
            OuterLevel::L2L3 { l2, l3 } => {
                if !l2.mark_dirty(addr) {
                    let _ = l3.mark_dirty(addr);
                }
            }
            OuterLevel::L3Only { l3 } => {
                let _ = l3.mark_dirty(addr);
            }
            OuterLevel::DNuca { dnuca } => {
                let _ = dnuca.mark_dirty(addr);
            }
        }
    }

    /// L2 statistics, if this outer level has an L2.
    #[must_use]
    pub fn l2_stats(&self) -> Option<lnuca_mem::CacheStats> {
        match self {
            OuterLevel::L2L3 { l2, .. } => Some(*l2.stats()),
            _ => None,
        }
    }

    /// L3 statistics, if this outer level has an L3.
    #[must_use]
    pub fn l3_stats(&self) -> Option<lnuca_mem::CacheStats> {
        match self {
            OuterLevel::L2L3 { l3, .. } | OuterLevel::L3Only { l3 } => Some(*l3.stats()),
            OuterLevel::DNuca { .. } => None,
        }
    }

    /// D-NUCA statistics, if this outer level is a D-NUCA.
    #[must_use]
    pub fn dnuca_stats(&self) -> Option<lnuca_dnuca::DNucaStats> {
        match self {
            OuterLevel::DNuca { dnuca } => Some(dnuca.stats().clone()),
            _ => None,
        }
    }

    /// D-NUCA mesh statistics, if this outer level is a D-NUCA.
    #[must_use]
    pub fn dnuca_mesh_stats(&self) -> Option<lnuca_noc::mesh::MeshStats> {
        match self {
            OuterLevel::DNuca { dnuca } => Some(*dnuca.mesh_stats()),
            _ => None,
        }
    }

    /// Number of D-NUCA banks (0 otherwise), for leakage accounting.
    #[must_use]
    pub fn dnuca_banks(&self) -> usize {
        match self {
            OuterLevel::DNuca { dnuca } => dnuca.config().rows * dnuca.config().cols,
            _ => 0,
        }
    }
}

fn fetch_l3(
    l3: &mut ConventionalCache,
    addr: Addr,
    start: Cycle,
    memory: &mut MainMemory,
) -> (Cycle, ServiceLevel) {
    match l3.access(addr, false, start) {
        AccessOutcome::Hit { ready_at } => (ready_at, ServiceLevel::L3),
        AccessOutcome::Miss { determined_at } => {
            let block = l3.config().block_size;
            let ready = memory.access(determined_at, block);
            // Fill the L3; its dirty victims go to memory (timing hidden by
            // the write buffer, only energy sees the write).
            let _ = l3.fill(addr, false);
            (ready, ServiceLevel::Memory)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use lnuca_dnuca::DNucaConfig;
    use lnuca_mem::MemoryConfig;

    fn memory() -> MainMemory {
        MainMemory::new(MemoryConfig::default()).unwrap()
    }

    #[test]
    fn l2l3_chain_escalates_until_it_finds_data() {
        let mut outer = OuterLevel::L2L3 {
            l2: ConventionalCache::new(configs::paper_l2()).unwrap(),
            l3: ConventionalCache::new(configs::paper_l3()).unwrap(),
        };
        let mut mem = memory();
        let addr = Addr(0x10_0000);
        // Cold: comes from memory.
        let (t1, s1) = outer.fetch(addr, false, Cycle(0), &mut mem);
        assert_eq!(s1, ServiceLevel::Memory);
        assert!(t1.0 > 200, "must include the DRAM latency, got {t1}");
        // Second access: the L2 was filled on the way up.
        let (t2, s2) = outer.fetch(addr, false, Cycle(1_000), &mut mem);
        assert_eq!(s2, ServiceLevel::L2);
        assert_eq!(
            t2.since(Cycle(1_000)),
            4 + crate::configs::L2_REQUEST_TRANSFER_CYCLES
                + crate::configs::L2_RESPONSE_TRANSFER_CYCLES,
            "an L2 hit pays the interconnect transfers plus the 4-cycle completion"
        );
    }

    #[test]
    fn l3_only_serves_from_l3_after_a_fill() {
        let mut outer = OuterLevel::L3Only {
            l3: ConventionalCache::new(configs::paper_l3()).unwrap(),
        };
        let mut mem = memory();
        let addr = Addr(0xAB_0000);
        let (_, s1) = outer.fetch(addr, false, Cycle(0), &mut mem);
        assert_eq!(s1, ServiceLevel::Memory);
        let (t2, s2) = outer.fetch(addr, false, Cycle(5_000), &mut mem);
        assert_eq!(s2, ServiceLevel::L3);
        assert_eq!(t2.since(Cycle(5_000)), 20);
    }

    #[test]
    fn dnuca_outer_reports_row_attribution() {
        let mut outer = OuterLevel::DNuca {
            dnuca: DNuca::new(DNucaConfig::paper()).unwrap(),
        };
        let mut mem = memory();
        let addr = Addr(0x77_0000);
        let (_, s1) = outer.fetch(addr, false, Cycle(0), &mut mem);
        assert_eq!(s1, ServiceLevel::Memory);
        let (_, s2) = outer.fetch(addr, false, Cycle(10_000), &mut mem);
        match s2 {
            ServiceLevel::DNucaRow(row) => assert_eq!(row, 3, "fills land in the farthest row"),
            other => panic!("expected a D-NUCA hit, got {other}"),
        }
        assert_eq!(outer.dnuca_banks(), 32);
    }

    #[test]
    fn write_through_marks_resident_blocks_dirty() {
        let mut outer = OuterLevel::L2L3 {
            l2: ConventionalCache::new(configs::paper_l2()).unwrap(),
            l3: ConventionalCache::new(configs::paper_l3()).unwrap(),
        };
        let mut mem = memory();
        let addr = Addr(0x20_0000);
        outer.fetch(addr, false, Cycle(0), &mut mem);
        outer.write_through(addr);
        let l2 = match &outer {
            OuterLevel::L2L3 { l2, .. } => l2,
            _ => unreachable!(),
        };
        assert!(l2.probe(addr));
    }
}
