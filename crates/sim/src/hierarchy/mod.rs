//! Memory hierarchies: the four organisations of Fig. 1, all implementing
//! [`lnuca_cpu::DataMemory`] so the same core model drives every experiment.

mod classic;
mod lnuca;
mod outer;

pub use classic::ClassicHierarchy;
pub use lnuca::LNucaHierarchy;
pub use outer::{Backing, OuterLevel};

use lnuca_cpu::DataMemory;
use lnuca_mem::{NoProbe, ProbeSink};
use lnuca_types::{Cycle, MemRequest, MemResponse};
use serde::{Deserialize, Serialize};

/// A snapshot of every counter a hierarchy accumulated during a run, in the
/// shape the experiment and energy code consume.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Configuration label (e.g. `LN3-144KB`).
    pub label: String,
    /// L1 / root-tile counters.
    pub l1: lnuca_mem::CacheStats,
    /// L2 counters, if the hierarchy has a conventional L2 (the first
    /// intermediate level of the spec).
    pub l2: Option<lnuca_mem::CacheStats>,
    /// Counters of the intermediate conventional levels beyond the first,
    /// nearest first. Empty for every paper shape; populated only by deep
    /// stacks composed through `crate::spec::HierarchySpec`.
    pub deeper_levels: Vec<lnuca_mem::CacheStats>,
    /// L3 counters, if the hierarchy has an L3 (a cache backing).
    pub l3: Option<lnuca_mem::CacheStats>,
    /// L-NUCA fabric counters, if the hierarchy has a fabric.
    pub lnuca: Option<lnuca_core::LNucaStats>,
    /// Number of L-NUCA tiles (for leakage accounting).
    pub lnuca_tiles: usize,
    /// D-NUCA counters, if the hierarchy has a D-NUCA.
    pub dnuca: Option<lnuca_dnuca::DNucaStats>,
    /// D-NUCA mesh counters, if the hierarchy has a D-NUCA.
    pub dnuca_mesh: Option<lnuca_noc::mesh::MeshStats>,
    /// Number of D-NUCA banks (for leakage accounting).
    pub dnuca_banks: usize,
    /// Main-memory block fetches.
    pub memory_accesses: u64,
    /// Write-through / write-back traffic drained to the level below the
    /// L1 (after coalescing in the write buffer).
    pub write_drains: u64,
}

impl HierarchyStats {
    /// Read hits serviced by the second level of this hierarchy — the L2 for
    /// the conventional baseline, the whole L-NUCA fabric otherwise. This is
    /// the denominator/numerator pair used by Table III.
    #[must_use]
    pub fn second_level_read_hits(&self) -> u64 {
        if let Some(l2) = &self.l2 {
            l2.read_hits
        } else if let Some(lnuca) = &self.lnuca {
            lnuca.read_hits()
        } else if let Some(dnuca) = &self.dnuca {
            dnuca.hits()
        } else {
            0
        }
    }
}

/// Any of the four hierarchies, behind one type so [`crate::system::System`]
/// can drive them uniformly. Generic over the [`ProbeSink`] the wrapped
/// hierarchy reports functional transitions through ([`NoProbe`] — nothing —
/// by default).
#[derive(Debug)]
pub enum AnyHierarchy<P: ProbeSink = NoProbe> {
    /// Conventional 3-level or L1 + D-NUCA.
    Classic(ClassicHierarchy<P>),
    /// L-NUCA + (L3 or D-NUCA).
    LNuca(LNucaHierarchy<P>),
    /// The memory side of a multicore run (private domains + shared
    /// backing + MSI directory, DESIGN.md §17). Driven per core through
    /// `crate::cmp::CoreView`s; its own [`DataMemory::issue`] rejects.
    Cmp(crate::cmp::CmpMemory<P>),
}

impl<P: ProbeSink> AnyHierarchy<P> {
    /// Snapshot of the accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        match self {
            AnyHierarchy::Classic(h) => h.stats(),
            AnyHierarchy::LNuca(h) => h.stats(),
            AnyHierarchy::Cmp(h) => h.stats(),
        }
    }

    /// The probe sink (for reading back recorded events).
    #[must_use]
    pub fn probe(&self) -> &P {
        match self {
            AnyHierarchy::Classic(h) => h.probe(),
            AnyHierarchy::LNuca(h) => h.probe(),
            AnyHierarchy::Cmp(h) => h.probe(),
        }
    }

    /// Consumes the hierarchy, returning the probe sink.
    #[must_use]
    pub fn into_probe(self) -> P {
        match self {
            AnyHierarchy::Classic(h) => h.into_probe(),
            AnyHierarchy::LNuca(h) => h.into_probe(),
            AnyHierarchy::Cmp(h) => h.into_probe(),
        }
    }
}

impl<P: ProbeSink> DataMemory for AnyHierarchy<P> {
    fn issue(&mut self, req: MemRequest, now: Cycle) -> bool {
        match self {
            AnyHierarchy::Classic(h) => h.issue(req, now),
            AnyHierarchy::LNuca(h) => h.issue(req, now),
            AnyHierarchy::Cmp(h) => h.issue(req, now),
        }
    }

    fn drain_completions(&mut self, now: Cycle, out: &mut Vec<MemResponse>) {
        match self {
            AnyHierarchy::Classic(h) => h.drain_completions(now, out),
            AnyHierarchy::LNuca(h) => h.drain_completions(now, out),
            AnyHierarchy::Cmp(h) => h.drain_completions(now, out),
        }
    }

    fn tick(&mut self, now: Cycle) {
        match self {
            AnyHierarchy::Classic(h) => h.tick(now),
            AnyHierarchy::LNuca(h) => h.tick(now),
            AnyHierarchy::Cmp(h) => h.tick(now),
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        match self {
            AnyHierarchy::Classic(h) => h.next_event(now),
            AnyHierarchy::LNuca(h) => h.next_event(now),
            AnyHierarchy::Cmp(h) => h.next_event(now),
        }
    }
}
