//! Turns run statistics into the energy accounts of Figs. 4(b) and 5(b).

use crate::hierarchy::HierarchyStats;
use lnuca_energy::{CacheEnergyParams, EnergyAccount, NetworkEnergyParams};

/// Component name used for dynamic energy (all structures pooled, as in the
/// single "dyn." bar segment of the paper's figures).
pub const DYNAMIC: &str = "dyn.";
/// Component name for the static energy of the L1 / root tile.
pub const STATIC_L1: &str = "sta. L1-RT";
/// Component name for the static energy of the second level (the L2 for the
/// conventional baseline, the rest of the tiles for L-NUCA configurations).
pub const STATIC_SECOND: &str = "sta. L2/RESTT";
/// Component name for the static energy of the last on-chip level (L3 or
/// D-NUCA).
pub const STATIC_LAST: &str = "sta. L3/D-NUCA";

/// Builds the energy ledger for a run that lasted `cycles` cycles and
/// accumulated `stats`.
///
/// Dynamic energy charges every array access (lookups, fills, drained
/// writes) and every network event (L-NUCA link traversals, D-NUCA flit
/// hops) with the Table I / Orion-style per-event costs; static energy
/// charges each component's leakage power over the whole execution time.
/// Off-chip DRAM energy is outside the paper's scope and is not accounted.
#[must_use]
pub fn account_for(stats: &HierarchyStats, cycles: u64) -> EnergyAccount {
    let l1 = CacheEnergyParams::paper_l1();
    let l2 = CacheEnergyParams::paper_l2();
    let l3 = CacheEnergyParams::paper_l3();
    let tile = CacheEnergyParams::paper_lnuca_tile();
    let bank = CacheEnergyParams::paper_dnuca_bank();
    let net = NetworkEnergyParams::paper();

    let mut account = EnergyAccount::new();

    // --- dynamic -------------------------------------------------------
    let l1_events = stats.l1.accesses + stats.l1.fills;
    account.add_dynamic(DYNAMIC, l1_events as f64 * l1.read_pj);

    if let Some(l2_stats) = &stats.l2 {
        let events = l2_stats.accesses + l2_stats.fills + stats.write_drains;
        account.add_dynamic(DYNAMIC, events as f64 * l2.read_pj);
    }
    // Deep stacks (HierarchySpec-composed): every additional intermediate
    // level is charged with the L2's per-event cost and leakage — the area
    // model has no per-size table for arbitrary middles, and the L2 macro
    // is the closest calibrated point.
    for deeper in &stats.deeper_levels {
        let events = deeper.accesses + deeper.fills;
        account.add_dynamic(DYNAMIC, events as f64 * l2.read_pj);
    }
    if let Some(l3_stats) = &stats.l3 {
        let mut events = l3_stats.accesses + l3_stats.fills;
        if stats.l2.is_none() {
            // Without an L2, the write-through traffic drains into the L3.
            events += stats.write_drains;
        }
        account.add_dynamic(DYNAMIC, events as f64 * l3.read_pj);
    }
    if let Some(fabric) = &stats.lnuca {
        let tile_events = fabric.tile_lookups + fabric.tile_fills;
        account.add_dynamic(DYNAMIC, tile_events as f64 * tile.read_pj);
        let link_events = fabric.search_link_traversals
            + fabric.transport_link_traversals
            + fabric.replacement_link_traversals;
        account.add_dynamic(DYNAMIC, link_events as f64 * net.lnuca_link_pj);
    }
    if let Some(dnuca) = &stats.dnuca {
        let mut events = dnuca.bank_lookups + dnuca.bank_fills;
        if stats.l2.is_none() && stats.l3.is_none() {
            events += stats.write_drains;
        }
        account.add_dynamic(DYNAMIC, events as f64 * bank.read_pj);
    }
    if let Some(mesh) = &stats.dnuca_mesh {
        account.add_dynamic(DYNAMIC, mesh.flit_hops as f64 * net.dnuca_flit_hop_pj);
    }

    // --- static ---------------------------------------------------------
    account.add_static(STATIC_L1, l1.static_energy_pj(cycles));

    if stats.l2.is_some() {
        account.add_static(STATIC_SECOND, l2.static_energy_pj(cycles));
    }
    for _ in &stats.deeper_levels {
        account.add_static(STATIC_SECOND, l2.static_energy_pj(cycles));
    }
    if stats.lnuca.is_some() {
        let tiles = stats.lnuca_tiles as f64;
        let tile_leak = tile.static_energy_pj(cycles) * tiles;
        let network_leak = CacheEnergyParams {
            read_pj: 0.0,
            write_pj: 0.0,
            leakage_mw: net.lnuca_network_leakage_mw_per_tile * tiles,
        }
        .static_energy_pj(cycles);
        account.add_static(STATIC_SECOND, tile_leak + network_leak);
    }
    if stats.l3.is_some() {
        account.add_static(STATIC_LAST, l3.static_energy_pj(cycles));
    }
    if stats.dnuca.is_some() {
        let banks = stats.dnuca_banks as f64;
        let bank_leak = bank.static_energy_pj(cycles) * banks;
        let router_leak = CacheEnergyParams {
            read_pj: 0.0,
            write_pj: 0.0,
            leakage_mw: net.dnuca_router_leakage_mw * banks,
        }
        .static_energy_pj(cycles);
        account.add_static(STATIC_LAST, bank_leak + router_leak);
    }

    account
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnuca_mem::CacheStats;

    fn base_stats() -> HierarchyStats {
        HierarchyStats {
            label: "test".to_owned(),
            l1: CacheStats {
                accesses: 1_000,
                read_hits: 900,
                read_misses: 100,
                ..CacheStats::default()
            },
            ..HierarchyStats::default()
        }
    }

    #[test]
    fn conventional_static_l3_dominates() {
        let mut stats = base_stats();
        stats.l2 = Some(CacheStats { accesses: 100, ..CacheStats::default() });
        stats.l3 = Some(CacheStats { accesses: 10, ..CacheStats::default() });
        let account = account_for(&stats, 1_000_000);
        assert!(account.static_pj(STATIC_LAST) > account.static_pj(STATIC_SECOND));
        assert!(account.static_pj(STATIC_LAST) > account.static_pj(STATIC_L1));
        assert!(account.static_pj(STATIC_LAST) > account.total_dynamic_pj());
    }

    #[test]
    fn lnuca_tiles_leak_less_than_the_l2_they_replace() {
        let cycles = 2_000_000;
        let mut conventional = base_stats();
        conventional.l2 = Some(CacheStats::default());
        conventional.l3 = Some(CacheStats::default());
        let conv = account_for(&conventional, cycles);

        let mut lnuca = base_stats();
        lnuca.lnuca = Some(lnuca_core::LNucaStats::new(3));
        lnuca.lnuca_tiles = 14;
        lnuca.l3 = Some(CacheStats::default());
        let ln = account_for(&lnuca, cycles);

        // 14 tiles at 2.2 mW plus their network leak less than a 66.9 mW L2.
        assert!(ln.static_pj(STATIC_SECOND) < conv.static_pj(STATIC_SECOND));
    }

    #[test]
    fn shorter_runs_consume_less_static_energy() {
        let mut stats = base_stats();
        stats.l3 = Some(CacheStats::default());
        let short = account_for(&stats, 1_000_000);
        let long = account_for(&stats, 1_200_000);
        assert!(long.total_static_pj() > short.total_static_pj());
        assert!((long.static_pj(STATIC_LAST) / short.static_pj(STATIC_LAST) - 1.2).abs() < 1e-9);
    }

    #[test]
    fn dnuca_dynamic_energy_counts_banks_and_flits() {
        let mut stats = base_stats();
        stats.dnuca = Some(lnuca_dnuca::DNucaStats {
            bank_lookups: 1_000,
            ..lnuca_dnuca::DNucaStats::default()
        });
        stats.dnuca_banks = 32;
        stats.dnuca_mesh = Some(lnuca_noc::mesh::MeshStats {
            flit_hops: 5_000,
            ..lnuca_noc::mesh::MeshStats::default()
        });
        let account = account_for(&stats, 1_000);
        // 1000 bank lookups at 131.2 pJ plus 5000 flit-hops at 4.8 pJ plus the L1.
        let expected_dyn = 1_000.0 * 131.2 + 5_000.0 * 4.8 + 1_000.0 * 21.2;
        assert!((account.total_dynamic_pj() - expected_dyn).abs() < 1e-6);
        assert!(account.static_pj(STATIC_LAST) > 0.0);
    }
}
