//! The declarative hierarchy description: what used to be the closed
//! four-variant [`HierarchyKind`] enum, opened up into a composable spec.
//!
//! A [`HierarchySpec`] is a root cache, an optional L-NUCA fabric behind
//! it, any number of intermediate conventional cache levels, and a backing
//! store (an L3-style cache, a D-NUCA, or nothing but DRAM). Every one of
//! the paper's four organisations (Fig. 1) is one point in this space —
//! [`HierarchyKind::to_spec`] produces it, bit-identically — and shapes the
//! enum could never express compose freely: a fabric in front of nothing
//! (`LN3 + mem`), deeper conventional stacks (`L1 + L2 + L2B + L3`), a
//! fabric with an intermediate cache, non-paper tile sizes from the
//! ablation bins, and so on.
//!
//! Specs are validated at build time ([`HierarchySpecBuilder::build`]),
//! labelled deterministically ([`HierarchySpec::label`]), and round-trip
//! through the scenario JSON layer (`crate::scenario`). The differential
//! oracle in `lnuca-verify` accepts specs directly, so DESIGN.md §11 keeps
//! holding beyond the paper's four kinds.

use crate::configs::{self, HierarchyKind};
use lnuca_core::LNucaConfig;
use lnuca_dnuca::DNucaConfig;
use lnuca_mem::{CacheConfig, MemoryConfig};
use lnuca_types::ConfigError;
use serde::{Deserialize, Serialize};

/// One intermediate conventional cache level between the root (or fabric)
/// and the backing store, with the bus transfer cycles a request pays to
/// reach it and a hit pays to come back.
///
/// The paper's conventional L2 is `IntermediateSpec::paper_l2()`: the
/// 256 KB macro at the far end of the inter-cache interconnect
/// ([`configs::L2_REQUEST_TRANSFER_CYCLES`] /
/// [`configs::L2_RESPONSE_TRANSFER_CYCLES`]).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntermediateSpec {
    /// The cache at this level.
    pub cache: CacheConfig,
    /// Cycles for a miss request to travel from the level above to this
    /// cache.
    pub request_transfer_cycles: u64,
    /// Cycles for a hit block to travel back to the level above.
    pub response_transfer_cycles: u64,
}

impl IntermediateSpec {
    /// An intermediate level with no bus transfer cost (the cache's own
    /// latencies already include its wires).
    #[must_use]
    pub fn new(cache: CacheConfig) -> Self {
        IntermediateSpec {
            cache,
            request_transfer_cycles: 0,
            response_transfer_cycles: 0,
        }
    }

    /// Sets the request/response bus transfer cycles.
    #[must_use]
    pub fn with_transfers(mut self, request: u64, response: u64) -> Self {
        self.request_transfer_cycles = request;
        self.response_transfer_cycles = response;
        self
    }

    /// The paper's L2 as an intermediate level: the Table I 256 KB cache
    /// plus the 2 + 2 cycle inter-cache bus transfers of the conventional
    /// hierarchy.
    #[must_use]
    pub fn paper_l2() -> Self {
        IntermediateSpec::new(configs::paper_l2()).with_transfers(
            configs::L2_REQUEST_TRANSFER_CYCLES,
            configs::L2_RESPONSE_TRANSFER_CYCLES,
        )
    }
}

/// What sits behind the last intermediate level (or directly behind the
/// root/fabric when there are no intermediates).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BackingSpec {
    /// An L3-style conventional cache whose latencies already include its
    /// wire delay (no extra transfer cycles are charged).
    Cache(CacheConfig),
    /// A D-NUCA.
    DNuca(DNucaConfig),
    /// Nothing on chip: misses go straight to main memory.
    Memory,
}

impl BackingSpec {
    /// Short name of the backing kind, for labels and error messages.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            BackingSpec::Cache(_) => "cache",
            BackingSpec::DNuca(_) => "dnuca",
            BackingSpec::Memory => "memory",
        }
    }
}

/// A complete, composable description of a memory hierarchy.
///
/// Construct one with [`HierarchySpec::builder`], convert a paper
/// configuration with [`HierarchyKind::to_spec`], or load one from a
/// scenario file (`crate::scenario`). The struct is `#[non_exhaustive]`;
/// fields remain readable (and mutable on an owned value) but literals are
/// reserved so future components can be added compatibly.
///
/// # Example
///
/// ```
/// use lnuca_sim::spec::{BackingSpec, HierarchySpec};
///
/// // A 3-level L-NUCA with nothing behind it but DRAM — a shape the old
/// // `HierarchyKind` enum could not express.
/// let spec = HierarchySpec::builder()
///     .fabric(lnuca_core::LNucaConfig::paper(3)?)
///     .backing(BackingSpec::Memory)
///     .build()?;
/// assert_eq!(spec.label(), "LN3-144KB + mem");
/// # Ok::<(), lnuca_types::ConfigError>(())
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchySpec {
    /// Label override; `None` derives one from the composition
    /// ([`HierarchySpec::label`]).
    pub label: Option<String>,
    /// The first-level cache (the L-NUCA root tile when `fabric` is set).
    pub root: CacheConfig,
    /// The L-NUCA fabric behind the root tile, if any.
    pub fabric: Option<LNucaConfig>,
    /// Intermediate conventional cache levels, nearest first.
    pub intermediate: Vec<IntermediateSpec>,
    /// The backing store behind everything else on chip.
    pub backing: BackingSpec,
    /// Main memory timing.
    pub memory: MemoryConfig,
    /// Number of root tiles (cores). `1` is the classic single-core
    /// hierarchy; `> 1` replicates the private side — the root cache plus
    /// the optional fabric — once per core over the **shared** backing,
    /// with an MSI directory (`lnuca-coherence`) keeping the private
    /// copies coherent (DESIGN.md §17). Intermediate levels are not
    /// supported in CMP shapes yet.
    pub cores: usize,
}

impl HierarchySpec {
    /// Starts building a spec: paper L1 root, no fabric, no intermediates,
    /// memory backing, paper memory timing.
    #[must_use]
    pub fn builder() -> HierarchySpecBuilder {
        HierarchySpecBuilder {
            spec: HierarchySpec {
                label: None,
                root: configs::paper_l1(),
                fabric: None,
                intermediate: Vec::new(),
                backing: BackingSpec::Memory,
                memory: configs::paper_memory(),
                cores: 1,
            },
        }
    }

    /// Validates the composition.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any component configuration is invalid
    /// or the components disagree (e.g. fabric and root block sizes differ —
    /// blocks migrate between the root tile and the tiles, so they must
    /// match).
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.root.geometry()?;
        if let Some(fabric) = &self.fabric {
            fabric.validate()?;
            if fabric.block_size != self.root.block_size {
                return Err(ConfigError::new(
                    "fabric.block_size",
                    format!(
                        "must equal the root block size ({} B) so blocks can migrate \
                         between the root tile and the fabric, got {} B",
                        self.root.block_size, fabric.block_size
                    ),
                ));
            }
        }
        for (i, level) in self.intermediate.iter().enumerate() {
            level
                .cache
                .geometry()
                .map_err(|e| ConfigError::new(format!("intermediate[{i}]"), e.to_string()))?;
        }
        match &self.backing {
            BackingSpec::Cache(cache) => {
                cache.geometry()?;
            }
            BackingSpec::DNuca(dnuca) => dnuca.validate()?,
            BackingSpec::Memory => {}
        }
        if self.cores == 0 || self.cores > lnuca_coherence::MAX_CORES {
            return Err(ConfigError::new(
                "cores",
                format!(
                    "must be 1..={} (directory sharer sets are 64-bit masks), got {}",
                    lnuca_coherence::MAX_CORES,
                    self.cores
                ),
            ));
        }
        if self.cores > 1 && !self.intermediate.is_empty() {
            return Err(ConfigError::new(
                "cores",
                "CMP shapes do not support intermediate levels yet (the private \
                 side is root + optional fabric; the next level is the shared backing)",
            ));
        }
        Ok(())
    }

    /// The configuration label: the override if one was set, otherwise a
    /// deterministic name derived from the composition. The four paper
    /// shapes derive exactly the labels of the figures (`L2-256KB`,
    /// `LN3-144KB`, `DN-4x8`, `LN2 + DN-4x8`); every other shape joins its
    /// component names with ` + ` (e.g. `LN3-144KB + mem`).
    #[must_use]
    pub fn label(&self) -> String {
        if let Some(label) = &self.label {
            return label.clone();
        }
        let base = self.composition_label();
        if self.cores > 1 {
            format!("{}x {}", self.cores, base)
        } else {
            base
        }
    }

    /// The single-core composition name (the `label()` body before the
    /// CMP `{cores}x ` prefix is applied).
    fn composition_label(&self) -> String {
        match (&self.fabric, self.intermediate.as_slice(), &self.backing) {
            // The four paper shapes keep their figure names.
            (None, [l2], BackingSpec::Cache(_)) => {
                format!("L2-{}KB", l2.cache.size_bytes / 1024)
            }
            (Some(fabric), [], BackingSpec::Cache(_)) => self.fabric_label(fabric),
            (None, [], BackingSpec::DNuca(d)) => format!("DN-{}x{}", d.rows, d.cols),
            (Some(fabric), [], BackingSpec::DNuca(d)) => {
                format!("LN{} + DN-{}x{}", fabric.levels, d.rows, d.cols)
            }
            // Everything else: component names joined.
            (fabric, intermediates, backing) => {
                let mut parts = Vec::new();
                if let Some(fabric) = fabric {
                    parts.push(self.fabric_label(fabric));
                }
                for level in intermediates {
                    parts.push(format!(
                        "{}-{}KB",
                        level.cache.name,
                        level.cache.size_bytes / 1024
                    ));
                }
                match backing {
                    BackingSpec::Cache(cache) => {
                        parts.push(format!("{}-{}KB", cache.name, cache.size_bytes / 1024));
                    }
                    BackingSpec::DNuca(d) => parts.push(format!("DN-{}x{}", d.rows, d.cols)),
                    BackingSpec::Memory => parts.push("mem".to_owned()),
                }
                if fabric.is_none() {
                    parts.insert(0, format!("L1-{}KB", self.root.size_bytes / 1024));
                }
                parts.join(" + ")
            }
        }
    }

    /// The `LN{levels}-{capacity}KB` name of a fabric-plus-root front end.
    fn fabric_label(&self, fabric: &LNucaConfig) -> String {
        let tiles = lnuca_core::LNucaGeometry::new(fabric.levels)
            .map(|g| g.capacity_bytes(fabric.tile_size_bytes))
            .unwrap_or(0);
        format!(
            "LN{}-{}KB",
            fabric.levels,
            (tiles + self.root.size_bytes) / 1024
        )
    }

    /// Block size of the first level below the root/fabric — the
    /// granularity of the root's coalescing write buffer (and of memory
    /// fetches under a bare [`BackingSpec::Memory`]).
    #[must_use]
    pub fn below_root_block_size(&self) -> u64 {
        if let Some(level) = self.intermediate.first() {
            return level.cache.block_size;
        }
        match &self.backing {
            BackingSpec::Cache(cache) => cache.block_size,
            BackingSpec::DNuca(dnuca) => dnuca.block_size,
            BackingSpec::Memory => self.root.block_size,
        }
    }
}

/// Builder for [`HierarchySpec`] (see [`HierarchySpec::builder`]).
#[derive(Debug, Clone)]
pub struct HierarchySpecBuilder {
    spec: HierarchySpec,
}

impl HierarchySpecBuilder {
    /// Overrides the derived label.
    #[must_use]
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.spec.label = Some(label.into());
        self
    }

    /// Sets the root cache (defaults to the paper L1).
    #[must_use]
    pub fn root(mut self, root: CacheConfig) -> Self {
        self.spec.root = root;
        self
    }

    /// Puts an L-NUCA fabric behind the root tile.
    #[must_use]
    pub fn fabric(mut self, fabric: LNucaConfig) -> Self {
        self.spec.fabric = Some(fabric);
        self
    }

    /// Appends an intermediate conventional cache level (nearest first).
    #[must_use]
    pub fn intermediate(mut self, level: IntermediateSpec) -> Self {
        self.spec.intermediate.push(level);
        self
    }

    /// Sets the backing store (defaults to [`BackingSpec::Memory`]).
    #[must_use]
    pub fn backing(mut self, backing: BackingSpec) -> Self {
        self.spec.backing = backing;
        self
    }

    /// Shorthand for an L3-style cache backing.
    #[must_use]
    pub fn backing_cache(self, cache: CacheConfig) -> Self {
        self.backing(BackingSpec::Cache(cache))
    }

    /// Shorthand for a D-NUCA backing.
    #[must_use]
    pub fn backing_dnuca(self, dnuca: DNucaConfig) -> Self {
        self.backing(BackingSpec::DNuca(dnuca))
    }

    /// Sets the main-memory timing (defaults to the paper's).
    #[must_use]
    pub fn memory(mut self, memory: MemoryConfig) -> Self {
        self.spec.memory = memory;
        self
    }

    /// Sets the number of root tiles (cores; defaults to 1). Each core
    /// gets a private copy of the root cache and the optional fabric; the
    /// backing is shared and kept coherent by an MSI directory.
    #[must_use]
    pub fn cores(mut self, cores: usize) -> Self {
        self.spec.cores = cores;
        self
    }

    /// Validates and produces the spec.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] [`HierarchySpec::validate`]
    /// reports.
    pub fn build(self) -> Result<HierarchySpec, ConfigError> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

impl HierarchyKind {
    /// Lowers this paper configuration to the equivalent [`HierarchySpec`].
    ///
    /// The lowering is exact: the spec carries the same component
    /// configurations, derives the same label, and — through
    /// [`crate::system::System`] — builds a hierarchy whose behaviour is
    /// bit-identical to the one built from the enum (pinned by the golden
    /// scenario tests).
    #[must_use]
    pub fn to_spec(&self) -> HierarchySpec {
        let builder = HierarchySpec::builder();
        match self {
            HierarchyKind::Conventional(c) => builder
                .root(c.l1.clone())
                .intermediate(
                    IntermediateSpec::new(c.l2.clone()).with_transfers(
                        configs::L2_REQUEST_TRANSFER_CYCLES,
                        configs::L2_RESPONSE_TRANSFER_CYCLES,
                    ),
                )
                .backing_cache(c.l3.clone())
                .memory(c.memory),
            HierarchyKind::LNucaL3(c) => builder
                .root(c.l1.clone())
                .fabric(c.lnuca.clone())
                .backing_cache(c.l3.clone())
                .memory(c.memory),
            HierarchyKind::DNuca(c) => builder
                .root(c.l1.clone())
                .backing_dnuca(c.dnuca.clone())
                .memory(c.memory),
            HierarchyKind::LNucaDNuca(c) => builder
                .root(c.l1.clone())
                .fabric(c.lnuca.clone())
                .backing_dnuca(c.dnuca.clone())
                .memory(c.memory),
        }
        .build()
        .expect("paper configurations always lower to valid specs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_kinds_lower_to_specs_with_identical_labels() {
        let kinds = [
            HierarchyKind::Conventional(configs::conventional()),
            HierarchyKind::LNucaL3(configs::lnuca_hierarchy(2)),
            HierarchyKind::LNucaL3(configs::lnuca_hierarchy(3)),
            HierarchyKind::LNucaL3(configs::lnuca_hierarchy(4)),
            HierarchyKind::DNuca(configs::dnuca_hierarchy()),
            HierarchyKind::LNucaDNuca(configs::lnuca_dnuca_hierarchy(2)),
        ];
        for kind in &kinds {
            let spec = kind.to_spec();
            assert_eq!(spec.label(), kind.label(), "derived label matches the figure name");
            spec.validate().expect("lowered specs validate");
        }
    }

    #[test]
    fn conventional_lowering_preserves_the_bus_transfers() {
        let spec = HierarchyKind::Conventional(configs::conventional()).to_spec();
        assert_eq!(spec.intermediate.len(), 1);
        assert_eq!(
            spec.intermediate[0].request_transfer_cycles,
            configs::L2_REQUEST_TRANSFER_CYCLES
        );
        assert_eq!(
            spec.intermediate[0].response_transfer_cycles,
            configs::L2_RESPONSE_TRANSFER_CYCLES
        );
        assert_eq!(spec.below_root_block_size(), 64, "write buffer coalesces at L2 blocks");
    }

    #[test]
    fn novel_shapes_validate_and_label_deterministically() {
        let no_l3 = HierarchySpec::builder()
            .fabric(LNucaConfig::paper(3).unwrap())
            .build()
            .unwrap();
        assert_eq!(no_l3.label(), "LN3-144KB + mem");
        assert_eq!(no_l3.below_root_block_size(), 32, "memory backing fetches root blocks");

        let deep = HierarchySpec::builder()
            .intermediate(IntermediateSpec::paper_l2())
            .intermediate(IntermediateSpec::new(
                CacheConfig::builder("L2B")
                    .size_bytes(1024 * 1024)
                    .ways(8)
                    .block_size(64)
                    .completion_cycles(8)
                    .initiation_interval(4)
                    .build()
                    .unwrap(),
            ))
            .backing_cache(configs::paper_l3())
            .build()
            .unwrap();
        assert_eq!(deep.label(), "L1-32KB + L2-256KB + L2B-1024KB + L3-8192KB");

        let named = HierarchySpec::builder().label("custom").build().unwrap();
        assert_eq!(named.label(), "custom");
        assert_eq!(named.backing, BackingSpec::Memory);
    }

    #[test]
    fn cmp_specs_validate_and_prefix_their_labels() {
        let cmp = HierarchySpec::builder()
            .fabric(LNucaConfig::paper(2).unwrap())
            .backing_dnuca(configs::dnuca_hierarchy().dnuca)
            .cores(4)
            .build()
            .unwrap();
        assert_eq!(cmp.label(), "4x LN2 + DN-4x8");
        let solo = HierarchySpec::builder().cores(1).build().unwrap();
        assert!(!solo.label().contains('x'), "single-core labels are unchanged: {}", solo.label());

        let err = HierarchySpec::builder().cores(0).build().unwrap_err();
        assert!(err.to_string().contains("cores"), "{err}");
        let err = HierarchySpec::builder().cores(65).build().unwrap_err();
        assert!(err.to_string().contains("cores"), "{err}");
        let err = HierarchySpec::builder()
            .intermediate(IntermediateSpec::paper_l2())
            .cores(2)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("intermediate"), "{err}");
    }

    #[test]
    fn validation_rejects_mismatched_fabric_blocks() {
        let mut fabric = LNucaConfig::paper(2).unwrap();
        fabric.block_size = 64;
        fabric.tile_size_bytes = 8 * 1024;
        let err = HierarchySpec::builder().fabric(fabric).build().unwrap_err();
        assert!(err.to_string().contains("fabric.block_size"), "{err}");
    }
}
