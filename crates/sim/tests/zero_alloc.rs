//! Closes the zero-allocation coverage gap left by
//! `crates/core/tests/zero_alloc.rs`, which pins the bare fabric only: this
//! binary drives a full **LNUCA + DNUCA combined hierarchy** — root tile,
//! fabric, waiter slots, MSHRs, write buffer, D-NUCA outer level and the
//! event-horizon skip-ahead path (`next_event` + clock jumps) — and asserts
//! that steady-state operation performs no heap allocation (DESIGN.md §9/§10).
//!
//! The test binary installs a counting global allocator; it contains only
//! this one test so the counter observes nothing but the code under test.

use lnuca_cpu::DataMemory;
use lnuca_sim::configs;
use lnuca_sim::hierarchy::LNucaHierarchy;
use lnuca_types::{Addr, Cycle, MemRequest, MemResponse, ReqId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged; the
// counter is a relaxed atomic with no allocator interaction.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Drives the hierarchy for `rounds` burst/drain rounds using the same
/// issue/tick/drain/skip sequence as `System::run_workload`'s event-horizon
/// engine: each round offers a short burst of reads (rejections under MSHR
/// pressure are part of the workload), then ticks and jumps along the
/// hierarchy's `next_event` horizons until it reports quiescence — the long
/// outer-level and DRAM waits are exactly the windows the engine skips.
/// Returns `(final clock, completions observed, turns that jumped more than
/// one cycle)`.
fn drive(
    hierarchy: &mut LNucaHierarchy,
    start: Cycle,
    rounds: u64,
    mut next_req: u64,
    scratch: &mut Vec<MemResponse>,
) -> (Cycle, u64, u64) {
    let mut now = start;
    let mut completed = 0u64;
    let mut jumps = 0u64;
    for round in 0..rounds {
        // A stride pattern over a multi-set working set: plenty of root-tile
        // hits, fabric hits, global misses into the D-NUCA and memory.
        for burst in 0..8u64 {
            let turn = round * 8 + burst;
            let addr = Addr((turn % 4096) * 0x120 + (turn % 3) * 0x40);
            let _ = hierarchy.issue(MemRequest::read(ReqId(next_req), addr, now), now);
            next_req += 1;
            hierarchy.tick(now);
            scratch.clear();
            hierarchy.drain_completions(now, scratch);
            completed += scratch.len() as u64;
            now = now.next();
        }
        // Drain to quiescence, jumping over idle stretches (bounded so a
        // contract bug fails the test instead of hanging it).
        for _ in 0..10_000 {
            hierarchy.tick(now);
            scratch.clear();
            hierarchy.drain_completions(now, scratch);
            completed += scratch.len() as u64;
            match hierarchy.next_event(now) {
                Some(target) => {
                    let target = target.max(now.next());
                    if target > now.next() {
                        jumps += 1;
                    }
                    now = target;
                }
                None => {
                    now = now.next();
                    break;
                }
            }
        }
    }
    (now, completed, jumps)
}

#[test]
fn combined_lnuca_dnuca_steady_state_does_not_allocate() {
    let config = configs::lnuca_dnuca_hierarchy(3);
    let mut hierarchy = LNucaHierarchy::with_dnuca(&config).expect("valid paper configuration");
    let mut scratch: Vec<MemResponse> = Vec::new();

    // Warm-up: queues, waiter slots, MSHR slots, scratch buffers and the
    // fabric's pools all reach their steady-state capacity.
    let (clock, warm_completed, _) = drive(&mut hierarchy, Cycle(0), 1_500, 0, &mut scratch);
    assert!(warm_completed > 1_000, "the drive pattern must produce traffic");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let (_, completed, jumps) = drive(&mut hierarchy, clock, 750, 1_000_000, &mut scratch);
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert!(completed > 500, "steady state keeps serving requests");
    assert!(jumps > 0, "the event-horizon path must actually skip ahead");
    assert_eq!(
        after - before,
        0,
        "steady-state LNUCA+DNUCA cycles (incl. skip-ahead) allocated {} times",
        after - before
    );
}
