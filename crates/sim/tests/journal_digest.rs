//! The journal-digest property (DESIGN.md §14): the content-address a
//! study journal is keyed by must be **invariant** under scenario JSON
//! round-trips — exporting a scenario and loading it back must resume the
//! same journal — and **sensitive** to every semantic plan field, so a
//! journal can never be replayed against a plan that would produce
//! different results.

use lnuca_sim::experiments::{ExperimentOptions, ExperimentPlan, WorkloadSelection};
use lnuca_sim::journal::plan_digest;
use lnuca_sim::scenario::{builtin, builtin_names, Scenario};

/// Round-tripping every builtin scenario through its JSON form preserves
/// the journal digest: `export | load` must address the same journal.
#[test]
fn digest_is_invariant_under_scenario_json_round_trip() {
    for name in builtin_names() {
        let scenario = builtin(name).expect("builtin resolves");
        let direct = plan_digest(&scenario.plan).expect("digest computes");
        let round_tripped = Scenario::from_json(&scenario.to_json()).expect("round-trips");
        let back = plan_digest(&round_tripped.plan).expect("digest computes");
        assert_eq!(
            direct, back,
            "scenario {name:?} changes its journal digest across a JSON round-trip"
        );
    }
}

/// Every semantic field of a plan moves the digest; every pure execution
/// knob (thread count, engine, batching, supervision budgets) leaves it
/// unchanged — those may differ between the crashed run and the resume.
#[test]
fn digest_tracks_semantics_and_ignores_execution_knobs() {
    let scenario = builtin("paper-conventional").expect("builtin resolves");
    let base_plan = &scenario.plan;
    let base = plan_digest(base_plan).expect("digest computes");

    let rebuild = |options: ExperimentOptions| {
        let plan = ExperimentPlan::builder(&base_plan.name)
            .configs(base_plan.configs.clone())
            .options(options)
            .build()
            .expect("plan rebuilds");
        plan_digest(&plan).expect("digest computes")
    };

    // Semantic mutations: each must produce a distinct digest.
    let semantic: Vec<ExperimentOptions> = {
        let mut mutated = Vec::new();
        let mut o = base_plan.options.clone();
        o.instructions += 1;
        mutated.push(o);
        let mut o = base_plan.options.clone();
        o.seed += 1;
        mutated.push(o);
        let mut o = base_plan.options.clone();
        o.benchmarks_per_suite = Some(1);
        mutated.push(o);
        let mut o = base_plan.options.clone();
        o.workloads = WorkloadSelection::Adversarial;
        mutated.push(o);
        mutated
    };
    let mut digests = vec![base];
    for options in semantic {
        let digest = rebuild(options);
        assert!(
            !digests.contains(&digest),
            "a semantic mutation failed to move the journal digest"
        );
        digests.push(digest);
    }

    // Execution knobs: identical digest, so a journal survives re-running
    // the study with different parallelism or supervision settings.
    let knobs: Vec<ExperimentOptions> = {
        let mut mutated = Vec::new();
        let mut o = base_plan.options.clone();
        o.threads += 7;
        mutated.push(o);
        let mut o = base_plan.options.clone();
        o.batch_size += 3;
        mutated.push(o);
        let mut o = base_plan.options.clone();
        o.cycle_budget = Some(u64::MAX);
        o.run_timeout_ms = Some(u64::MAX);
        o.livelock_window = Some(u64::MAX);
        o.retries = 9;
        mutated.push(o);
        mutated
    };
    for options in knobs {
        assert_eq!(
            rebuild(options),
            base,
            "an execution knob moved the journal digest"
        );
    }

    // Dropping a configuration is semantic too.
    let fewer = ExperimentPlan::builder(&base_plan.name)
        .configs(base_plan.configs[..base_plan.configs.len() - 1].to_vec())
        .options(base_plan.options.clone())
        .build()
        .expect("plan rebuilds");
    assert_ne!(
        plan_digest(&fewer).expect("digest computes"),
        base,
        "removing a configuration must move the journal digest"
    );
}
