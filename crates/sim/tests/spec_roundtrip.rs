//! Property test of the scenario serialization layer: any composed
//! [`HierarchySpec`] survives `spec → JSON → spec` **identically** — the
//! canonical document carries every field, the strict parser reads every
//! field back, and nothing is defaulted away silently.

use lnuca_core::LNucaConfig;
use lnuca_dnuca::DNucaConfig;
use lnuca_mem::CacheConfig;
use lnuca_sim::configs;
use lnuca_sim::scenario::{spec_from_value, spec_to_value};
use lnuca_sim::spec::{BackingSpec, HierarchySpec, IntermediateSpec};
use proptest::prelude::*;
use serde::json;

proptest! {
    #[test]
    fn any_composed_spec_round_trips_identically(
        levels in 2u8..7,
        tile_kb_pow in 1u32..5,          // 2, 4, 8 or 16 KB tiles
        with_fabric in any::<bool>(),
        intermediates in 0usize..3,
        backing_sel in 0usize..3,
        fabric_seed in any::<u64>(),
        with_label in any::<bool>(),
    ) {
        let mut builder = HierarchySpec::builder();
        if with_label {
            builder = builder.label(format!("custom-{levels}-{backing_sel}"));
        }
        if with_fabric {
            let mut fabric = LNucaConfig::paper(levels).expect("levels in range");
            fabric.tile_size_bytes = (1u64 << tile_kb_pow) * 1024;
            fabric.seed = fabric_seed;
            builder = builder.fabric(fabric);
        }
        for i in 0..intermediates {
            let cache = CacheConfig::builder(format!("MID{i}"))
                .size_bytes(256 * 1024 << i)
                .ways(8)
                .block_size(64)
                .completion_cycles(4 + i as u64)
                .initiation_interval(2)
                .build()
                .expect("intermediate caches are valid");
            builder = builder.intermediate(
                IntermediateSpec::new(cache).with_transfers(i as u64, 2 * i as u64),
            );
        }
        builder = match backing_sel {
            0 => builder.backing_cache(configs::paper_l3()),
            1 => builder.backing_dnuca(DNucaConfig::paper()),
            _ => builder.backing(BackingSpec::Memory),
        };
        let spec = builder.build().expect("composed specs are valid");

        // spec → Value → spec is the identity.
        let value = spec_to_value(&spec);
        let back = spec_from_value("$", &value).expect("canonical values parse");
        prop_assert_eq!(&back, &spec);

        // And through the actual text form (parser + printer), too.
        let text = value.to_pretty();
        let reparsed = json::parse(&text).expect("canonical text parses");
        let back2 = spec_from_value("$", &reparsed).expect("reparsed values parse");
        prop_assert_eq!(&back2, &spec);
    }
}
