//! Property test (DESIGN.md §13): arbitrary batch partitionings and
//! member permutations of a random job set must yield per-run outcomes
//! bit-identical to the solo engine — batch composition can never leak
//! between members, whatever the cut or the neighbours.
//!
//! The vendored `proptest!` macro always draws its full 256-case budget,
//! which is far too many full simulations; these tests instead drive the
//! shim's [`test_runner::TestRunner`] directly with a reduced budget,
//! drawing from the same strategy combinators. Solo baselines are memoised
//! across cases so each distinct (spec, profile, budget, seed) job is
//! simulated sequentially only once.

use std::collections::HashMap;

use lnuca_sim::batch::{BatchJob, BatchRunner};
use lnuca_sim::configs::{self, HierarchyKind};
use lnuca_sim::experiments::{ExperimentOptions, ExperimentPlan, Study, WorkloadSelection};
use lnuca_sim::spec::HierarchySpec;
use lnuca_sim::system::{Engine, RunResult, System};
use lnuca_workloads::{suites, WorkloadProfile};
use proptest::{collection, test_runner::TestRunner, Strategy};

/// Job identity within one drawn case: indices into the spec/profile
/// pools plus the per-run knobs. Hashable so solo baselines memoise.
type JobKey = (usize, usize, u64, u64);

fn spec_pool() -> Vec<HierarchySpec> {
    vec![
        HierarchyKind::Conventional(configs::conventional()).to_spec(),
        HierarchyKind::LNucaL3(configs::lnuca_hierarchy(2)).to_spec(),
        HierarchyKind::DNuca(configs::dnuca_hierarchy()).to_spec(),
        HierarchyKind::LNucaDNuca(configs::lnuca_dnuca_hierarchy(3)).to_spec(),
    ]
}

fn profile_pool() -> Vec<WorkloadProfile> {
    suites::extended()
}

/// Applies a drawn swap list as a permutation of `0..len` (any permutation
/// is reachable through transpositions; the draw just samples them).
fn permutation(len: usize, swaps: &[(usize, usize)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    if len == 0 {
        return order;
    }
    for &(a, b) in swaps {
        order.swap(a % len, b % len);
    }
    order
}

/// Solo baseline for one job, memoised across property cases.
fn solo(
    cache: &mut HashMap<(Engine, JobKey), RunResult>,
    specs: &[HierarchySpec],
    profiles: &[WorkloadProfile],
    engine: Engine,
    key: JobKey,
) -> RunResult {
    cache
        .entry((engine, key))
        .or_insert_with(|| {
            let (spec_idx, profile_idx, instructions, seed) = key;
            System::run_spec_with(
                engine,
                &specs[spec_idx],
                &profiles[profile_idx],
                instructions,
                seed,
            )
            .expect("pool specs are valid")
        })
        .clone()
}

#[test]
fn arbitrary_partitions_and_permutations_preserve_every_run() {
    let specs = spec_pool();
    let profiles = profile_pool();
    let mut runner = TestRunner::default();
    runner.cases = 10;

    // One case = a random job list, a random permutation of it, and a
    // random list of batch widths applied cyclically as the cut.
    let jobs_strat = collection::vec(
        (0..specs.len(), 0..profiles.len(), 200u64..700, 1u64..6),
        2..8,
    );
    let swaps_strat = collection::vec((0usize..64, 0usize..64), 0..24);
    let widths_strat = collection::vec(1usize..5, 1..5);

    let mut baselines: HashMap<(Engine, JobKey), RunResult> = HashMap::new();
    for case in 0..runner.cases {
        let job_keys: Vec<JobKey> = jobs_strat.generate(&mut runner.rng);
        let swaps = swaps_strat.generate(&mut runner.rng);
        let widths = widths_strat.generate(&mut runner.rng);
        let engine = if case % 2 == 0 {
            Engine::EventHorizon
        } else {
            Engine::CycleStep
        };

        let order = permutation(job_keys.len(), &swaps);
        let mut batched: Vec<Option<RunResult>> = vec![None; job_keys.len()];
        let mut cursor = 0;
        let mut cut = 0;
        while cursor < order.len() {
            let width = widths[cut % widths.len()];
            cut += 1;
            let members = &order[cursor..(cursor + width).min(order.len())];
            cursor += members.len();
            let jobs: Vec<BatchJob<'_>> = members
                .iter()
                .map(|&original| {
                    let (spec_idx, profile_idx, instructions, seed) = job_keys[original];
                    BatchJob {
                        spec: &specs[spec_idx],
                        profile: &profiles[profile_idx],
                        instructions,
                        seed,
                    }
                })
                .collect();
            let results = BatchRunner::new(engine, &jobs)
                .expect("pool specs are valid")
                .run_results();
            for (&original, result) in members.iter().zip(results) {
                batched[original] = Some(result);
            }
        }

        for (original, result) in batched.into_iter().enumerate() {
            let expect = solo(&mut baselines, &specs, &profiles, engine, job_keys[original]);
            assert_eq!(
                result.as_ref(),
                Some(&expect),
                "case {case}: job #{original} {:?} diverged from its solo run \
                 (permutation {order:?}, widths {widths:?}, {})",
                job_keys[original],
                engine.label(),
            );
        }
    }
}

/// `Study::run` outcomes are invariant to the `batch_size` option: a
/// proptest-drawn batch size (including full-width) must reproduce the
/// per-run path exactly, whatever the thread count.
#[test]
fn study_outcomes_are_invariant_to_batch_size() {
    let mut runner = TestRunner::default();
    runner.cases = 4;

    let batch_strat = proptest::prop_oneof![2usize..7, proptest::Just(usize::MAX)];
    for case in 0..runner.cases {
        let batch_size = batch_strat.generate(&mut runner.rng);
        let threads = (1usize..3).generate(&mut runner.rng);
        let engine = if case % 2 == 0 {
            Engine::EventHorizon
        } else {
            Engine::CycleStep
        };

        let options = |batch: usize| {
            ExperimentOptions::builder()
                .instructions(400)
                .seed(7 + u64::from(case))
                .benchmarks_per_suite(Some(2))
                .workloads(WorkloadSelection::Adversarial)
                .engine(engine)
                .threads(threads)
                .batch_size(batch)
                .build()
        };
        let plan = |batch: usize| {
            ExperimentPlan::builder("batch-partition-property")
                .config(HierarchyKind::Conventional(configs::conventional()).to_spec())
                .config(HierarchyKind::LNucaL3(configs::lnuca_hierarchy(2)).to_spec())
                .options(options(batch))
                .build()
                .expect("plan is valid")
        };

        let sequential = Study::run(&plan(1)).expect("sequential study runs");
        let batched = Study::run(&plan(batch_size)).expect("batched study runs");
        assert_eq!(
            sequential.results, batched.results,
            "case {case}: batch size {batch_size} with {threads} thread(s) \
             changed study outcomes"
        );
        assert_eq!(sequential.configs, batched.configs);
        assert_eq!(sequential.baseline, batched.baseline);
    }
}
