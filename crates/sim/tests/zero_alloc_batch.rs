//! Extends the zero-allocation discipline (DESIGN.md §9) to the batched
//! engine (DESIGN.md §13): once a [`lnuca_sim::batch::BatchRunner`] is
//! constructed — members built, slab lanes packed, horizon heap seeded —
//! steady-state stepping must perform no heap allocation. ISSUE 6 names
//! `crates/core/tests/zero_alloc.rs` for this case, but lnuca-core cannot
//! depend on lnuca-sim (it sits below it in the crate DAG), so the batched
//! case lives here beside the solo-hierarchy binary `tests/zero_alloc.rs`.
//!
//! The test binary installs a counting global allocator; it contains only
//! this one test so the counter observes nothing but the code under test.
//! Member retirement is excluded by construction (it materialises a
//! `RunResult`, which owns strings): the measured window is bounded far
//! below any member's completion.

use lnuca_sim::batch::{BatchJob, BatchRunner};
use lnuca_sim::configs::{self, HierarchyKind};
use lnuca_sim::system::Engine;
use lnuca_workloads::suites;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged; the
// counter is a relaxed atomic with no allocator interaction.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn batched_steady_state_does_not_allocate() {
    let specs = [
        HierarchyKind::Conventional(configs::conventional()).to_spec(),
        HierarchyKind::LNucaL3(configs::lnuca_hierarchy(3)).to_spec(),
        HierarchyKind::DNuca(configs::dnuca_hierarchy()).to_spec(),
        HierarchyKind::LNucaDNuca(configs::lnuca_dnuca_hierarchy(2)).to_spec(),
    ];
    let profiles = suites::extended();

    // Budgets far beyond the stepped window: no member retires while the
    // counter is live, so the only allocation sites the window can see are
    // the per-cycle paths the zero-allocation rule covers.
    let jobs: Vec<BatchJob<'_>> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| BatchJob {
            spec,
            profile: &profiles[i * 6],
            instructions: 50_000_000,
            seed: 11 + i as u64,
        })
        .collect();
    let mut runner =
        BatchRunner::new(Engine::EventHorizon, &jobs).expect("valid paper configurations");
    assert!(
        runner.slab().allocated_words() > 0,
        "batch construction must pack tag lanes into the shared slab"
    );

    // Warm-up: queues, MSHR waiter slots, core scoreboards, scratch
    // buffers and the horizon heap all reach steady-state capacity.
    for _ in 0..40_000 {
        assert!(runner.step(), "no member may finish during warm-up");
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        assert!(runner.step(), "no member may finish in the measured window");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(runner.live(), jobs.len(), "every member is still in flight");
    assert!(
        runner.clock().is_some_and(|c| c.0 > 10_000),
        "the batch clock must have advanced through the window"
    );
    assert_eq!(
        after - before,
        0,
        "steady-state batched stepping allocated {} times",
        after - before
    );
}
