//! Criterion bench for the flow-control buffer-depth ablation: the paper
//! fixes two entries per link (matching the two-cycle On/Off round trip);
//! this bench measures the simulation cost of deeper buffers under the same
//! load, and the companion assertions in `tests/` check that two entries are
//! already enough to keep contention negligible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lnuca_core::{LNuca, LNucaConfig};
use lnuca_types::{Addr, Cycle, ReqId};
use std::hint::black_box;

fn run_fabric(buffer_entries: usize) -> u64 {
    let config = LNucaConfig {
        buffer_entries,
        ..LNucaConfig::paper(3).expect("3 levels is valid")
    };
    let mut fabric = LNuca::new(config).expect("valid config");
    let mut stalls = 0;
    for c in 0..8_000u64 {
        if c % 2 == 0 {
            let _ = fabric.inject_search(Addr((c % 128) * 0x400), ReqId(c), false, Cycle(c));
        }
        fabric.evict_from_root(Addr((c % 256) * 0x80), false);
        fabric.tick(Cycle(c));
        let _ = fabric.pop_arrivals(Cycle(c));
        let _ = fabric.pop_global_misses(Cycle(c));
        let _ = fabric.pop_spills(Cycle(c));
        stalls = fabric.stats().transport_stall_cycles + fabric.stats().replacement_stall_cycles;
    }
    stalls
}

fn bench_buffer_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_depth_fabric_8k_cycles");
    for entries in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, &entries| {
            b.iter(|| black_box(run_fabric(entries)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_buffer_depth);
criterion_main!(benches);
