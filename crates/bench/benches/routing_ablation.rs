//! Criterion bench for the routing-policy ablation: the wall-clock cost of
//! simulating the same fabric load under random distributed routing versus
//! dimension-order routing. The architectural comparison (contention ratio,
//! IPC) is printed by `cargo run -p lnuca-bench --bin ablation_routing`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lnuca_core::{LNuca, LNucaConfig};
use lnuca_noc::RoutingPolicy;
use lnuca_types::{Addr, Cycle, ReqId};
use std::hint::black_box;

fn run_fabric(policy: RoutingPolicy) -> u64 {
    let config = LNucaConfig {
        routing: policy,
        ..LNucaConfig::paper(3).expect("3 levels is valid")
    };
    let mut fabric = LNuca::new(config).expect("valid config");
    let mut delivered = 0;
    for c in 0..8_000u64 {
        // Heavy load: a search every other cycle, evictions every 3 cycles.
        if c % 2 == 0 {
            let _ = fabric.inject_search(Addr((c % 256) * 0x400), ReqId(c), false, Cycle(c));
        }
        if c % 3 == 0 {
            fabric.evict_from_root(Addr((c % 512) * 0x80), false);
        }
        fabric.tick(Cycle(c));
        delivered += fabric.pop_arrivals(Cycle(c)).len() as u64;
        let _ = fabric.pop_global_misses(Cycle(c));
        let _ = fabric.pop_spills(Cycle(c));
    }
    delivered
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_policy_fabric_8k_cycles");
    for (name, policy) in [
        ("random_valid", RoutingPolicy::RandomValid),
        ("dimension_order", RoutingPolicy::DimensionOrder),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            b.iter(|| black_box(run_fabric(policy)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
