//! Criterion microbench of [`lnuca_mem::CacheArray`]'s hot entry points —
//! the substrate behind every cache-like structure in the workspace (L1,
//! L2/L3, L-NUCA tiles, D-NUCA banks) and therefore the inner loop of every
//! simulated cycle. The flat tag-lane rewrite (DESIGN.md §10) was measured
//! with exactly these cases; rerun `cargo bench -p lnuca-bench --bench
//! cache_array` to compare before/after any future storage change.
//!
//! Cases:
//! * `lookup/hit` — resident block, recency refresh (the L1-hit fast path),
//! * `lookup/miss` — full-set scan with no match (the path every miss pays
//!   before the hierarchy escalates),
//! * `fill/refresh` — fill of an already-resident block (dirtiness merge),
//! * `fill/evict` — fill into a full set (victim choice + replacement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lnuca_mem::{CacheArray, CacheGeometry, ReplacementPolicy};
use lnuca_types::Addr;
use std::hint::black_box;

/// The paper's L1 shape: 32 KB, 4-way, 32 B blocks (256 sets).
fn l1_array() -> CacheArray {
    let geometry = CacheGeometry::new(32 * 1024, 4, 32).expect("valid L1 geometry");
    CacheArray::new(geometry, ReplacementPolicy::Lru)
}

/// Fills every way of every set so lookups scan full sets.
fn filled(mut array: CacheArray) -> CacheArray {
    let block = array.geometry().block_size();
    let lines = array.geometry().lines() as u64;
    for i in 0..lines {
        array.fill(Addr(i * block), i % 7 == 0);
    }
    assert_eq!(array.resident(), lines as usize);
    array
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_array/lookup");

    let mut array = filled(l1_array());
    let block = array.geometry().block_size();
    let lines = array.geometry().lines() as u64;
    let mut i = 0u64;
    group.bench_function(BenchmarkId::from_parameter("hit"), |b| {
        b.iter(|| {
            i = (i + 1) % lines;
            black_box(array.lookup(black_box(Addr(i * block))))
        })
    });

    let mut array = filled(l1_array());
    let capacity = array.geometry().size_bytes();
    let mut j = 0u64;
    group.bench_function(BenchmarkId::from_parameter("miss"), |b| {
        b.iter(|| {
            j += 1;
            // Addresses beyond the filled range: same sets, absent tags.
            black_box(array.lookup(black_box(Addr(capacity + j * block))))
        })
    });

    group.finish();
}

fn bench_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_array/fill");

    let mut array = filled(l1_array());
    let block = array.geometry().block_size();
    let lines = array.geometry().lines() as u64;
    let mut i = 0u64;
    group.bench_function(BenchmarkId::from_parameter("refresh"), |b| {
        b.iter(|| {
            i = (i + 1) % lines;
            black_box(array.fill(black_box(Addr(i * block)), false))
        })
    });

    let mut array = filled(l1_array());
    let capacity = array.geometry().size_bytes();
    let mut j = 0u64;
    group.bench_function(BenchmarkId::from_parameter("evict"), |b| {
        b.iter(|| {
            j += 1;
            // Every fill lands in a full set and must choose a victim.
            black_box(array.fill(black_box(Addr(capacity + j * block)), j % 2 == 0))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_lookup, bench_fill);
criterion_main!(benches);
