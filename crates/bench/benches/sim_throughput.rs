//! Criterion benches of the simulator's hot kernels: the L-NUCA fabric tick
//! loop and a short full-system run for each hierarchy organisation. These
//! track the cost of reproducing the paper's experiments rather than the
//! paper's own metrics (which the `src/bin` harnesses report).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lnuca_core::{LNuca, LNucaConfig};
use lnuca_sim::configs::{self, HierarchyKind};
use lnuca_sim::system::System;
use lnuca_types::{Addr, Cycle, ReqId};
use lnuca_workloads::suites;
use std::hint::black_box;
use std::time::Instant;

/// 10 000 fabric cycles with one search injected every 4 cycles and a root
/// eviction every 8 — a load comparable to an L1 miss rate of 25 %.
fn fabric_tick_loop(levels: u8) -> u64 {
    let mut fabric = LNuca::new(LNucaConfig::paper(levels).expect("valid levels")).expect("valid config");
    let mut delivered = 0u64;
    for c in 0..10_000u64 {
        if c % 4 == 0 {
            let addr = Addr((c % 512) * 0x200);
            let _ = fabric.inject_search(addr, ReqId(c), false, Cycle(c));
        }
        if c % 8 == 0 {
            fabric.evict_from_root(Addr((c % 1024) * 0x40), c % 16 == 0);
        }
        fabric.tick(Cycle(c));
        delivered += fabric.pop_arrivals(Cycle(c)).len() as u64;
        let _ = fabric.pop_global_misses(Cycle(c));
        let _ = fabric.pop_spills(Cycle(c));
    }
    delivered
}

fn bench_fabric_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric_tick_10k_cycles");
    for levels in [2u8, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(levels), &levels, |b, &levels| {
            b.iter(|| black_box(fabric_tick_loop(levels)));
        });
    }
    group.finish();

    // Absolute throughput next to the per-iteration times, so a perf
    // regression is a falling number in plain bench output (compare with
    // the committed BENCH_baseline.json).
    for levels in [2u8, 3, 4] {
        let started = Instant::now();
        let reps = 10u64;
        for _ in 0..reps {
            black_box(fabric_tick_loop(levels));
        }
        let secs = started.elapsed().as_secs_f64();
        let cycles = reps * 10_000;
        eprintln!(
            "throughput fabric_tick/{levels}: {:.0} kcycles/s",
            if secs > 0.0 { cycles as f64 / 1_000.0 / secs } else { 0.0 }
        );
    }
}

fn bench_full_system(c: &mut Criterion) {
    let profile = suites::spec_int_like()[0].clone();
    let kinds = [
        ("conventional", HierarchyKind::Conventional(configs::conventional())),
        ("lnuca3_l3", HierarchyKind::LNucaL3(configs::lnuca_hierarchy(3))),
        ("dnuca", HierarchyKind::DNuca(configs::dnuca_hierarchy())),
        ("lnuca2_dnuca", HierarchyKind::LNucaDNuca(configs::lnuca_dnuca_hierarchy(2))),
    ];
    let mut group = c.benchmark_group("full_system_10k_instructions");
    group.sample_size(10);
    for (name, kind) in &kinds {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let result =
                    System::run_workload(kind, &profile, 10_000, 1).expect("valid configuration");
                black_box(result.cycles)
            });
        });
    }
    group.finish();

    for (name, kind) in &kinds {
        let started = Instant::now();
        let result = System::run_workload(kind, &profile, 10_000, 1).expect("valid configuration");
        let secs = started.elapsed().as_secs_f64();
        eprintln!(
            "throughput full_system/{name}: {:.0} kcycles/s ({} cycles simulated)",
            if secs > 0.0 { result.cycles as f64 / 1_000.0 / secs } else { 0.0 },
            result.cycles,
        );
    }
}

/// The four adversarial access-pattern classes on the LN3 hierarchy: these
/// stress the simulator very differently from the stationary region model
/// (pointer chases maximise search traffic, GUPS maximises tag pressure and
/// DRAM turnaround, phase switching churns the event horizons), so their
/// throughput is tracked as its own bench axis.
fn bench_adversarial_patterns(c: &mut Criterion) {
    let kind = HierarchyKind::LNucaL3(configs::lnuca_hierarchy(3));
    let mut group = c.benchmark_group("adversarial_10k_instructions");
    group.sample_size(10);
    for profile in suites::adversarial() {
        group.bench_with_input(
            BenchmarkId::from_parameter(&profile.name),
            &profile,
            |b, profile| {
                b.iter(|| {
                    let result = System::run_workload(&kind, profile, 10_000, 1)
                        .expect("valid configuration");
                    black_box(result.cycles)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fabric_tick, bench_full_system, bench_adversarial_patterns);
criterion_main!(benches);
