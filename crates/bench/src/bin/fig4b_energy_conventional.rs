//! Fig. 4(b) — total energy normalised to `L2-256KB`, split into the
//! paper's four bar segments (dynamic, static L1-RT, static L2/rest of
//! tiles, static L3).

use lnuca_bench::cli::{figure_main, Section};

fn main() {
    figure_main(
        "paper-conventional",
        "Fig. 4(b) — total energy normalised to L2-256KB",
        &[Section::EnergySummary],
        "Paper reference: savings from 10.5% (LN4-248KB) to 16.5% (LN2-72KB) vs L2-256KB.",
    );
}
