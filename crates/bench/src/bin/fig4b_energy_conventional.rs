//! Fig. 4(b) — total energy normalised to `L2-256KB`, split into the
//! paper's four bar segments (dynamic, static L1-RT, static L2/rest of
//! tiles, static L3).

use lnuca_bench::{f3, options_from_env, signed_pct};
use lnuca_sim::experiments::Study;
use lnuca_sim::report::format_table;

fn main() {
    let opts = options_from_env();
    eprintln!("running the conventional study ({} instructions per run)...", opts.instructions);
    let study = Study::conventional(&opts).expect("paper configurations are valid");

    println!("Fig. 4(b) — total energy normalised to L2-256KB\n");
    let rows: Vec<Vec<String>> = study
        .energy_summary()
        .into_iter()
        .map(|r| {
            vec![
                r.label,
                f3(r.dynamic),
                f3(r.static_l1),
                f3(r.static_second),
                f3(r.static_last),
                f3(r.total),
                signed_pct((r.total - 1.0) * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["configuration", "dyn.", "sta. L1-RT", "sta. L2/RESTT", "sta. L3", "total", "vs baseline"],
            &rows
        )
    );
    println!("Paper reference: savings from 10.5% (LN4-248KB) to 16.5% (LN2-72KB) vs L2-256KB.");
}
