//! Table III — read hits per L-NUCA level relative to the read hits of the
//! `L2-256KB` baseline's L2, and the average-to-minimum Transport latency
//! ratio.

use lnuca_bench::options_from_env;
use lnuca_sim::experiments::Study;
use lnuca_sim::report::format_table;
use lnuca_workloads::Suite;

fn main() {
    let opts = options_from_env();
    eprintln!("running the conventional study ({} instructions per run)...", opts.instructions);
    let study = Study::conventional(&opts).expect("paper configurations are valid");

    println!("Table III — L-NUCA read hits relative to the L2 hits of L2-256KB\n");
    let max_levels = opts.lnuca_levels.iter().copied().max().unwrap_or(4) as usize - 1;
    let mut headers: Vec<String> = vec!["configuration".to_owned(), "suite".to_owned()];
    for level in 0..max_levels {
        headers.push(format!("Le{} / L2 (%)", level + 2));
    }
    headers.push("all levels / L2 (%)".to_owned());
    headers.push("avg/min transport".to_owned());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let rows: Vec<Vec<String>> = study
        .hit_distribution()
        .into_iter()
        .map(|row| {
            let mut cells = vec![
                row.label.clone(),
                match row.suite {
                    Suite::Integer => "Int.".to_owned(),
                    Suite::FloatingPoint => "FP.".to_owned(),
                },
            ];
            for level in 0..max_levels {
                cells.push(
                    row.level_percent
                        .get(level)
                        .map_or("—".to_owned(), |v| format!("{v:.1}")),
                );
            }
            cells.push(format!("{:.1}", row.all_levels_percent));
            cells.push(format!("{:.3}", row.avg_to_min_transport));
            cells
        })
        .collect();
    println!("{}", format_table(&header_refs, &rows));
    println!(
        "Paper reference (LN3-144KB): Le2 59.9% Int / 41.0% FP, Le3 21.2% Int / 29.4% FP,\n\
         all levels 81.2% Int / 70.3% FP, avg/min transport latency 1.008 Int / 1.005 FP."
    );
}
