//! Table III — read hits per L-NUCA level relative to the read hits of the
//! `L2-256KB` baseline's L2, and the average-to-minimum Transport latency
//! ratio.

use lnuca_bench::cli::{figure_main, Section};

fn main() {
    figure_main(
        "paper-conventional",
        "Table III — L-NUCA read hits relative to the L2 hits of L2-256KB",
        &[Section::HitDistribution],
        "Paper reference (LN3-144KB): Le2 59.9% Int / 41.0% FP, Le3 21.2% Int / 29.4% FP,\n\
         all levels 81.2% Int / 70.3% FP, avg/min transport latency 1.008 Int / 1.005 FP.",
    );
}
