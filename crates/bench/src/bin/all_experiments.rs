//! Runs the complete evaluation in one pass: both paper scenarios
//! (`paper-conventional` and `paper-dnuca`) are simulated once, and every
//! table/figure of the paper is printed from the shared results. This is
//! the binary used to produce `EXPERIMENTS.md`; the per-figure binaries
//! (`fig4a_*`, `table3_*`, ...) print the same rows individually, and the
//! `lnuca` binary runs any scenario (built-in or JSON file) the same way.

fn main() {
    lnuca_bench::cli::all_experiments_main();
}
