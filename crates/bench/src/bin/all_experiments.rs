//! Runs the complete evaluation in one pass: both studies (conventional and
//! D-NUCA) are simulated once, and every table/figure of the paper is
//! printed from the shared results. This is the binary used to produce
//! `EXPERIMENTS.md`; the per-figure binaries (`fig4a_*`, `table3_*`, ...)
//! print the same rows individually.

use lnuca_bench::{baseline, f3, options_from_env, signed_pct};
use lnuca_sim::experiments::{area_table, headline, Study};
use lnuca_sim::report::format_table;
use lnuca_workloads::Suite;
use std::time::Instant;

fn main() {
    let opts = options_from_env();
    eprintln!(
        "running both studies: {} instructions per run, levels {:?}, {} benchmarks per suite, {} worker thread(s)",
        opts.instructions,
        opts.lnuca_levels,
        opts.benchmarks_per_suite
            .map_or("all".to_owned(), |n| n.to_string()),
        opts.threads,
    );
    let wall_start = Instant::now();

    println!("== Table II — conventional and L-NUCA areas ==\n");
    let rows: Vec<Vec<String>> = area_table()
        .into_iter()
        .map(|row| {
            vec![
                row.label,
                row.paper_mm2.map_or("—".to_owned(), |v| format!("{v:.2}")),
                format!("{:.2}", row.model_mm2),
                row.paper_network_pct.map_or("—".to_owned(), |v| format!("{v:.1}%")),
                format!("{:.1}%", row.model_network_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["configuration", "paper mm2", "model mm2", "paper net %", "model net %"],
            &rows
        )
    );

    eprintln!("simulating the conventional study...");
    let conventional_start = Instant::now();
    let conventional = Study::conventional(&opts).expect("paper configurations are valid");
    let conventional_wall = conventional_start.elapsed().as_secs_f64();

    println!("== Fig. 4(a) — IPC harmonic mean (conventional study) ==\n");
    print_ipc(&conventional);
    println!("== Fig. 4(b) — total energy normalised to L2-256KB ==\n");
    print_energy(&conventional);
    println!("== Table III — read hits per L-NUCA level relative to L2-256KB ==\n");
    print_hits(&conventional);

    println!("== Headline — LN3-144KB vs L2-256KB ==\n");
    let h = headline(&conventional);
    println!(
        "{}",
        format_table(
            &["metric", "measured", "paper"],
            &[
                vec!["area".to_owned(), signed_pct(h.area_change_pct), "-5.3%".to_owned()],
                vec!["Integer IPC".to_owned(), signed_pct(h.int_ipc_gain_pct), "+6.1%".to_owned()],
                vec!["FP IPC".to_owned(), signed_pct(h.fp_ipc_gain_pct), "+15.0%".to_owned()],
                vec!["total energy".to_owned(), signed_pct(h.energy_change_pct), "-14.2%".to_owned()],
            ]
        )
    );

    eprintln!("simulating the D-NUCA study...");
    let dnuca_start = Instant::now();
    let dnuca = Study::dnuca(&opts).expect("paper configurations are valid");
    let dnuca_wall = dnuca_start.elapsed().as_secs_f64();

    println!("== Fig. 5(a) — IPC harmonic mean (D-NUCA study) ==\n");
    print_ipc(&dnuca);
    println!("== Fig. 5(b) — total energy normalised to DN-4x8 ==\n");
    print_energy(&dnuca);

    let studies = [
        baseline::StudyPerf {
            name: "conventional",
            wall_seconds: conventional_wall,
            runs: &conventional.perf,
        },
        baseline::StudyPerf {
            name: "dnuca",
            wall_seconds: dnuca_wall,
            runs: &dnuca.perf,
        },
    ];

    println!("== Simulator throughput (wall-clock, not modelled time) ==\n");
    print_throughput(&studies);

    if let Some(path) = baseline::path_from_env(true) {
        let json = baseline::baseline_json(&opts, &studies, wall_start.elapsed().as_secs_f64());
        if let Err(err) = baseline::write(&path, &json) {
            eprintln!("warning: could not write {}: {err}", path.display());
        }
    }
}

fn print_throughput(studies: &[baseline::StudyPerf<'_>]) {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for study in studies {
        for (label, runs, wall, cycles, kcps) in baseline::per_configuration(study.runs) {
            rows.push(vec![
                study.name.to_owned(),
                label,
                runs.to_string(),
                format!("{wall:.3}"),
                format!("{:.1}", cycles as f64 / 1e6),
                format!("{kcps:.0}"),
            ]);
        }
        rows.push(vec![
            study.name.to_owned(),
            "(whole study)".to_owned(),
            study.runs.len().to_string(),
            format!("{:.3}", study.wall_seconds),
            format!(
                "{:.1}",
                study.runs.iter().map(|r| r.cycles).sum::<u64>() as f64 / 1e6
            ),
            String::new(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["study", "configuration", "runs", "wall s", "Mcycles", "kcycles/s"],
            &rows
        )
    );
}

fn print_ipc(study: &Study) {
    let rows: Vec<Vec<String>> = study
        .ipc_summary()
        .into_iter()
        .map(|r| {
            vec![
                r.label,
                f3(r.int_ipc),
                signed_pct(r.int_gain_pct),
                f3(r.fp_ipc),
                signed_pct(r.fp_gain_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["configuration", "Integer IPC", "vs baseline", "FP IPC", "vs baseline"],
            &rows
        )
    );
}

fn print_energy(study: &Study) {
    let rows: Vec<Vec<String>> = study
        .energy_summary()
        .into_iter()
        .map(|r| {
            vec![
                r.label,
                f3(r.dynamic),
                f3(r.static_l1),
                f3(r.static_second),
                f3(r.static_last),
                f3(r.total),
                signed_pct((r.total - 1.0) * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["configuration", "dyn.", "sta. L1-RT", "sta. 2nd level", "sta. last level", "total", "vs baseline"],
            &rows
        )
    );
}

fn print_hits(study: &Study) {
    let rows: Vec<Vec<String>> = study
        .hit_distribution()
        .into_iter()
        .map(|row| {
            let mut cells = vec![
                row.label.clone(),
                match row.suite {
                    Suite::Integer => "Int.".to_owned(),
                    Suite::FloatingPoint => "FP.".to_owned(),
                },
            ];
            let levels: Vec<String> = row
                .level_percent
                .iter()
                .map(|v| format!("{v:.1}"))
                .collect();
            cells.push(levels.join(" / "));
            cells.push(format!("{:.1}", row.all_levels_percent));
            cells.push(format!("{:.3}", row.avg_to_min_transport));
            cells
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["configuration", "suite", "Le2 / Le3 / ... (%)", "all levels (%)", "avg/min transport"],
            &rows
        )
    );
}
