//! Table I — architectural and network parameters.
//!
//! This binary does not simulate anything: it prints the configuration
//! defaults the rest of the harness uses, so a reader can check them against
//! the paper's Table I in one glance.

use lnuca_sim::configs;
use lnuca_sim::report::format_table;

fn main() {
    let l1 = configs::paper_l1();
    let l2 = configs::paper_l2();
    let l3 = configs::paper_l3();
    let mem = configs::paper_memory();
    let lnuca = lnuca_core::LNucaConfig::default();
    let dnuca = lnuca_dnuca::DNucaConfig::paper();
    let core = lnuca_cpu::CoreConfig::paper();

    println!("Table I — architectural and network parameters (simulator defaults)\n");

    let cache_rows = vec![
        cache_row("L1 / r-tile", &l1),
        cache_row("L2", &l2),
        cache_row("L3", &l3),
        vec![
            "L-NUCA tile".to_owned(),
            format!("{} KB", lnuca.tile_size_bytes / 1024),
            format!("{}-way", lnuca.tile_ways),
            format!("{} B", lnuca.block_size),
            "1 / 1".to_owned(),
            "copy-back".to_owned(),
        ],
        vec![
            "D-NUCA bank".to_owned(),
            format!("{} KB", dnuca.bank_size_bytes / 1024),
            format!("{}-way", dnuca.bank_ways),
            format!("{} B", dnuca.block_size),
            format!("{} / {}", dnuca.bank_completion_cycles, dnuca.bank_initiation_interval),
            "copy-back".to_owned(),
        ],
    ];
    println!(
        "{}",
        format_table(
            &["cache", "size", "assoc", "block", "completion/initiation", "write policy"],
            &cache_rows
        )
    );

    let core_rows = vec![
        vec!["fetch / issue / commit width".to_owned(), format!("{} / {}+{} / {}", core.fetch_width, core.issue_width_int_mem, core.issue_width_fp, core.commit_width)],
        vec!["ROB / LSQ".to_owned(), format!("{} / {}", core.rob_size, core.lsq_size)],
        vec!["INT / FP / MEM issue windows".to_owned(), format!("{} / {} / {}", core.int_window, core.fp_window, core.mem_window)],
        vec!["store buffer".to_owned(), core.store_buffer_size.to_string()],
        vec!["branch mispredict penalty".to_owned(), format!("{} cycles", core.mispredict_penalty)],
        vec!["MSHRs L1 / L2 / L3".to_owned(), format!("{} / {} / {}", configs::L1_MSHRS, configs::L2_MSHRS, configs::L3_MSHRS)],
        vec!["MSHR secondary misses".to_owned(), configs::MSHR_SECONDARY.to_string()],
        vec!["L2/L3 write buffers".to_owned(), format!("{0} / {0}", configs::WRITE_BUFFER_ENTRIES)],
        vec!["main memory".to_owned(), format!("{} + {} cycles/chunk, {} B wires", mem.first_chunk_cycles, mem.inter_chunk_cycles, mem.chunk_bytes)],
        vec!["D-NUCA mesh".to_owned(), format!("{}x{} banks, {} VCs, {} B flits", dnuca.cols, dnuca.rows, dnuca.virtual_channels, dnuca.flit_bytes)],
        vec!["L-NUCA buffers".to_owned(), format!("{} entries per link", lnuca.buffer_entries)],
    ];
    println!("{}", format_table(&["core / memory parameter", "value"], &core_rows));
}

fn cache_row(name: &str, cfg: &lnuca_mem::CacheConfig) -> Vec<String> {
    vec![
        name.to_owned(),
        format!("{} KB", cfg.size_bytes / 1024),
        format!("{}-way", cfg.ways),
        format!("{} B", cfg.block_size),
        format!("{} / {}", cfg.completion_cycles, cfg.initiation_interval),
        match cfg.write_policy {
            lnuca_mem::WritePolicy::WriteThrough => "write-through".to_owned(),
            lnuca_mem::WritePolicy::CopyBack => "copy-back".to_owned(),
        },
    ]
}
