//! Table I — architectural and network parameters.
//!
//! This binary does not simulate anything: it prints the configuration
//! defaults the rest of the harness uses, so a reader can check them against
//! the paper's Table I in one glance.

fn main() {
    println!("Table I — architectural and network parameters (simulator defaults)\n");
    lnuca_bench::cli::print_table1();
}
