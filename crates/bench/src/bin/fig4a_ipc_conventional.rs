//! Fig. 4(a) — harmonic-mean IPC of the conventional baseline (`L2-256KB`)
//! and the L-NUCA configurations (`LN2/LN3/LN4` + L3), per suite.

use lnuca_bench::cli::{figure_main, Section};

fn main() {
    figure_main(
        "paper-conventional",
        "Fig. 4(a) — IPC harmonic mean, conventional hierarchy study",
        &[Section::IpcSummary],
        "Paper reference: LN2 +5.4% Int / +14.3% FP ... LN4 +6.2% Int / +15.4% FP vs L2-256KB.",
    );
}
