//! Fig. 4(a) — harmonic-mean IPC of the conventional baseline (`L2-256KB`)
//! and the L-NUCA configurations (`LN2/LN3/LN4` + L3), per suite.

use lnuca_bench::{f3, options_from_env, signed_pct};
use lnuca_sim::experiments::Study;
use lnuca_sim::report::format_table;

fn main() {
    let opts = options_from_env();
    eprintln!(
        "running the conventional study: {} instructions x {} levels {:?} ...",
        opts.instructions,
        opts.benchmarks_per_suite.map_or("all".to_owned(), |n| n.to_string()),
        opts.lnuca_levels
    );
    let study = Study::conventional(&opts).expect("paper configurations are valid");

    println!("Fig. 4(a) — IPC harmonic mean, conventional hierarchy study\n");
    let rows: Vec<Vec<String>> = study
        .ipc_summary()
        .into_iter()
        .map(|r| {
            vec![
                r.label,
                f3(r.int_ipc),
                signed_pct(r.int_gain_pct),
                f3(r.fp_ipc),
                signed_pct(r.fp_gain_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["configuration", "Integer IPC", "vs baseline", "FP IPC", "vs baseline"],
            &rows
        )
    );
    println!("Paper reference: LN2 +5.4% Int / +14.3% FP ... LN4 +6.2% Int / +15.4% FP vs L2-256KB.");
}
