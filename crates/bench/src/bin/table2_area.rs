//! Table II — conventional and L-NUCA areas.
//!
//! Prints the paper's published areas next to the values produced by the
//! analytical area model, for the baseline and the three L-NUCA sizes.

use lnuca_sim::experiments::area_table;
use lnuca_sim::report::format_table;

fn main() {
    println!("Table II — conventional and L-NUCA areas (L1 + second level)\n");
    let rows: Vec<Vec<String>> = area_table()
        .into_iter()
        .map(|row| {
            vec![
                row.label.clone(),
                row.paper_mm2.map_or("—".to_owned(), |v| format!("{v:.2}")),
                format!("{:.2}", row.model_mm2),
                row.paper_network_pct
                    .map_or("—".to_owned(), |v| format!("{v:.1}%")),
                format!("{:.1}%", row.model_network_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["configuration", "paper area (mm2)", "model area (mm2)", "paper network share", "model network share"],
            &rows
        )
    );
    let table = area_table();
    let baseline = table[0].model_mm2;
    let ln3 = table[2].model_mm2;
    println!(
        "LN3-144KB vs L2-256KB area change: {:+.1}% (paper: -5.3%)",
        (ln3 / baseline - 1.0) * 100.0
    );
}
