//! Table II — conventional and L-NUCA areas.
//!
//! Prints the paper's published areas next to the values produced by the
//! analytical area model, for the baseline and the three L-NUCA sizes.

use lnuca_sim::experiments::area_table;

fn main() {
    println!("Table II — conventional and L-NUCA areas (L1 + second level)\n");
    lnuca_bench::cli::print_area_table();
    let table = area_table();
    let baseline = table[0].model_mm2;
    let ln3 = table[2].model_mm2;
    println!(
        "LN3-144KB vs L2-256KB area change: {:+.1}% (paper: -5.3%)",
        (ln3 / baseline - 1.0) * 100.0
    );
}
