//! `lnuca` — the declarative scenario runner: lists built-in scenarios,
//! loads `lnuca-scenario/v1` JSON files, layers the `LNUCA_*` environment
//! knobs on top, runs the plan through `Study::run`, prints the text tables
//! and emits the structured `lnuca-report/v1` document.
//!
//! ```text
//! lnuca list
//! lnuca run paper-conventional --report report.json
//! lnuca run scenarios/ln3-no-l3.json
//! lnuca validate scenarios/*.json
//! lnuca export deep-stack > scenarios/deep-stack.json
//! lnuca check-report report.json
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(lnuca_bench::cli::cli_main(&args));
}
