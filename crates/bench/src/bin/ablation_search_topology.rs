//! Ablation — Search network topology (§III-A).
//!
//! The paper argues for a broadcast tree over the NUCA-style 2-D mesh for
//! the Search operation: the tree reaches every tile in `levels − 1` hops,
//! needs one link per tile, and adding an L-NUCA level adds a single hop to
//! the maximum distance, while a mesh doubles the hop count and adds more
//! than 50 % extra links. Computed from the tile geometry (no simulation).

fn main() {
    println!("Ablation — Search topology: broadcast tree vs 2-D mesh\n");
    lnuca_bench::cli::print_search_topology();
    println!(
        "Paper reference: the mesh \"would double the number of required hops..., would increase\n\
         the number of links by more than 50%, and would add 2 hops to the maximum distance when\n\
         adding a new level\" (Section III-A)."
    );
}
