//! Ablation — Search network topology (§III-A).
//!
//! The paper argues for a broadcast tree over the NUCA-style 2-D mesh for
//! the Search operation: the tree reaches every tile in `levels − 1` hops,
//! needs one link per tile, and adding an L-NUCA level adds a single hop to
//! the maximum distance, while a mesh doubles the hop count and adds more
//! than 50 % extra links. This binary quantifies that comparison from the
//! tile geometry for every supported fabric size.

use lnuca_core::LNucaGeometry;
use lnuca_sim::report::format_table;

fn main() {
    println!("Ablation — Search topology: broadcast tree vs 2-D mesh\n");
    let mut rows = Vec::new();
    for levels in 2..=6u8 {
        let g = LNucaGeometry::new(levels).expect("levels in supported range");
        let tiles = g.tile_count();
        // Broadcast tree: one incoming link per tile, max distance = levels-1.
        let tree_links = tiles;
        let tree_max_hops = u64::from(levels) - 1;
        // A 2-D mesh search (4-neighbour, bidirectional grid including the
        // root position) would need links between every adjacent pair and
        // reaches the far corner in Manhattan distance.
        let mesh_links = mesh_link_count(&g);
        let mesh_max_hops = g
            .tiles()
            .iter()
            .map(|t| t.manhattan_to_root())
            .max()
            .unwrap_or(0);
        rows.push(vec![
            format!("LN{levels}"),
            tiles.to_string(),
            tree_links.to_string(),
            tree_max_hops.to_string(),
            mesh_links.to_string(),
            mesh_max_hops.to_string(),
            format!("{:+.0}%", (mesh_links as f64 / tree_links as f64 - 1.0) * 100.0),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "fabric",
                "tiles",
                "tree links",
                "tree max hops",
                "mesh links",
                "mesh max hops",
                "mesh link overhead"
            ],
            &rows
        )
    );
    println!(
        "Paper reference: the mesh \"would double the number of required hops..., would increase\n\
         the number of links by more than 50%, and would add 2 hops to the maximum distance when\n\
         adding a new level\" (Section III-A)."
    );
}

/// Number of directed links of a 4-neighbour mesh over the tile grid plus
/// the root position.
fn mesh_link_count(g: &LNucaGeometry) -> usize {
    let mut nodes: Vec<(i16, i16)> = g.tiles().iter().map(|t| (t.col, t.row)).collect();
    nodes.push((0, 0));
    let mut links = 0;
    for &(c, r) in &nodes {
        for (dc, dr) in [(1i16, 0i16), (-1, 0), (0, 1), (0, -1)] {
            if nodes.contains(&(c + dc, r + dr)) {
                links += 1;
            }
        }
    }
    links
}
