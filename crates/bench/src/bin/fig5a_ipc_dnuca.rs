//! Fig. 5(a) — harmonic-mean IPC of the D-NUCA baseline (`DN-4x8`) and of
//! the L-NUCA + D-NUCA configurations, per suite.

use lnuca_bench::{f3, options_from_env, signed_pct};
use lnuca_sim::experiments::Study;
use lnuca_sim::report::format_table;

fn main() {
    let opts = options_from_env();
    eprintln!("running the D-NUCA study ({} instructions per run)...", opts.instructions);
    let study = Study::dnuca(&opts).expect("paper configurations are valid");

    println!("Fig. 5(a) — IPC harmonic mean, D-NUCA hierarchy study\n");
    let rows: Vec<Vec<String>> = study
        .ipc_summary()
        .into_iter()
        .map(|r| {
            vec![
                r.label,
                f3(r.int_ipc),
                signed_pct(r.int_gain_pct),
                f3(r.fp_ipc),
                signed_pct(r.fp_gain_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["configuration", "Integer IPC", "vs baseline", "FP IPC", "vs baseline"],
            &rows
        )
    );
    println!("Paper reference: roughly +4.5% Int / +7% FP for every L-NUCA size; LN2 + DN-4x8 gets +4.2% / +6.8%.");
}
