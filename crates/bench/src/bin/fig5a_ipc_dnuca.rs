//! Fig. 5(a) — harmonic-mean IPC of the D-NUCA baseline (`DN-4x8`) and of
//! the L-NUCA + D-NUCA configurations, per suite.

use lnuca_bench::cli::{figure_main, Section};

fn main() {
    figure_main(
        "paper-dnuca",
        "Fig. 5(a) — IPC harmonic mean, D-NUCA hierarchy study",
        &[Section::IpcSummary],
        "Paper reference: roughly +4.5% Int / +7% FP for every L-NUCA size; LN2 + DN-4x8 gets +4.2% / +6.8%.",
    );
}
