//! Fig. 5(b) — total energy normalised to `DN-4x8`, split into the paper's
//! four bar segments (dynamic, static L1-RT, static rest-of-tiles, static
//! D-NUCA).

use lnuca_bench::{f3, options_from_env, signed_pct};
use lnuca_sim::experiments::Study;
use lnuca_sim::report::format_table;

fn main() {
    let opts = options_from_env();
    eprintln!("running the D-NUCA study ({} instructions per run)...", opts.instructions);
    let study = Study::dnuca(&opts).expect("paper configurations are valid");

    println!("Fig. 5(b) — total energy normalised to DN-4x8\n");
    let rows: Vec<Vec<String>> = study
        .energy_summary()
        .into_iter()
        .map(|r| {
            vec![
                r.label,
                f3(r.dynamic),
                f3(r.static_l1),
                f3(r.static_second),
                f3(r.static_last),
                f3(r.total),
                signed_pct((r.total - 1.0) * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["configuration", "dyn.", "sta. L1-RT", "sta. RESTT", "sta. D-NUCA", "total", "vs baseline"],
            &rows
        )
    );
    println!("Paper reference: savings from 4.25% (LN2 + DN-4x8) to 0.2% (LN4 + DN-4x8); LN2 + DN-4x8 cuts dynamic energy by 19.8%.");
}
