//! Fig. 5(b) — total energy normalised to `DN-4x8`, split into the paper's
//! four bar segments (dynamic, static L1-RT, static rest-of-tiles, static
//! D-NUCA).

use lnuca_bench::cli::{figure_main, Section};

fn main() {
    figure_main(
        "paper-dnuca",
        "Fig. 5(b) — total energy normalised to DN-4x8",
        &[Section::EnergySummary],
        "Paper reference: savings from 4.25% (LN2 + DN-4x8) to 0.2% (LN4 + DN-4x8); LN2 + DN-4x8 cuts dynamic energy by 19.8%.",
    );
}
