//! Ablation — distributed random routing vs dimension-order routing
//! (§III-B: "This algorithm reduces contention in comparison to dimensional
//! order routing where all the messages with the same source and destination
//! take the same route").
//!
//! Runs the same workloads on a 3-level L-NUCA with both routing policies
//! and compares the average-to-minimum Transport latency ratio (the
//! contention metric of Table III) and the resulting IPC.

use lnuca_bench::{f3, options_from_env};
use lnuca_noc::RoutingPolicy;
use lnuca_sim::configs::{self, HierarchyKind};
use lnuca_sim::report::format_table;
use lnuca_sim::system::System;
use lnuca_types::stats::harmonic_mean;
use lnuca_workloads::suites;

fn main() {
    let opts = options_from_env();
    let per_suite = opts.benchmarks_per_suite.unwrap_or(3).min(11);
    let instructions = opts.instructions.min(100_000);
    let mut workloads = suites::spec_int_like();
    workloads.truncate(per_suite);
    let mut fp = suites::spec_fp_like();
    fp.truncate(per_suite);
    workloads.extend(fp);

    println!("Ablation — Transport/Replacement routing policy (3-level fabric)\n");
    let mut rows = Vec::new();
    for (name, policy) in [
        ("random among valid outputs", RoutingPolicy::RandomValid),
        ("dimension-order (first output)", RoutingPolicy::DimensionOrder),
    ] {
        let mut config = configs::lnuca_hierarchy(3);
        config.lnuca.routing = policy;
        let kind = HierarchyKind::LNucaL3(config);
        let mut ipcs = Vec::new();
        let mut latency_sum = 0u64;
        let mut min_sum = 0u64;
        let mut stalls = 0u64;
        for (i, profile) in workloads.iter().enumerate() {
            let result = System::run_workload(&kind, profile, instructions, opts.seed + i as u64)
                .expect("configuration is valid");
            ipcs.push(result.ipc);
            if let Some(fabric) = &result.hierarchy.lnuca {
                latency_sum += fabric.transport_latency_sum;
                min_sum += fabric.transport_min_latency_sum;
                stalls += fabric.transport_stall_cycles + fabric.replacement_stall_cycles;
            }
        }
        let ratio = if min_sum == 0 { 1.0 } else { latency_sum as f64 / min_sum as f64 };
        rows.push(vec![
            name.to_owned(),
            f3(harmonic_mean(&ipcs).unwrap_or(0.0)),
            format!("{ratio:.4}"),
            stalls.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["routing policy", "harmonic-mean IPC", "avg/min transport latency", "network stall cycles"],
            &rows
        )
    );
    println!("Paper reference: with random distributed routing the avg/min transport latency stays below 1.015.");
}
