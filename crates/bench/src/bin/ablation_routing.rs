//! Ablation — distributed random routing vs dimension-order routing
//! (§III-B: "This algorithm reduces contention in comparison to dimensional
//! order routing where all the messages with the same source and destination
//! take the same route"). The configurations live in the `ablation-routing`
//! scenario (committed as `scenarios/ablation-routing.json`).

use lnuca_bench::cli::{figure_main, Section};

fn main() {
    figure_main(
        "ablation-routing",
        "Ablation — Transport/Replacement routing policy (3-level fabric)",
        &[Section::RoutingAblation],
        "Paper reference: with random distributed routing the avg/min transport latency stays below 1.015.",
    );
}
