//! The headline claim of the abstract / §V-A: replacing the 256 KB L2 with a
//! 3-level L-NUCA saves area, improves IPC for both suites and reduces total
//! energy, all at once.

fn main() {
    lnuca_bench::cli::headline_main();
}
