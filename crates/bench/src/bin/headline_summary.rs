//! The headline claim of the abstract / §V-A: replacing the 256 KB L2 with a
//! 3-level L-NUCA saves area, improves IPC for both suites and reduces total
//! energy, all at once.

use lnuca_bench::{options_from_env, signed_pct};
use lnuca_sim::experiments::{headline, Study};
use lnuca_sim::report::format_table;

fn main() {
    let mut opts = options_from_env();
    if !opts.lnuca_levels.contains(&3) {
        opts.lnuca_levels.push(3);
    }
    eprintln!("running the conventional study ({} instructions per run)...", opts.instructions);
    let study = Study::conventional(&opts).expect("paper configurations are valid");
    let h = headline(&study);

    println!("Headline — LN3-144KB versus L2-256KB\n");
    let rows = vec![
        vec!["area".to_owned(), signed_pct(h.area_change_pct), "-5.3%".to_owned()],
        vec!["Integer IPC".to_owned(), signed_pct(h.int_ipc_gain_pct), "+6.1%".to_owned()],
        vec!["Floating-Point IPC".to_owned(), signed_pct(h.fp_ipc_gain_pct), "+15.0%".to_owned()],
        vec!["total energy".to_owned(), signed_pct(h.energy_change_pct), "-14.2%".to_owned()],
    ];
    println!("{}", format_table(&["metric", "measured", "paper"], &rows));
}
