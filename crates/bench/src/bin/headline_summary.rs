//! The headline claim of the abstract / §V-A: replacing the 256 KB L2 with a
//! 3-level L-NUCA saves area, improves IPC for both suites and reduces total
//! energy, all at once.

use lnuca_bench::{baseline, options_from_env, signed_pct};
use lnuca_sim::experiments::{headline, Study};
use lnuca_sim::report::format_table;
use std::time::Instant;

fn main() {
    let mut opts = options_from_env();
    if !opts.lnuca_levels.contains(&3) {
        opts.lnuca_levels.push(3);
    }
    eprintln!(
        "running the conventional study ({} instructions per run, {} worker thread(s))...",
        opts.instructions, opts.threads
    );
    let started = Instant::now();
    let study = Study::conventional(&opts).expect("paper configurations are valid");
    let wall = started.elapsed().as_secs_f64();
    let simulated: u64 = study.perf.iter().map(|p| p.cycles).sum();
    eprintln!(
        "simulated {:.1} Mcycles in {wall:.3} s wall-clock ({:.0} kcycles/s aggregate)",
        simulated as f64 / 1e6,
        if wall > 0.0 { simulated as f64 / 1_000.0 / wall } else { 0.0 },
    );
    if let Some(path) = baseline::path_from_env(false) {
        let studies = [baseline::StudyPerf {
            name: "conventional",
            wall_seconds: wall,
            runs: &study.perf,
        }];
        let json = baseline::baseline_json(&opts, &studies, wall);
        if let Err(err) = baseline::write(&path, &json) {
            eprintln!("warning: could not write {}: {err}", path.display());
        }
    }
    let h = headline(&study);

    println!("Headline — LN3-144KB versus L2-256KB\n");
    let rows = vec![
        vec!["area".to_owned(), signed_pct(h.area_change_pct), "-5.3%".to_owned()],
        vec!["Integer IPC".to_owned(), signed_pct(h.int_ipc_gain_pct), "+6.1%".to_owned()],
        vec!["Floating-Point IPC".to_owned(), signed_pct(h.fp_ipc_gain_pct), "+15.0%".to_owned()],
        vec!["total energy".to_owned(), signed_pct(h.energy_change_pct), "-14.2%".to_owned()],
    ];
    println!("{}", format_table(&["metric", "measured", "paper"], &rows));
}
