//! Ablation — tile size (§IV: "the largest configuration found for the
//! one-cycle L-NUCA tile was an 8KB-2Way-32B cache").
//!
//! Sweeps the tile capacity of a 3-level L-NUCA and reports total fabric
//! capacity and harmonic-mean IPC for a reduced workload set. Larger tiles
//! add capacity at the same hop distances; the paper caps them at 8 KB only
//! because of the single-cycle timing constraint, which this simulator takes
//! as an input rather than re-deriving.

use lnuca_bench::{f3, options_from_env};
use lnuca_core::LNucaConfig;
use lnuca_sim::configs::{self, HierarchyKind};
use lnuca_sim::report::format_table;
use lnuca_sim::system::System;
use lnuca_types::stats::harmonic_mean;
use lnuca_workloads::suites;

fn main() {
    let opts = options_from_env();
    let per_suite = opts.benchmarks_per_suite.unwrap_or(3).min(11);
    let instructions = opts.instructions.min(100_000);
    let mut workloads = suites::spec_int_like();
    workloads.truncate(per_suite);
    let mut fp = suites::spec_fp_like();
    fp.truncate(per_suite);
    workloads.extend(fp);

    println!("Ablation — L-NUCA tile size (3-level fabric, {instructions} instructions per run)\n");
    let mut rows = Vec::new();
    for tile_kb in [2u64, 4, 8, 16] {
        let mut config = configs::lnuca_hierarchy(3);
        config.lnuca = LNucaConfig {
            tile_size_bytes: tile_kb * 1024,
            ..config.lnuca
        };
        let kind = HierarchyKind::LNucaL3(config);
        let mut ipcs = Vec::new();
        for (i, profile) in workloads.iter().enumerate() {
            let result = System::run_workload(&kind, profile, instructions, opts.seed + i as u64)
                .expect("configuration is valid");
            ipcs.push(result.ipc);
        }
        let capacity = lnuca_core::LNucaGeometry::new(3)
            .expect("3 levels is valid")
            .capacity_bytes(tile_kb * 1024);
        rows.push(vec![
            format!("{tile_kb} KB tiles"),
            format!("{} KB", (capacity + 32 * 1024) / 1024),
            f3(harmonic_mean(&ipcs).unwrap_or(0.0)),
        ]);
    }
    println!(
        "{}",
        format_table(&["tile size", "total capacity (with L1)", "harmonic-mean IPC"], &rows)
    );
    println!("The paper fixes 8 KB tiles; smaller tiles trade capacity for nothing once the\nsingle-cycle constraint is already met, larger tiles would not close timing.");
}
