//! Ablation — tile size (§IV: "the largest configuration found for the
//! one-cycle L-NUCA tile was an 8KB-2Way-32B cache"). The sweep points live
//! in the `ablation-tile-size` scenario (committed as
//! `scenarios/ablation-tile-size.json`); larger tiles add capacity at the
//! same hop distances, and the paper caps them at 8 KB only because of the
//! single-cycle timing constraint, which this simulator takes as an input.

use lnuca_bench::cli::{figure_main, Section};

fn main() {
    figure_main(
        "ablation-tile-size",
        "Ablation — L-NUCA tile size (3-level fabric)",
        &[Section::TileAblation],
        "The paper fixes 8 KB tiles; smaller tiles trade capacity for nothing once the\nsingle-cycle constraint is already met, larger tiles would not close timing.",
    );
}
