//! Prints a per-configuration `kcycles_per_sec` delta table between two
//! `BENCH_baseline.json` files (committed trajectory point vs a freshly
//! generated one). **Warn-only for throughput**: large drops are flagged on
//! stderr, but they never fail the build — CI runs on a noisy 1-core
//! runner, so throughput is tracked, not gated. A document with an
//! *unknown schema version*, however, exits with code 2: comparing fields
//! whose meaning may have changed would silently produce nonsense, so
//! schema drift must be acknowledged here (add the version to
//! `KNOWN_SCHEMAS`) rather than ignored. An *absent fresh file* is the
//! benign case — nothing recorded a fresh point this run — and is reported
//! as exactly that, with the command to generate one, before exiting 0.
//!
//! ```text
//! baseline_delta <committed.json> <fresh.json>
//! ```
//!
//! The reader is the vendored `serde::json` document parser walking the
//! schema emitted by `lnuca_bench::baseline` (`v1` through `v3`
//! documents): each study's `configurations` array carries the
//! per-configuration aggregates this table compares. A `v3` document also
//! records the `batch_size` the point ran at; when the two points differ,
//! the aggregate ratio line below the table is the batched-vs-sequential
//! throughput comparison (DESIGN.md §13) — results are bit-identical
//! across batch sizes, so only this throughput line should move.

use lnuca_sim::report::format_table;
use serde::json;

/// Throughput (kcycles/s) drop in percent beyond which a configuration is
/// flagged.
const WARN_DROP_PCT: f64 = 30.0;

/// Every `BENCH_baseline.json` schema version this reader understands.
/// A document claiming any other version is a hard error (exit 2) — see
/// the module docs.
const KNOWN_SCHEMAS: &[&str] = &[
    "lnuca-bench-baseline/v1",
    "lnuca-bench-baseline/v2",
    "lnuca-bench-baseline/v3",
];

/// One parsed baseline document: run-context metadata plus the
/// per-configuration aggregates.
struct Baseline {
    /// `engine` field (`v2`+), or `?` for a `v1` document.
    engine: String,
    /// `batch_size` field (`v3`+), or `1` for earlier documents (which
    /// predate batching and always ran the per-run path).
    batch_size: String,
    /// `(study, label, wall seconds, simulated cycles, kcycles/s)` rows.
    configurations: Vec<(String, String, f64, u64, f64)>,
}

impl Baseline {
    /// Aggregate throughput over every configuration of every study:
    /// total simulated kilo-cycles over total per-configuration wall time.
    /// `None` when the document carries no timed work.
    fn aggregate_kcps(&self) -> Option<f64> {
        let wall: f64 = self.configurations.iter().map(|c| c.2).sum();
        let cycles: u64 = self.configurations.iter().map(|c| c.3).sum();
        (wall > 0.0 && cycles > 0).then(|| cycles as f64 / 1_000.0 / wall)
    }

    /// Aggregate throughput split by the core count encoded in each
    /// configuration label, sorted ascending — so the trajectory separates
    /// single-core points from CMP ones (whose per-cycle work includes the
    /// directory).
    fn aggregate_kcps_by_cores(&self) -> Vec<(u64, f64)> {
        let mut buckets: std::collections::BTreeMap<u64, (f64, u64)> =
            std::collections::BTreeMap::new();
        for (_, label, wall, cycles, _) in &self.configurations {
            let slot = buckets.entry(core_count(label)).or_insert((0.0, 0));
            slot.0 += wall;
            slot.1 += cycles;
        }
        buckets
            .into_iter()
            .filter(|&(_, (wall, cycles))| wall > 0.0 && cycles > 0)
            .map(|(cores, (wall, cycles))| (cores, cycles as f64 / 1_000.0 / wall))
            .collect()
    }
}

/// The core count a configuration label encodes: a leading `{N}x ` prefix
/// (derived CMP labels, e.g. `4x LN2 + DN-4x8`) or `{N}x-` (sweep labels,
/// e.g. `4x-LN2-t8k-rnd-l3-m1`); everything else is a single-core point.
fn core_count(label: &str) -> u64 {
    let digits = label.chars().take_while(char::is_ascii_digit).count();
    if digits == 0 {
        return 1;
    }
    let rest = &label[digits..];
    if rest.starts_with("x ") || rest.starts_with("x-") {
        label[..digits].parse().unwrap_or(1)
    } else {
        1
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(committed_path), Some(fresh_path)) = (args.next(), args.next()) else {
        eprintln!("usage: baseline_delta <committed.json> <fresh.json>");
        std::process::exit(2);
    };
    // A missing fresh point is not an error — it just means nothing produced
    // one this run (e.g. `all_experiments` was skipped or wrote elsewhere).
    // Say so clearly and exit 0 instead of warning about an unreadable file
    // and printing a table where every committed row looks "gone".
    if !std::path::Path::new(&fresh_path).exists() {
        println!(
            "no fresh point: {fresh_path} does not exist — nothing to compare against \
             {committed_path}."
        );
        println!(
            "generate one with `LNUCA_BENCH_JSON={fresh_path} cargo run --release -p \
             lnuca-bench --bin all_experiments` (or `lnuca-serve --baseline {fresh_path}` \
             through the daemon); skipping the delta table."
        );
        return;
    }
    let committed = read_baseline(&committed_path);
    let fresh = read_baseline(&fresh_path);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut warned = false;
    for (study, label, _, _, new_kcps) in &fresh.configurations {
        let old = committed
            .configurations
            .iter()
            .find(|(s, l, _, _, _)| s == study && l == label)
            .map(|&(_, _, _, _, kcps)| kcps);
        let (old_cell, delta_cell) = match old {
            Some(old_kcps) if old_kcps > 0.0 => {
                let delta = (new_kcps / old_kcps - 1.0) * 100.0;
                if delta < -WARN_DROP_PCT {
                    warned = true;
                    eprintln!(
                        "::warning::throughput drop on {study}/{label}: \
                         {old_kcps:.0} -> {new_kcps:.0} kcycles/s ({delta:+.1}%)"
                    );
                }
                (format!("{old_kcps:.0}"), format!("{delta:+.1}%"))
            }
            _ => ("—".to_owned(), "new".to_owned()),
        };
        rows.push(vec![
            study.clone(),
            label.clone(),
            old_cell,
            format!("{new_kcps:.0}"),
            delta_cell,
        ]);
    }
    for (study, label, _, _, old_kcps) in &committed.configurations {
        if !fresh
            .configurations
            .iter()
            .any(|(s, l, _, _, _)| s == study && l == label)
        {
            rows.push(vec![
                study.clone(),
                label.clone(),
                format!("{old_kcps:.0}"),
                "—".to_owned(),
                "gone".to_owned(),
            ]);
        }
    }

    println!("== Simulator throughput delta (committed vs fresh, kcycles/s) ==\n");
    println!(
        "{}",
        format_table(&["study", "configuration", "committed", "fresh", "delta"], &rows)
    );
    println!(
        "committed point: engine {}, batch size {}; fresh point: engine {}, batch size {}",
        committed.engine, committed.batch_size, fresh.engine, fresh.batch_size
    );
    // Per-core-count aggregates: CMP configurations retire fewer cycles
    // per second of wall time by design (N cores + a directory per
    // cycle), so lumping them into one aggregate would mask single-core
    // regressions behind multicore mix changes.
    let old_by_cores = committed.aggregate_kcps_by_cores();
    let new_by_cores = fresh.aggregate_kcps_by_cores();
    if old_by_cores.len() > 1 || new_by_cores.len() > 1 {
        let mut core_rows: Vec<Vec<String>> = Vec::new();
        let mut counts: Vec<u64> = old_by_cores.iter().chain(&new_by_cores).map(|&(c, _)| c).collect();
        counts.sort_unstable();
        counts.dedup();
        for cores in counts {
            let old = old_by_cores.iter().find(|&&(c, _)| c == cores).map(|&(_, k)| k);
            let new = new_by_cores.iter().find(|&&(c, _)| c == cores).map(|&(_, k)| k);
            let ratio = match (old, new) {
                (Some(o), Some(n)) if o > 0.0 => format!("{:.2}x", n / o),
                _ => "—".to_owned(),
            };
            core_rows.push(vec![
                cores.to_string(),
                old.map_or("—".to_owned(), |k| format!("{k:.0}")),
                new.map_or("—".to_owned(), |k| format!("{k:.0}")),
                ratio,
            ]);
        }
        println!("\nper-core-count aggregate throughput (kcycles/s):\n");
        println!(
            "{}",
            format_table(&["cores", "committed", "fresh", "ratio (fresh/committed)"], &core_rows)
        );
    }
    if let (Some(old_kcps), Some(new_kcps)) = (committed.aggregate_kcps(), fresh.aggregate_kcps()) {
        let context = if committed.batch_size == fresh.batch_size {
            String::new()
        } else {
            format!(
                " — batched (size {}) vs sequential-point (size {})",
                fresh.batch_size, committed.batch_size
            )
        };
        println!(
            "aggregate throughput ratio (fresh/committed): {:.2}x \
             ({new_kcps:.0} vs {old_kcps:.0} kcycles/s){context}",
            new_kcps / old_kcps
        );
    }
    if warned {
        eprintln!(
            "note: drops beyond {WARN_DROP_PCT}% flagged above are informational; \
             this step never fails the build"
        );
    }
}

/// Reads a baseline document, exiting with a warning (and an empty set) if
/// the file is unreadable or malformed — the delta step must never break CI.
fn read_baseline(path: &str) -> Baseline {
    let empty = Baseline {
        engine: "?".to_owned(),
        batch_size: "1".to_owned(),
        configurations: Vec::new(),
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("::warning::cannot read {path}: {err}; skipping comparison");
            return empty;
        }
    };
    let document = match json::parse(&text) {
        Ok(document) => document,
        Err(err) => {
            eprintln!("::warning::{path} is not valid JSON ({err}); skipping comparison");
            return empty;
        }
    };
    // Unknown schema versions are the one hard failure: silently diffing
    // fields whose meaning may have changed would produce a plausible but
    // meaningless table.
    match document.get("schema").and_then(json::Value::as_str) {
        Some(schema) if KNOWN_SCHEMAS.contains(&schema) => {}
        Some(schema) => {
            eprintln!(
                "::error::{path} declares unknown baseline schema {schema:?}; this reader \
                 understands {}. Update baseline_delta (KNOWN_SCHEMAS) alongside the emitter.",
                KNOWN_SCHEMAS.join(", ")
            );
            std::process::exit(2);
        }
        None => {
            eprintln!(
                "::error::{path} has no \"schema\" field; expected one of {}",
                KNOWN_SCHEMAS.join(", ")
            );
            std::process::exit(2);
        }
    }
    let engine = document
        .get("engine")
        .and_then(json::Value::as_str)
        .unwrap_or("?")
        .to_owned();
    // v3 writes a number or the string "full"; earlier schemas (pre-batching,
    // always the per-run path) have no field at all.
    let batch_size = match document.get("batch_size") {
        Some(value) => value
            .as_u64()
            .map(|n| n.to_string())
            .or_else(|| value.as_str().map(str::to_owned))
            .unwrap_or_else(|| "?".to_owned()),
        None => "1".to_owned(),
    };
    let mut configurations = Vec::new();
    let studies = document.get("studies").and_then(json::Value::as_array);
    for study in studies.unwrap_or_default() {
        let Some(name) = study.get("study").and_then(json::Value::as_str) else {
            continue;
        };
        let rows = study
            .get("configurations")
            .and_then(json::Value::as_array)
            .unwrap_or_default();
        for row in rows {
            if let (Some(label), Some(kcps)) = (
                row.get("label").and_then(json::Value::as_str),
                row.get("kcycles_per_sec").and_then(json::Value::as_f64),
            ) {
                let wall = row
                    .get("wall_seconds")
                    .and_then(json::Value::as_f64)
                    .unwrap_or(0.0);
                let cycles = row
                    .get("simulated_cycles")
                    .and_then(json::Value::as_u64)
                    .unwrap_or(0);
                configurations.push((name.to_owned(), label.to_owned(), wall, cycles, kcps));
            }
        }
    }
    Baseline {
        engine,
        batch_size,
        configurations,
    }
}
