//! Prints a per-configuration `kcycles_per_sec` delta table between two
//! `BENCH_baseline.json` files (committed trajectory point vs a freshly
//! generated one). **Warn-only**: large drops are flagged on stderr, but the
//! exit code is always 0 — CI runs on a noisy 1-core runner, so throughput
//! is tracked, not gated.
//!
//! ```text
//! baseline_delta <committed.json> <fresh.json>
//! ```
//!
//! The reader is the vendored `serde::json` document parser walking the
//! schema emitted by `lnuca_bench::baseline` (both `v1` and `v2`
//! documents): each study's `configurations` array carries the
//! per-configuration aggregates this table compares. (Before the JSON
//! module existed this was an ad-hoc line scanner.)

use lnuca_sim::report::format_table;
use serde::json;

/// Throughput (kcycles/s) drop in percent beyond which a configuration is
/// flagged.
const WARN_DROP_PCT: f64 = 30.0;

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(committed_path), Some(fresh_path)) = (args.next(), args.next()) else {
        eprintln!("usage: baseline_delta <committed.json> <fresh.json>");
        std::process::exit(2);
    };
    let committed = read_configurations(&committed_path);
    let fresh = read_configurations(&fresh_path);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut warned = false;
    for (study, label, new_kcps) in &fresh {
        let old = committed
            .iter()
            .find(|(s, l, _)| s == study && l == label)
            .map(|&(_, _, kcps)| kcps);
        let (old_cell, delta_cell) = match old {
            Some(old_kcps) if old_kcps > 0.0 => {
                let delta = (new_kcps / old_kcps - 1.0) * 100.0;
                if delta < -WARN_DROP_PCT {
                    warned = true;
                    eprintln!(
                        "::warning::throughput drop on {study}/{label}: \
                         {old_kcps:.0} -> {new_kcps:.0} kcycles/s ({delta:+.1}%)"
                    );
                }
                (format!("{old_kcps:.0}"), format!("{delta:+.1}%"))
            }
            _ => ("—".to_owned(), "new".to_owned()),
        };
        rows.push(vec![
            study.clone(),
            label.clone(),
            old_cell,
            format!("{new_kcps:.0}"),
            delta_cell,
        ]);
    }
    for (study, label, old_kcps) in &committed {
        if !fresh.iter().any(|(s, l, _)| s == study && l == label) {
            rows.push(vec![
                study.clone(),
                label.clone(),
                format!("{old_kcps:.0}"),
                "—".to_owned(),
                "gone".to_owned(),
            ]);
        }
    }

    println!("== Simulator throughput delta (committed vs fresh, kcycles/s) ==\n");
    println!(
        "{}",
        format_table(&["study", "configuration", "committed", "fresh", "delta"], &rows)
    );
    if warned {
        eprintln!(
            "note: drops beyond {WARN_DROP_PCT}% flagged above are informational; \
             this step never fails the build"
        );
    }
}

/// Reads `(study, label, kcycles_per_sec)` configuration aggregates out of a
/// baseline document, exiting with a warning (and an empty set) if the file
/// is unreadable or malformed — the delta step must never break CI.
fn read_configurations(path: &str) -> Vec<(String, String, f64)> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("::warning::cannot read {path}: {err}; skipping comparison");
            return Vec::new();
        }
    };
    let document = match json::parse(&text) {
        Ok(document) => document,
        Err(err) => {
            eprintln!("::warning::{path} is not valid JSON ({err}); skipping comparison");
            return Vec::new();
        }
    };
    let mut out = Vec::new();
    let studies = document.get("studies").and_then(json::Value::as_array);
    for study in studies.unwrap_or_default() {
        let Some(name) = study.get("study").and_then(json::Value::as_str) else {
            continue;
        };
        let configurations = study
            .get("configurations")
            .and_then(json::Value::as_array)
            .unwrap_or_default();
        for row in configurations {
            if let (Some(label), Some(kcps)) = (
                row.get("label").and_then(json::Value::as_str),
                row.get("kcycles_per_sec").and_then(json::Value::as_f64),
            ) {
                out.push((name.to_owned(), label.to_owned(), kcps));
            }
        }
    }
    out
}
