//! The machine-readable perf baseline (`BENCH_baseline.json`).
//!
//! Every `all_experiments` invocation measures the wall-clock cost and
//! simulated kilo-cycles/sec of each (configuration, benchmark) run and can
//! serialise them here, establishing the repository's perf trajectory: the
//! committed `BENCH_baseline.json` holds the latest recorded point, CI
//! compares a fresh point against it per run (`baseline_delta`, warn-only),
//! and regressions show up as falling `kcycles_per_sec`.
//!
//! Schema history: `lnuca-bench-baseline/v1` (PR 2) had no `engine` field;
//! `v2` adds it (the [`lnuca_sim::system::Engine`] label, e.g.
//! `event-horizon`) so the perf trajectory records which time-stepping
//! engine produced each point; `v3` adds `batch_size` (the
//! `ExperimentOptions::batch_size` the point ran at — a number, or the
//! string `"full"` for one full-width batch per worker chunk) so
//! `baseline_delta` can report batched-vs-sequential throughput ratios.
//! Results are engine- and batch-independent — only the throughput
//! changes.
//!
//! The workspace builds offline (DESIGN.md §8), so the vendored `serde` shim
//! cannot serialise; this module emits the small, flat document by hand. The
//! schema is versioned through the `schema` field.

use lnuca_sim::experiments::{ExperimentOptions, RunPerf};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One timed study (conventional, D-NUCA, ...) to be recorded.
pub struct StudyPerf<'a> {
    /// Study name, e.g. `conventional`.
    pub name: &'a str,
    /// Wall-clock seconds of the whole study (includes scheduling overhead,
    /// so with several workers this is far less than the sum of the runs).
    pub wall_seconds: f64,
    /// Per-run measurements, in result order.
    pub runs: &'a [RunPerf],
}

/// Aggregates `runs` per configuration label, preserving first-appearance
/// order. Returns `(label, run count, wall seconds, simulated cycles,
/// kcycles/sec)` tuples.
#[must_use]
pub fn per_configuration(runs: &[RunPerf]) -> Vec<(String, usize, f64, u64, f64)> {
    let mut rows: Vec<(String, usize, f64, u64, f64)> = Vec::new();
    for run in runs {
        let row = match rows.iter_mut().find(|r| r.0 == run.label) {
            Some(row) => row,
            None => {
                rows.push((run.label.clone(), 0, 0.0, 0, 0.0));
                rows.last_mut().expect("just pushed")
            }
        };
        row.1 += 1;
        row.2 += run.wall_nanos as f64 / 1e9;
        row.3 += run.cycles;
    }
    for row in &mut rows {
        row.4 = if row.2 > 0.0 { row.3 as f64 / 1_000.0 / row.2 } else { 0.0 };
    }
    rows
}

/// Renders the baseline document. `total_wall_seconds` covers everything the
/// caller timed (all studies plus reporting).
#[must_use]
pub fn baseline_json(
    opts: &ExperimentOptions,
    studies: &[StudyPerf<'_>],
    total_wall_seconds: f64,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    push_str_field(&mut out, 1, "schema", "lnuca-bench-baseline/v3");
    push_str_field(&mut out, 1, "engine", opts.engine.label());
    push_raw_field(&mut out, 1, "batch_size", &batch_size_json(opts.batch_size));
    push_raw_field(&mut out, 1, "threads", &opts.threads.to_string());
    push_raw_field(
        &mut out,
        1,
        "available_parallelism",
        &crate::default_threads().to_string(),
    );
    push_raw_field(&mut out, 1, "instructions_per_run", &opts.instructions.to_string());
    push_raw_field(
        &mut out,
        1,
        "benchmarks_per_suite",
        &opts
            .benchmarks_per_suite
            .map_or("null".to_owned(), |n| n.to_string()),
    );
    let levels: Vec<String> = opts.lnuca_levels.iter().map(u8::to_string).collect();
    push_raw_field(&mut out, 1, "lnuca_levels", &format!("[{}]", levels.join(", ")));
    push_raw_field(&mut out, 1, "seed", &opts.seed.to_string());
    push_raw_field(&mut out, 1, "total_wall_seconds", &json_f64(total_wall_seconds));
    out.push_str("  \"studies\": [\n");
    for (si, study) in studies.iter().enumerate() {
        out.push_str("    {\n");
        push_str_field(&mut out, 3, "study", study.name);
        push_raw_field(&mut out, 3, "wall_seconds", &json_f64(study.wall_seconds));
        out.push_str("      \"configurations\": [\n");
        let configs = per_configuration(study.runs);
        for (ci, (label, runs, wall, cycles, kcps)) in configs.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"label\": {}, \"runs\": {runs}, \"wall_seconds\": {}, \
                 \"simulated_cycles\": {cycles}, \"kcycles_per_sec\": {}}}{}\n",
                json_string(label),
                json_f64(*wall),
                json_f64(*kcps),
                trailing_comma(ci, configs.len()),
            );
        }
        out.push_str("      ],\n");
        out.push_str("      \"runs\": [\n");
        for (ri, run) in study.runs.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"label\": {}, \"workload\": {}, \"wall_seconds\": {}, \
                 \"simulated_cycles\": {}, \"kcycles_per_sec\": {}}}{}\n",
                json_string(&run.label),
                json_string(&run.workload),
                json_f64(run.wall_nanos as f64 / 1e9),
                run.cycles,
                json_f64(run.kcycles_per_sec),
                trailing_comma(ri, study.runs.len()),
            );
        }
        out.push_str("      ]\n");
        let _ = write!(out, "    }}{}\n", trailing_comma(si, studies.len()));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Resolves the baseline output path from `LNUCA_BENCH_JSON`.
///
/// * unset — `Some("BENCH_baseline.json")` when `default_on`, else `None`,
/// * empty or `-` — `None` (explicitly disabled),
/// * anything else — that path.
#[must_use]
pub fn path_from_env(default_on: bool) -> Option<PathBuf> {
    match std::env::var("LNUCA_BENCH_JSON") {
        Ok(v) if v.is_empty() || v == "-" => None,
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) if default_on => Some(PathBuf::from("BENCH_baseline.json")),
        Err(_) => None,
    }
}

/// Writes `json` to `path`, reporting the destination on stderr.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write(path: &Path, json: &str) -> std::io::Result<()> {
    std::fs::write(path, json)?;
    eprintln!("perf baseline written to {}", path.display());
    Ok(())
}

/// The `batch_size` field's JSON value: a number, or `"full"` for the
/// `usize::MAX` sentinel (whose literal value is meaningless noise).
#[must_use]
pub fn batch_size_json(batch_size: usize) -> String {
    if batch_size == usize::MAX {
        "\"full\"".to_owned()
    } else {
        batch_size.max(1).to_string()
    }
}

fn push_str_field(out: &mut String, indent: usize, key: &str, value: &str) {
    let _ = writeln!(out, "{}\"{key}\": {},", "  ".repeat(indent), json_string(value));
}

fn push_raw_field(out: &mut String, indent: usize, key: &str, value: &str) {
    let _ = writeln!(out, "{}\"{key}\": {value},", "  ".repeat(indent));
}

fn trailing_comma(index: usize, len: usize) -> &'static str {
    if index + 1 == len {
        ""
    } else {
        ","
    }
}

/// Formats an `f64` as a JSON number (never NaN/Inf, which JSON forbids).
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "0.0".to_owned()
    }
}

/// Escapes a string for JSON. The labels and workload names in this
/// workspace are plain ASCII, but escape defensively anyway.
fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(label: &str, workload: &str, wall_nanos: u64, cycles: u64) -> RunPerf {
        RunPerf {
            label: label.to_owned(),
            workload: workload.to_owned(),
            wall_nanos,
            cycles,
            kcycles_per_sec: cycles as f64 / 1_000.0 / (wall_nanos as f64 / 1e9),
        }
    }

    #[test]
    fn per_configuration_aggregates_in_first_appearance_order() {
        let runs = [
            run("L2-256KB", "int.a", 1_000_000, 5_000),
            run("LN3-144KB", "int.a", 2_000_000, 6_000),
            run("L2-256KB", "fp.b", 3_000_000, 7_000),
        ];
        let rows = per_configuration(&runs);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "L2-256KB");
        assert_eq!(rows[0].1, 2);
        assert_eq!(rows[0].3, 12_000);
        assert_eq!(rows[1].0, "LN3-144KB");
        assert!((rows[0].2 - 0.004).abs() < 1e-12);
        assert!(rows[0].4 > 0.0);
    }

    #[test]
    fn baseline_json_is_structurally_sound() {
        let opts = ExperimentOptions::quick();
        let runs = [run("L2-256KB", "int.compress \"x\"", 1_500_000, 9_000)];
        let studies = [StudyPerf {
            name: "conventional",
            wall_seconds: 0.0015,
            runs: &runs,
        }];
        let json = baseline_json(&opts, &studies, 0.002);
        assert!(json.contains("\"schema\": \"lnuca-bench-baseline/v3\""));
        assert!(json.contains("\"engine\": \"event-horizon\""));
        assert!(json.contains("\"batch_size\": 1"));
        assert!(json.contains("\"kcycles_per_sec\""));
        assert!(json.contains("\\\"x\\\""), "quotes inside names are escaped");
        // Balanced braces/brackets and no trailing commas before closers.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]") && !json.contains(",\n}"));
    }

    #[test]
    fn batch_size_field_uses_the_full_sentinel() {
        assert_eq!(batch_size_json(1), "1");
        assert_eq!(batch_size_json(8), "8");
        assert_eq!(batch_size_json(0), "1", "clamped like the options builder");
        assert_eq!(batch_size_json(usize::MAX), "\"full\"");

        let mut opts = ExperimentOptions::quick();
        opts.batch_size = usize::MAX;
        let json = baseline_json(&opts, &[], 0.001);
        assert!(json.contains("\"batch_size\": \"full\""));
    }

    #[test]
    fn json_f64_never_emits_non_numbers() {
        assert_eq!(json_f64(f64::NAN), "0.0");
        assert_eq!(json_f64(f64::INFINITY), "0.0");
        assert_eq!(json_f64(1.25), "1.250000");
    }
}
