//! The `LNUCA_*` environment knobs, with one layered resolution.
//!
//! Every run is configured through three layers, weakest first:
//!
//! 1. **defaults** — [`ExperimentOptions::default`] (or a scenario's
//!    baked-in options),
//! 2. **scenario file** — whatever the loaded `lnuca-scenario/v1` document
//!    pins,
//! 3. **environment** — the `LNUCA_*` variables, applied last by
//!    [`apply_env`] so a CI job or a quick local override always wins.
//!
//! Before this module each binary parsed its own copy of the variables
//! (`env_u64` was pasted per knob); now the parsing, the layering and the
//! warn-once behaviour live in one place. A malformed value (e.g.
//! `LNUCA_INSTRUCTIONS=10k`) warns on stderr **once per variable per
//! process** — not once per binary that happens to re-read it — and the
//! lower layers' value stays in effect.
//!
//! The variables (see the crate docs for the full prose): `LNUCA_QUICK`,
//! `LNUCA_INSTRUCTIONS`, `LNUCA_BENCHMARKS_PER_SUITE`, `LNUCA_SEED`,
//! `LNUCA_LEVELS`, `LNUCA_WORKLOADS`, `LNUCA_THREADS`, `LNUCA_ENGINE`,
//! `LNUCA_BATCH`, `LNUCA_BENCH_JSON`, plus the run-supervision knobs
//! (DESIGN.md §14): `LNUCA_CYCLE_BUDGET`, `LNUCA_RUN_TIMEOUT_MS`,
//! `LNUCA_LIVELOCK_WINDOW` (all three: `0` = off) and `LNUCA_RETRIES`.
//!
//! The serve daemon (DESIGN.md §15) adds three service knobs resolved
//! here with the same warn-once behaviour: `LNUCA_SERVE_ADDR` (bind
//! address), `LNUCA_QUEUE_DEPTH` (admission-control bound) and
//! `LNUCA_SERVE_WORKERS` (persistent worker count). Command-line flags of
//! `lnuca-serve` override them.
//!
//! The design-space autopilot (DESIGN.md §16) adds two sweep knobs:
//! `LNUCA_SWEEP_EPSILON` (the relative dominance margin ε of the pruning
//! stage) and `LNUCA_SWEEP_PROBE` (the probe-stage instruction budget),
//! applied by [`apply_sweep_env`] together with the regular [`apply_env`]
//! layer over the survivor-stage options.

use lnuca_sim::experiments::{ExperimentOptions, WorkloadSelection};
use lnuca_sim::sweep::SweepConfig;
use lnuca_sim::system::Engine;
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Variables already warned about (per process), so repeated reads of a
/// malformed knob do not spam stderr.
static WARNED: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());

/// Records that `name` produced a warning; `true` if this is the first time
/// (i.e. the caller should actually print it).
fn first_warning(name: &str) -> bool {
    WARNED
        .lock()
        .expect("no holder panics")
        .insert(name.to_owned())
}

/// Emits a one-line warning for a malformed knob, once per variable.
fn warn_malformed(name: &str, raw: &str, expected: &str) {
    if first_warning(name) {
        eprintln!("warning: ignoring {name}={raw:?}: expected {expected}, using the lower layer");
    }
}

/// `true` if `name` is set to anything but the empty string or `0`.
#[must_use]
pub fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Reads `name` as a `u64`, warning (once) on malformed values.
#[must_use]
pub fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match parse_u64(&raw) {
        Some(v) => Some(v),
        None => {
            warn_malformed(name, &raw, "an unsigned integer");
            None
        }
    }
}

/// The pure core of [`env_u64`].
#[must_use]
pub fn parse_u64(raw: &str) -> Option<u64> {
    raw.trim().parse().ok()
}

/// Parses an `LNUCA_ENGINE` value; `None` for anything unrecognised.
#[must_use]
pub fn parse_engine(raw: &str) -> Option<Engine> {
    Engine::parse(raw)
}

/// Parses an `LNUCA_WORKLOADS` value: a keyword selecting a predefined set,
/// or a comma-separated list of profile names (resolved case-insensitively
/// by `suites::by_name` when the study runs — a typo aborts the run with
/// the full list of valid names rather than silently simulating nothing).
/// `None` when the list degenerates to nothing (only separators).
#[must_use]
pub fn parse_workloads(raw: &str) -> Option<WorkloadSelection> {
    if let Some(keyword) = WorkloadSelection::from_keyword(raw) {
        return Some(keyword);
    }
    let names: Vec<String> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    if names.is_empty() {
        None
    } else {
        Some(WorkloadSelection::Named(names))
    }
}

/// Parses an `LNUCA_BENCHMARKS_PER_SUITE` value: a per-suite cap of at
/// least 1. Parsed directly as `usize` — the old path went through `u64`
/// and an `as usize` cast, which silently truncated huge values on 32-bit
/// targets — and `0` is rejected rather than quietly emptying every suite.
#[must_use]
pub fn parse_benchmarks(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Parses an `LNUCA_SWEEP_EPSILON` value: a finite relative dominance
/// margin `>= 0` (`0` = plain Pareto dominance). `None` for negative,
/// non-finite or unparseable values.
#[must_use]
pub fn parse_epsilon(raw: &str) -> Option<f64> {
    raw.trim()
        .parse::<f64>()
        .ok()
        .filter(|e| e.is_finite() && *e >= 0.0)
}

/// Parses an `LNUCA_BATCH` value: a batch size of at least 1, or
/// `full`/`max` for one full-width batch per worker-claimed chunk
/// (`usize::MAX`, see `ExperimentOptions::batch_size`). `None` for `0` or
/// anything unrecognised.
#[must_use]
pub fn parse_batch(raw: &str) -> Option<usize> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "full" | "max" => Some(usize::MAX),
        trimmed => match trimmed.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => None,
        },
    }
}

/// Parses an `LNUCA_LEVELS` value: comma-separated level counts in 2..=8.
/// `None` when nothing valid remains.
#[must_use]
pub fn parse_levels(raw: &str) -> Option<Vec<u8>> {
    let levels: Vec<u8> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&l| (2..=8).contains(&l))
        .collect();
    if levels.is_empty() {
        None
    } else {
        Some(levels)
    }
}

/// The default worker-thread count: one per available hardware thread.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The address `lnuca-serve` binds when neither `--addr` nor
/// `LNUCA_SERVE_ADDR` says otherwise. Loopback on purpose: exposing the
/// daemon beyond the host is a deployment decision, not a default.
pub const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7090";

/// The default admission-control bound on queued jobs (`LNUCA_QUEUE_DEPTH`).
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// `LNUCA_SERVE_ADDR`, or [`DEFAULT_SERVE_ADDR`] when unset/empty.
#[must_use]
pub fn serve_addr() -> String {
    match std::env::var("LNUCA_SERVE_ADDR") {
        Ok(v) if !v.is_empty() => v,
        _ => DEFAULT_SERVE_ADDR.to_owned(),
    }
}

/// `LNUCA_QUEUE_DEPTH` (clamped to at least 1 — a service with no queue at
/// all could never accept work), or [`DEFAULT_QUEUE_DEPTH`] when unset or
/// malformed.
#[must_use]
pub fn queue_depth() -> usize {
    match env_u64("LNUCA_QUEUE_DEPTH") {
        Some(v) => usize::try_from(v).unwrap_or(usize::MAX).max(1),
        None => DEFAULT_QUEUE_DEPTH,
    }
}

/// `LNUCA_SERVE_WORKERS` (clamped to at least 1), defaulting to the
/// hardware thread count capped at 4 — each job fans its own run matrix
/// over `LNUCA_THREADS`, so stacking many service workers on top mostly
/// buys oversubscription.
#[must_use]
pub fn serve_workers() -> usize {
    match env_u64("LNUCA_SERVE_WORKERS") {
        Some(v) => usize::try_from(v).unwrap_or(usize::MAX).max(1),
        None => default_threads().min(4),
    }
}

/// Applies the environment layer on top of `opts` (which carries the
/// defaults-plus-scenario layers already):
///
/// * `LNUCA_QUICK` first rewrites the run scale to the quick-smoke values
///   (5 000 instructions, 2 benchmarks per suite, levels 2–3), then the
///   individual variables override further,
/// * each `LNUCA_*` variable overrides its field when set and well-formed
///   (malformed values warn once and leave the lower layer in effect),
/// * `threads` resolves last: `LNUCA_THREADS` if set, otherwise a
///   scenario-pinned nonzero value, otherwise every hardware thread
///   (`0` in a scenario means "auto").
pub fn apply_env(opts: &mut ExperimentOptions) {
    if env_flag("LNUCA_QUICK") {
        let quick = ExperimentOptions::quick();
        opts.instructions = quick.instructions;
        opts.benchmarks_per_suite = quick.benchmarks_per_suite;
        opts.lnuca_levels = quick.lnuca_levels;
    }
    if let Some(v) = env_u64("LNUCA_INSTRUCTIONS") {
        opts.instructions = v;
    }
    if let Ok(raw) = std::env::var("LNUCA_BENCHMARKS_PER_SUITE") {
        match parse_benchmarks(&raw) {
            Some(n) => opts.benchmarks_per_suite = Some(n),
            None => warn_malformed(
                "LNUCA_BENCHMARKS_PER_SUITE",
                &raw,
                "a per-suite benchmark count >= 1",
            ),
        }
    }
    if let Some(v) = env_u64("LNUCA_SEED") {
        opts.seed = v;
    }
    if let Ok(raw) = std::env::var("LNUCA_LEVELS") {
        match parse_levels(&raw) {
            Some(levels) => opts.lnuca_levels = levels,
            None => warn_malformed("LNUCA_LEVELS", &raw, "comma-separated level counts in 2..=8"),
        }
    }
    if let Ok(raw) = std::env::var("LNUCA_WORKLOADS") {
        match parse_workloads(&raw) {
            Some(selection) => opts.workloads = selection,
            None => warn_malformed(
                "LNUCA_WORKLOADS",
                &raw,
                "paper, extended, adversarial or a comma-separated name list",
            ),
        }
    }
    if let Ok(raw) = std::env::var("LNUCA_ENGINE") {
        match parse_engine(&raw) {
            Some(engine) => opts.engine = engine,
            None => warn_malformed("LNUCA_ENGINE", &raw, "\"event\" or \"cycle\""),
        }
    }
    if let Ok(raw) = std::env::var("LNUCA_BATCH") {
        match parse_batch(&raw) {
            Some(batch) => opts.batch_size = batch,
            None => warn_malformed("LNUCA_BATCH", &raw, "a batch size >= 1, or \"full\""),
        }
    }
    // Supervision watchdogs (DESIGN.md §14): for the three budget knobs an
    // explicit `0` disables the watchdog (the field's None), so a CI job
    // can switch one off even when a scenario pins it.
    if let Some(v) = env_u64("LNUCA_CYCLE_BUDGET") {
        opts.cycle_budget = (v != 0).then_some(v);
    }
    if let Some(v) = env_u64("LNUCA_RUN_TIMEOUT_MS") {
        opts.run_timeout_ms = (v != 0).then_some(v);
    }
    if let Some(v) = env_u64("LNUCA_LIVELOCK_WINDOW") {
        opts.livelock_window = (v != 0).then_some(v);
    }
    if let Some(v) = env_u64("LNUCA_RETRIES") {
        opts.retries = u32::try_from(v).unwrap_or(u32::MAX);
    }
    opts.threads = match env_u64("LNUCA_THREADS") {
        Some(v) => usize::try_from(v).unwrap_or(usize::MAX).max(1),
        None if opts.threads == 0 => default_threads(),
        None => opts.threads,
    };
}

/// Applies the environment layer on top of a sweep configuration:
/// `LNUCA_SWEEP_EPSILON` and `LNUCA_SWEEP_PROBE` override the grid
/// defaults (malformed values warn once, like every knob), and the
/// survivor-stage options go through [`apply_env`] like any experiment —
/// so e.g. `LNUCA_INSTRUCTIONS` scales the expensive stage of a sweep the
/// same way it scales a plain run.
pub fn apply_sweep_env(sweep: &mut SweepConfig) {
    if let Ok(raw) = std::env::var("LNUCA_SWEEP_EPSILON") {
        match parse_epsilon(&raw) {
            Some(epsilon) => sweep.epsilon = epsilon,
            None => warn_malformed(
                "LNUCA_SWEEP_EPSILON",
                &raw,
                "a finite relative margin >= 0 (e.g. 0.02)",
            ),
        }
    }
    if let Ok(raw) = std::env::var("LNUCA_SWEEP_PROBE") {
        match parse_u64(&raw) {
            Some(v) if v >= 1 => sweep.probe_instructions = v,
            _ => warn_malformed("LNUCA_SWEEP_PROBE", &raw, "a probe instruction budget >= 1"),
        }
    }
    apply_env(&mut sweep.options);
}

/// Builds [`ExperimentOptions`] from the `LNUCA_*` environment variables
/// alone: the full-run defaults (100 000 instructions, auto threads) with
/// the environment layer on top.
#[must_use]
pub fn options_from_env() -> ExperimentOptions {
    let mut opts = ExperimentOptions::builder().instructions(100_000).build();
    opts.threads = 0; // auto unless LNUCA_THREADS (or a scenario) pins it
    apply_env(&mut opts);
    opts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_u64_accepts_integers_and_rejects_junk() {
        assert_eq!(parse_u64(" 250 "), Some(250));
        assert_eq!(parse_u64("10k"), None);
        assert_eq!(parse_u64(""), None);
        assert_eq!(parse_u64("-3"), None);
    }

    #[test]
    fn engine_values_parse_and_junk_is_rejected() {
        assert_eq!(parse_engine("event"), Some(Engine::EventHorizon));
        assert_eq!(parse_engine("Event-Horizon"), Some(Engine::EventHorizon));
        assert_eq!(parse_engine("cycle"), Some(Engine::CycleStep));
        assert_eq!(parse_engine(" naive "), Some(Engine::CycleStep));
        assert_eq!(parse_engine("warp9"), None);
    }

    #[test]
    fn workload_values_parse() {
        assert_eq!(parse_workloads("paper"), Some(WorkloadSelection::Paper));
        assert_eq!(parse_workloads(" Extended "), Some(WorkloadSelection::Extended));
        assert_eq!(parse_workloads("ADV"), Some(WorkloadSelection::Adversarial));
        assert_eq!(
            parse_workloads("int.compress, adv.gups"),
            Some(WorkloadSelection::Named(vec![
                "int.compress".to_owned(),
                "adv.gups".to_owned()
            ]))
        );
        assert_eq!(parse_workloads(" , ,, "), None, "separator soup is rejected, not Named([])");
    }

    #[test]
    fn level_lists_parse_with_range_filtering() {
        assert_eq!(parse_levels("2,3,4"), Some(vec![2, 3, 4]));
        assert_eq!(parse_levels(" 5 "), Some(vec![5]));
        assert_eq!(parse_levels("1,9,zzz"), None, "out-of-range and junk leave nothing");
    }

    #[test]
    fn batch_values_parse() {
        assert_eq!(parse_batch("1"), Some(1));
        assert_eq!(parse_batch(" 8 "), Some(8));
        assert_eq!(parse_batch("full"), Some(usize::MAX));
        assert_eq!(parse_batch("MAX"), Some(usize::MAX));
        assert_eq!(parse_batch("0"), None, "a zero batch is meaningless");
        assert_eq!(parse_batch("-2"), None);
        assert_eq!(parse_batch("wide"), None);
    }

    #[test]
    fn benchmark_counts_parse_without_truncation() {
        assert_eq!(parse_benchmarks("1"), Some(1));
        assert_eq!(parse_benchmarks(" 12 "), Some(12));
        assert_eq!(parse_benchmarks("0"), None, "a zero cap would empty every suite");
        assert_eq!(parse_benchmarks("-1"), None);
        assert_eq!(
            parse_benchmarks("36893488147419103232"), // 2^65: would truncate to 0 via `as usize`
            None,
            "counts beyond usize are rejected, not truncated"
        );
    }

    #[test]
    fn epsilon_values_parse_with_range_checks() {
        assert_eq!(parse_epsilon("0.02"), Some(0.02));
        assert_eq!(parse_epsilon(" 0 "), Some(0.0), "0 means plain Pareto dominance");
        assert_eq!(parse_epsilon("-0.1"), None, "a negative margin is meaningless");
        assert_eq!(parse_epsilon("inf"), None);
        assert_eq!(parse_epsilon("NaN"), None);
        assert_eq!(parse_epsilon("two percent"), None);
    }

    #[test]
    fn sweep_env_layer_keeps_the_grid_defaults_when_unset() {
        if std::env::var("LNUCA_SWEEP_EPSILON").is_ok()
            || std::env::var("LNUCA_SWEEP_PROBE").is_ok()
        {
            return; // the env layer would legitimately move the defaults
        }
        let mut sweep = SweepConfig::miniature();
        let (epsilon, probe) = (sweep.epsilon, sweep.probe_instructions);
        apply_sweep_env(&mut sweep);
        assert_eq!(sweep.epsilon, epsilon);
        assert_eq!(sweep.probe_instructions, probe);
        assert!(sweep.options.threads >= 1, "thread auto-resolution still runs");
    }

    #[test]
    fn malformed_warnings_fire_once_per_variable() {
        // The stderr line itself is not capturable here; the once-per-name
        // bookkeeping is.
        assert!(first_warning("TEST_KNOB_A"), "first sighting warns");
        assert!(!first_warning("TEST_KNOB_A"), "second sighting is silent");
        assert!(first_warning("TEST_KNOB_B"), "independent per variable");
    }

    #[test]
    fn env_layer_resolves_auto_threads() {
        // Without LNUCA_THREADS in the environment, a scenario-pinned value
        // survives and the 0 sentinel resolves to the hardware threads.
        // (CI never sets LNUCA_THREADS for unit tests; guard anyway.)
        if std::env::var("LNUCA_THREADS").is_ok() {
            return;
        }
        let mut pinned = ExperimentOptions::quick();
        pinned.threads = 3;
        apply_env(&mut pinned);
        assert_eq!(pinned.threads, 3, "scenario pin survives an unset env");

        let mut auto = ExperimentOptions::quick();
        auto.threads = 0;
        apply_env(&mut auto);
        assert_eq!(auto.threads, default_threads(), "0 means auto");
    }
}
