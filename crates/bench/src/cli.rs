//! The `lnuca` command-line driver and the shared section printers every
//! per-figure binary delegates to.
//!
//! One code path runs every experiment: resolve a scenario (built-in name
//! or `lnuca-scenario/v1` file), layer the `LNUCA_*` environment knobs on
//! top of its options ([`crate::knobs`]), hand the plan to
//! [`Study::run`], print the requested table sections, and optionally emit
//! the `lnuca-report/v1` JSON document. The twelve per-figure binaries are
//! thin `main`s over [`figure_main`] / the `*_main` drivers here; the
//! `lnuca` binary exposes the whole surface as subcommands
//! (`list` / `run` / `validate` / `export` / `check-report` /
//! `ingest` / `sweep`).

use crate::{baseline, f3, knobs, signed_pct};
use lnuca_sim::experiments::{area_table, headline, ExperimentPlan, Study};
use lnuca_sim::report::format_table;
use lnuca_sim::scenario::{self, Scenario};
use lnuca_sim::sweep::SweepConfig;
use lnuca_workloads::{trace, Suite};
use std::path::Path;
use std::time::Instant;

/// One printable table of a study (the sections the figure binaries pick
/// from).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Fig. 4(a) / 5(a): harmonic-mean IPC per suite.
    IpcSummary,
    /// Fig. 4(b) / 5(b): normalised stacked energy.
    EnergySummary,
    /// Table III: read hits per fabric level vs the baseline's second level.
    HitDistribution,
    /// Simulator wall-clock throughput (host metric, not modelled time).
    Throughput,
    /// Tile-size ablation extras: fabric capacity next to the IPC.
    TileAblation,
    /// Routing ablation extras: transport contention next to the IPC.
    RoutingAblation,
}

/// A scenario plus where it came from: the built-in registry or a file.
/// The distinction matters because only *registry* paper scenarios may
/// regenerate their configuration matrix from `LNUCA_LEVELS` — a file the
/// user edited must run exactly the configurations it spells out.
#[derive(Debug, Clone)]
pub struct ResolvedScenario {
    /// The scenario itself.
    pub scenario: Scenario,
    /// `true` when resolved from the built-in registry (not a file).
    pub from_registry: bool,
}

/// Resolves a scenario argument: an existing file path (or anything
/// path-like) loads as a scenario document, everything else is looked up in
/// the built-in registry.
///
/// # Errors
///
/// Returns a printable message (I/O, parse or unknown-name).
pub fn resolve_scenario(arg: &str) -> Result<ResolvedScenario, String> {
    let path_like = arg.ends_with(".json") || arg.contains('/') || Path::new(arg).exists();
    if path_like {
        let text = std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?;
        let scenario = Scenario::from_json(&text).map_err(|e| format!("{arg}: {e}"))?;
        Ok(ResolvedScenario {
            scenario,
            from_registry: false,
        })
    } else {
        let scenario = scenario::builtin(arg).map_err(|e| e.to_string())?;
        Ok(ResolvedScenario {
            scenario,
            from_registry: true,
        })
    }
}

/// Applies the environment layer to a resolved scenario and returns the
/// plan to run. The two **registry** paper scenarios regenerate their
/// configuration list from the layered options so `LNUCA_LEVELS` keeps
/// working exactly as it did for the old per-figure binaries; every
/// file-loaded scenario (even one reusing a registry name) keeps its own
/// configurations.
///
/// # Errors
///
/// Returns a printable message for invalid layered options.
pub fn resolved_plan(resolved: &ResolvedScenario) -> Result<ExperimentPlan, String> {
    let mut options = resolved.scenario.plan.options.clone();
    knobs::apply_env(&mut options);
    if resolved.from_registry {
        match resolved.scenario.name() {
            "paper-conventional" => {
                return ExperimentPlan::paper_conventional(&options).map_err(|e| e.to_string())
            }
            "paper-dnuca" => {
                return ExperimentPlan::paper_dnuca(&options).map_err(|e| e.to_string())
            }
            _ => {}
        }
    }
    let mut plan = resolved.scenario.plan.clone();
    plan.options = options;
    Ok(plan)
}

/// Runs a plan, timing it.
///
/// # Errors
///
/// Returns a printable message for configuration errors.
pub fn run_plan(plan: &ExperimentPlan) -> Result<(Study, f64), String> {
    run_plan_journaled(plan, None, false)
}

/// [`run_plan`] with an optional crash-safe journal: with `journal` set,
/// completed runs are appended to that file as they finish and — with
/// `resume` — a journal left by an interrupted invocation of the same plan
/// is continued instead of restarted (`Study::run_journaled`).
///
/// # Errors
///
/// Returns a printable message for configuration and journal errors.
pub fn run_plan_journaled(
    plan: &ExperimentPlan,
    journal: Option<&str>,
    resume: bool,
) -> Result<(Study, f64), String> {
    let batch = match plan.options.batch_size {
        0 | 1 => String::new(),
        usize::MAX => ", full-width batches".to_owned(),
        n => format!(", batches of {n}"),
    };
    eprintln!(
        "running {:?}: {} configuration(s), {} instructions per run, {} worker thread(s){batch}",
        plan.name,
        plan.configs.len(),
        plan.options.instructions,
        plan.options.threads,
    );
    let started = Instant::now();
    let study = match journal {
        Some(path) => {
            Study::run_journaled(plan, std::path::Path::new(path), resume)
                .map_err(|e| e.to_string())?
        }
        None => Study::run(plan).map_err(|e| e.to_string())?,
    };
    Ok((study, started.elapsed().as_secs_f64()))
}

/// Prints the requested sections of a finished study.
pub fn print_sections(plan: &ExperimentPlan, study: &Study, wall_seconds: f64, sections: &[Section]) {
    for section in sections {
        match section {
            Section::IpcSummary => print_ipc(study),
            Section::EnergySummary => print_energy(study),
            Section::HitDistribution => print_hits(study),
            Section::Throughput => print_throughput(&[baseline::StudyPerf {
                name: &plan.name,
                wall_seconds,
                runs: &study.perf,
            }]),
            Section::TileAblation => print_tile_ablation(plan, study),
            Section::RoutingAblation => print_routing_ablation(study),
        }
    }
}

/// The standard `lnuca run` driver for one scenario argument: resolve,
/// layer, run, print, optionally write the report.
///
/// # Errors
///
/// Returns a printable message.
pub fn run_scenario(arg: &str, report_path: Option<&str>) -> Result<(), String> {
    run_scenario_batched(arg, report_path, None)
}

/// [`run_scenario`] with an explicit batch size override (the
/// `lnuca run --batch-size` flag), applied above every other layer —
/// including `LNUCA_BATCH`.
///
/// # Errors
///
/// Returns a printable message.
pub fn run_scenario_batched(
    arg: &str,
    report_path: Option<&str>,
    batch_size: Option<usize>,
) -> Result<(), String> {
    run_scenario_supervised(arg, report_path, batch_size, None, false).map(|_| ())
}

/// The full `lnuca run` driver: [`run_scenario_batched`] plus the
/// `--journal`/`--resume` flags. Returns how many runs of the study failed
/// (the report is still printed and written — a supervised failure must
/// not discard its siblings' results — but the caller should exit
/// nonzero).
///
/// # Errors
///
/// Returns a printable message.
pub fn run_scenario_supervised(
    arg: &str,
    report_path: Option<&str>,
    batch_size: Option<usize>,
    journal: Option<&str>,
    resume: bool,
) -> Result<usize, String> {
    let resolved = resolve_scenario(arg)?;
    let scenario = &resolved.scenario;
    if !scenario.description.is_empty() {
        eprintln!("{}: {}", scenario.name(), scenario.description);
    }
    let mut plan = resolved_plan(&resolved)?;
    if let Some(batch) = batch_size {
        plan.options.batch_size = batch.max(1);
    }
    let (study, wall) = run_plan_journaled(&plan, journal, resume)?;
    let mut sections = vec![Section::IpcSummary, Section::EnergySummary];
    if study.results.iter().any(|r| r.hierarchy.lnuca.is_some()) {
        sections.push(Section::HitDistribution);
    }
    sections.push(Section::Throughput);
    print_sections(&plan, &study, wall, &sections);
    if let Some(path) = report_path {
        let report = scenario::report_value(&plan, &study);
        std::fs::write(path, report.to_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("report written to {path} ({})", scenario::REPORT_SCHEMA);
    }
    for failure in &study.failures {
        eprintln!(
            "failed: {}/{} (seed {}) [{}] after {} attempt(s): {}",
            failure.label,
            failure.workload,
            failure.seed,
            failure.error.status(),
            failure.attempts,
            failure.error,
        );
    }
    Ok(study.failures.len())
}

/// Shared driver of the per-figure binaries: run a built-in scenario and
/// print one titled section set plus the paper-reference footer.
pub fn figure_main(scenario_name: &str, title: &str, sections: &[Section], footer: &str) {
    let resolved = ResolvedScenario {
        scenario: scenario::builtin(scenario_name).expect("figure binaries name built-ins"),
        from_registry: true,
    };
    let plan = resolved_plan(&resolved).expect("layered paper options are valid");
    let (study, wall) = run_plan(&plan).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    println!("{title}\n");
    print_sections(&plan, &study, wall, sections);
    if !footer.is_empty() {
        println!("{footer}");
    }
}

// ---------------------------------------------------------------------------
// Section printers (shared by the figure binaries and `lnuca run`)
// ---------------------------------------------------------------------------

/// Fig. 4(a) / 5(a): harmonic-mean IPC per suite, per configuration.
pub fn print_ipc(study: &Study) {
    let rows: Vec<Vec<String>> = study
        .ipc_summary()
        .into_iter()
        .map(|r| {
            vec![
                r.label,
                f3(r.int_ipc),
                signed_pct(r.int_gain_pct),
                f3(r.fp_ipc),
                signed_pct(r.fp_gain_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["configuration", "Integer IPC", "vs baseline", "FP IPC", "vs baseline"],
            &rows
        )
    );
}

/// Fig. 4(b) / 5(b): stacked energy normalised to the baseline.
pub fn print_energy(study: &Study) {
    let rows: Vec<Vec<String>> = study
        .energy_summary()
        .into_iter()
        .map(|r| {
            vec![
                r.label,
                f3(r.dynamic),
                f3(r.static_l1),
                f3(r.static_second),
                f3(r.static_last),
                f3(r.total),
                signed_pct((r.total - 1.0) * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["configuration", "dyn.", "sta. L1-RT", "sta. 2nd level", "sta. last level", "total", "vs baseline"],
            &rows
        )
    );
}

/// Table III: per-level fabric read hits relative to the baseline's second
/// level.
pub fn print_hits(study: &Study) {
    let rows: Vec<Vec<String>> = study
        .hit_distribution()
        .into_iter()
        .map(|row| {
            let levels: Vec<String> = row.level_percent.iter().map(|v| format!("{v:.1}")).collect();
            vec![
                row.label.clone(),
                match row.suite {
                    Suite::Integer => "Int.".to_owned(),
                    Suite::FloatingPoint => "FP.".to_owned(),
                },
                levels.join(" / "),
                format!("{:.1}", row.all_levels_percent),
                format!("{:.3}", row.avg_to_min_transport),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["configuration", "suite", "Le2 / Le3 / ... (%)", "all levels (%)", "avg/min transport"],
            &rows
        )
    );
}

/// Simulator wall-clock throughput per configuration (host metric).
pub fn print_throughput(studies: &[baseline::StudyPerf<'_>]) {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for study in studies {
        for (label, runs, wall, cycles, kcps) in baseline::per_configuration(study.runs) {
            rows.push(vec![
                study.name.to_owned(),
                label,
                runs.to_string(),
                format!("{wall:.3}"),
                format!("{:.1}", cycles as f64 / 1e6),
                format!("{kcps:.0}"),
            ]);
        }
        rows.push(vec![
            study.name.to_owned(),
            "(whole study)".to_owned(),
            study.runs.len().to_string(),
            format!("{:.3}", study.wall_seconds),
            format!(
                "{:.1}",
                study.runs.iter().map(|r| r.cycles).sum::<u64>() as f64 / 1e6
            ),
            String::new(),
        ]);
    }
    println!("== Simulator throughput (wall-clock, not modelled time) ==\n");
    println!(
        "{}",
        format_table(
            &["study", "configuration", "runs", "wall s", "Mcycles", "kcycles/s"],
            &rows
        )
    );
}

/// Tile-size ablation: fabric capacity (from the plan's specs) next to the
/// harmonic-mean IPC over every run of each configuration.
pub fn print_tile_ablation(plan: &ExperimentPlan, study: &Study) {
    let mut rows = Vec::new();
    for spec in &plan.configs {
        let label = spec.label();
        let capacity = spec.fabric.as_ref().map(|fabric| {
            let tiles = lnuca_core::LNucaGeometry::new(fabric.levels)
                .map(|g| g.capacity_bytes(fabric.tile_size_bytes))
                .unwrap_or(0);
            (fabric.tile_size_bytes, (tiles + spec.root.size_bytes) / 1024)
        });
        let ipcs: Vec<f64> = study.results_for(&label).map(|r| r.ipc).collect();
        rows.push(vec![
            capacity.map_or("—".to_owned(), |(tile, _)| format!("{} KB tiles", tile / 1024)),
            capacity.map_or("—".to_owned(), |(_, kb)| format!("{kb} KB")),
            f3(lnuca_types::stats::harmonic_mean(&ipcs).unwrap_or(0.0)),
        ]);
    }
    println!(
        "{}",
        format_table(&["tile size", "total capacity (with L1)", "harmonic-mean IPC"], &rows)
    );
}

/// Routing ablation: IPC, the avg/min Transport latency ratio (the Table III
/// contention metric) and network stall cycles per routing policy.
pub fn print_routing_ablation(study: &Study) {
    let mut rows = Vec::new();
    for label in &study.configs {
        let mut ipcs = Vec::new();
        let mut latency_sum = 0u64;
        let mut min_sum = 0u64;
        let mut stalls = 0u64;
        for result in study.results_for(label) {
            ipcs.push(result.ipc);
            if let Some(fabric) = &result.hierarchy.lnuca {
                latency_sum += fabric.transport_latency_sum;
                min_sum += fabric.transport_min_latency_sum;
                stalls += fabric.transport_stall_cycles + fabric.replacement_stall_cycles;
            }
        }
        let ratio = if min_sum == 0 { 1.0 } else { latency_sum as f64 / min_sum as f64 };
        rows.push(vec![
            label.clone(),
            f3(lnuca_types::stats::harmonic_mean(&ipcs).unwrap_or(0.0)),
            format!("{ratio:.4}"),
            stalls.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["configuration", "harmonic-mean IPC", "avg/min transport latency", "network stall cycles"],
            &rows
        )
    );
}

/// The headline table (abstract/§V-A): LN3-144KB vs L2-256KB.
pub fn print_headline(study: &Study) {
    let h = headline(study);
    println!(
        "{}",
        format_table(
            &["metric", "measured", "paper"],
            &[
                vec!["area".to_owned(), signed_pct(h.area_change_pct), "-5.3%".to_owned()],
                vec!["Integer IPC".to_owned(), signed_pct(h.int_ipc_gain_pct), "+6.1%".to_owned()],
                vec!["Floating-Point IPC".to_owned(), signed_pct(h.fp_ipc_gain_pct), "+15.0%".to_owned()],
                vec!["total energy".to_owned(), signed_pct(h.energy_change_pct), "-14.2%".to_owned()],
            ]
        )
    );
}

/// Table II: the paper's areas next to the analytical model's.
pub fn print_area_table() {
    let rows: Vec<Vec<String>> = area_table()
        .into_iter()
        .map(|row| {
            vec![
                row.label,
                row.paper_mm2.map_or("—".to_owned(), |v| format!("{v:.2}")),
                format!("{:.2}", row.model_mm2),
                row.paper_network_pct.map_or("—".to_owned(), |v| format!("{v:.1}%")),
                format!("{:.1}%", row.model_network_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["configuration", "paper mm2", "model mm2", "paper net %", "model net %"],
            &rows
        )
    );
}

/// Table I: the configuration defaults next to the paper's parameters
/// (no simulation).
pub fn print_table1() {
    let l1 = lnuca_sim::configs::paper_l1();
    let l2 = lnuca_sim::configs::paper_l2();
    let l3 = lnuca_sim::configs::paper_l3();
    let mem = lnuca_sim::configs::paper_memory();
    let lnuca = lnuca_core::LNucaConfig::default();
    let dnuca = lnuca_dnuca::DNucaConfig::paper();
    let core = lnuca_cpu::CoreConfig::paper();

    let cache_row = |name: &str, cfg: &lnuca_mem::CacheConfig| -> Vec<String> {
        vec![
            name.to_owned(),
            format!("{} KB", cfg.size_bytes / 1024),
            format!("{}-way", cfg.ways),
            format!("{} B", cfg.block_size),
            format!("{} / {}", cfg.completion_cycles, cfg.initiation_interval),
            match cfg.write_policy {
                lnuca_mem::WritePolicy::WriteThrough => "write-through".to_owned(),
                lnuca_mem::WritePolicy::CopyBack => "copy-back".to_owned(),
            },
        ]
    };

    let cache_rows = vec![
        cache_row("L1 / r-tile", &l1),
        cache_row("L2", &l2),
        cache_row("L3", &l3),
        vec![
            "L-NUCA tile".to_owned(),
            format!("{} KB", lnuca.tile_size_bytes / 1024),
            format!("{}-way", lnuca.tile_ways),
            format!("{} B", lnuca.block_size),
            "1 / 1".to_owned(),
            "copy-back".to_owned(),
        ],
        vec![
            "D-NUCA bank".to_owned(),
            format!("{} KB", dnuca.bank_size_bytes / 1024),
            format!("{}-way", dnuca.bank_ways),
            format!("{} B", dnuca.block_size),
            format!("{} / {}", dnuca.bank_completion_cycles, dnuca.bank_initiation_interval),
            "copy-back".to_owned(),
        ],
    ];
    println!(
        "{}",
        format_table(
            &["cache", "size", "assoc", "block", "completion/initiation", "write policy"],
            &cache_rows
        )
    );

    let core_rows = vec![
        vec!["fetch / issue / commit width".to_owned(), format!("{} / {}+{} / {}", core.fetch_width, core.issue_width_int_mem, core.issue_width_fp, core.commit_width)],
        vec!["ROB / LSQ".to_owned(), format!("{} / {}", core.rob_size, core.lsq_size)],
        vec!["INT / FP / MEM issue windows".to_owned(), format!("{} / {} / {}", core.int_window, core.fp_window, core.mem_window)],
        vec!["store buffer".to_owned(), core.store_buffer_size.to_string()],
        vec!["branch mispredict penalty".to_owned(), format!("{} cycles", core.mispredict_penalty)],
        vec!["MSHRs L1 / L2 / L3".to_owned(), format!("{} / {} / {}", lnuca_sim::configs::L1_MSHRS, lnuca_sim::configs::L2_MSHRS, lnuca_sim::configs::L3_MSHRS)],
        vec!["MSHR secondary misses".to_owned(), lnuca_sim::configs::MSHR_SECONDARY.to_string()],
        vec!["L2/L3 write buffers".to_owned(), format!("{0} / {0}", lnuca_sim::configs::WRITE_BUFFER_ENTRIES)],
        vec!["main memory".to_owned(), format!("{} + {} cycles/chunk, {} B wires", mem.first_chunk_cycles, mem.inter_chunk_cycles, mem.chunk_bytes)],
        vec!["D-NUCA mesh".to_owned(), format!("{}x{} banks, {} VCs, {} B flits", dnuca.cols, dnuca.rows, dnuca.virtual_channels, dnuca.flit_bytes)],
        vec!["L-NUCA buffers".to_owned(), format!("{} entries per link", lnuca.buffer_entries)],
    ];
    println!("{}", format_table(&["core / memory parameter", "value"], &core_rows));
}

/// Search-topology ablation (§III-A): broadcast tree vs 2-D mesh, computed
/// from the tile geometry (no simulation).
pub fn print_search_topology() {
    /// Number of directed links of a 4-neighbour mesh over the tile grid
    /// plus the root position.
    fn mesh_link_count(g: &lnuca_core::LNucaGeometry) -> usize {
        let mut nodes: Vec<(i16, i16)> = g.tiles().iter().map(|t| (t.col, t.row)).collect();
        nodes.push((0, 0));
        let mut links = 0;
        for &(c, r) in &nodes {
            for (dc, dr) in [(1i16, 0i16), (-1, 0), (0, 1), (0, -1)] {
                if nodes.contains(&(c + dc, r + dr)) {
                    links += 1;
                }
            }
        }
        links
    }

    let mut rows = Vec::new();
    for levels in 2..=6u8 {
        let g = lnuca_core::LNucaGeometry::new(levels).expect("levels in supported range");
        let tiles = g.tile_count();
        let tree_links = tiles;
        let tree_max_hops = u64::from(levels) - 1;
        let mesh_links = mesh_link_count(&g);
        let mesh_max_hops = g
            .tiles()
            .iter()
            .map(|t| t.manhattan_to_root())
            .max()
            .unwrap_or(0);
        rows.push(vec![
            format!("LN{levels}"),
            tiles.to_string(),
            tree_links.to_string(),
            tree_max_hops.to_string(),
            mesh_links.to_string(),
            mesh_max_hops.to_string(),
            format!("{:+.0}%", (mesh_links as f64 / tree_links as f64 - 1.0) * 100.0),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "fabric",
                "tiles",
                "tree links",
                "tree max hops",
                "mesh links",
                "mesh max hops",
                "mesh link overhead"
            ],
            &rows
        )
    );
}

/// Driver of the `headline_summary` binary: the conventional study with LN3
/// guaranteed present, the optional perf-baseline write, and the headline
/// table.
pub fn headline_main() {
    let scenario = scenario::builtin("paper-conventional").expect("builtin exists");
    let mut options = scenario.plan.options.clone();
    knobs::apply_env(&mut options);
    if !options.lnuca_levels.contains(&3) {
        options.lnuca_levels.push(3);
    }
    let plan = ExperimentPlan::paper_conventional(&options).expect("paper configurations are valid");
    let (study, wall) = run_plan(&plan).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let simulated: u64 = study.perf.iter().map(|p| p.cycles).sum();
    eprintln!(
        "simulated {:.1} Mcycles in {wall:.3} s wall-clock ({:.0} kcycles/s aggregate)",
        simulated as f64 / 1e6,
        if wall > 0.0 { simulated as f64 / 1_000.0 / wall } else { 0.0 },
    );
    if let Some(path) = baseline::path_from_env(false) {
        let studies = [baseline::StudyPerf {
            name: "conventional",
            wall_seconds: wall,
            runs: &study.perf,
        }];
        let json = baseline::baseline_json(&plan.options, &studies, wall);
        if let Err(err) = baseline::write(&path, &json) {
            eprintln!("warning: could not write {}: {err}", path.display());
        }
    }
    println!("Headline — LN3-144KB versus L2-256KB\n");
    print_headline(&study);
}

/// Driver of the `all_experiments` binary: both paper studies once, every
/// table/figure printed from the shared results, and the machine-readable
/// perf baseline.
pub fn all_experiments_main() {
    let wall_start = Instant::now();

    println!("== Table II — conventional and L-NUCA areas ==\n");
    print_area_table();

    let conventional_scenario = ResolvedScenario {
        scenario: scenario::builtin("paper-conventional").expect("builtin exists"),
        from_registry: true,
    };
    let conventional_plan = resolved_plan(&conventional_scenario).expect("layered options are valid");
    let (conventional, conventional_wall) = run_plan(&conventional_plan).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    println!("== Fig. 4(a) — IPC harmonic mean (conventional study) ==\n");
    print_ipc(&conventional);
    println!("== Fig. 4(b) — total energy normalised to L2-256KB ==\n");
    print_energy(&conventional);
    println!("== Table III — read hits per L-NUCA level relative to L2-256KB ==\n");
    print_hits(&conventional);
    println!("== Headline — LN3-144KB vs L2-256KB ==\n");
    print_headline(&conventional);

    let dnuca_scenario = ResolvedScenario {
        scenario: scenario::builtin("paper-dnuca").expect("builtin exists"),
        from_registry: true,
    };
    let dnuca_plan = resolved_plan(&dnuca_scenario).expect("layered options are valid");
    let (dnuca, dnuca_wall) = run_plan(&dnuca_plan).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    println!("== Fig. 5(a) — IPC harmonic mean (D-NUCA study) ==\n");
    print_ipc(&dnuca);
    println!("== Fig. 5(b) — total energy normalised to DN-4x8 ==\n");
    print_energy(&dnuca);

    // The CMP sharing study (DESIGN.md §17) joins the perf trajectory so
    // `baseline_delta` tracks coherent multicore throughput separately
    // from the single-core points.
    let cmp_scenario = ResolvedScenario {
        scenario: scenario::builtin("cmp-sharing").expect("builtin exists"),
        from_registry: true,
    };
    let cmp_plan = resolved_plan(&cmp_scenario).expect("layered options are valid");
    let (cmp, cmp_wall) = run_plan(&cmp_plan).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    let studies = [
        baseline::StudyPerf {
            name: "conventional",
            wall_seconds: conventional_wall,
            runs: &conventional.perf,
        },
        baseline::StudyPerf {
            name: "dnuca",
            wall_seconds: dnuca_wall,
            runs: &dnuca.perf,
        },
        baseline::StudyPerf {
            name: "cmp",
            wall_seconds: cmp_wall,
            runs: &cmp.perf,
        },
    ];
    print_throughput(&studies);

    if let Some(path) = baseline::path_from_env(true) {
        let json = baseline::baseline_json(
            &conventional_plan.options,
            &studies,
            wall_start.elapsed().as_secs_f64(),
        );
        if let Err(err) = baseline::write(&path, &json) {
            eprintln!("warning: could not write {}: {err}", path.display());
        }
    }
}

// ---------------------------------------------------------------------------
// The `lnuca` subcommands
// ---------------------------------------------------------------------------

const USAGE: &str = "\
lnuca — declarative scenario runner for the Light NUCA reproduction

USAGE:
    lnuca list                          list the built-in scenarios
    lnuca run <scenario>... [--report PATH] [--batch-size N|full]
                            [--journal PATH [--resume]]
                                        run built-in scenario(s) or
                                        lnuca-scenario/v1 file(s); --report
                                        (one scenario only) also writes the
                                        lnuca-report/v1 JSON document;
                                        --batch-size steps N simulations in
                                        lockstep per worker (bit-identical
                                        results, DESIGN.md §13);
                                        --journal (one scenario only)
                                        appends completed runs to a
                                        crash-safe lnuca-journal/v1 file and
                                        --resume continues an interrupted
                                        study from it, byte-identical to an
                                        uninterrupted run (DESIGN.md §14);
                                        failed runs are reported with a
                                        structured status and make the exit
                                        code nonzero
    lnuca validate <file>...            strictly parse scenario files
                                        (unknown fields fail)
    lnuca export <name>                 print a built-in scenario as its
                                        canonical JSON document
    lnuca check-report <file>...        validate lnuca-report/v1 documents
    lnuca ingest <dump.txt> [--output PATH]
                                        convert a textual access dump (one
                                        `<r|w> <addr> [pc]` per line, `#`
                                        comments, decimal or 0x hex) into a
                                        compact lnuca-trace/v1 file;
                                        Valgrind lackey --trace-mem dumps
                                        (`I`/`L`/`S`/`M addr,size` lines)
                                        are auto-detected; a malformed line
                                        fails with its line number; the
                                        default output replaces the input
                                        extension with .lnt; the result
                                        replays through any workload slot
                                        that names the .lnt path
    lnuca sweep [--mini] [--epsilon E] [--probe N] [--report PATH]
                                        expand the design-space grid (tile
                                        size x levels x routing x backing x
                                        DRAM timing; 160 points, or the
                                        16-point --mini grid), probe every
                                        point cheaply, prune e-dominated
                                        points, evaluate the survivors with
                                        the batched engine, and print the
                                        Pareto frontier; --report writes
                                        the lnuca-report/v1 document with
                                        the `sweep` extension that
                                        check-report validates

The LNUCA_* environment variables layer on top of every scenario's options
(defaults < scenario file < environment); see the lnuca-bench crate docs.
Sweeps add LNUCA_SWEEP_EPSILON and LNUCA_SWEEP_PROBE (flags win over env).";

/// The `lnuca ingest` driver: read a textual access dump, encode it as
/// `lnuca-trace/v1`, write it, and describe the result.
///
/// # Errors
///
/// Returns a printable message; malformed dump lines carry their 1-based
/// line number ([`lnuca_workloads::IngestError`]).
pub fn ingest_dump(input: &str, output: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let records = trace::ingest_text(&text).map_err(|e| format!("{input}: {e}"))?;
    trace::write_file(output, &records).map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "{output}: {} record(s) in {bytes} bytes ({:.2} bytes/record; the dump was {} bytes)",
        records.len(),
        bytes as f64 / records.len() as f64,
        text.len(),
    ))
}

/// The `lnuca sweep` driver: layer the configuration (grid defaults <
/// `LNUCA_SWEEP_*`/`LNUCA_*` environment < flags), run the sweep, print
/// the pruning outcome and the Pareto frontier, and optionally write the
/// extended `lnuca-report/v1` document. Returns how many survivor runs
/// failed (the frontier and report still cover the siblings).
///
/// # Errors
///
/// Returns a printable message.
pub fn sweep_main(
    mini: bool,
    epsilon: Option<f64>,
    probe: Option<u64>,
    report_path: Option<&str>,
) -> Result<usize, String> {
    let mut config = if mini { SweepConfig::miniature() } else { SweepConfig::grid() };
    knobs::apply_sweep_env(&mut config);
    if let Some(e) = epsilon {
        config.epsilon = e;
    }
    if let Some(p) = probe {
        config.probe_instructions = p;
    }
    eprintln!(
        "{}: probing {} grid point(s) at {} instruction(s) each (epsilon {})",
        config.name,
        config.point_count(),
        config.probe_instructions,
        config.epsilon,
    );
    let start = Instant::now();
    let outcome = config.run().map_err(|e| e.to_string())?;
    println!(
        "pruning: {} point(s) probed, {} pruned as epsilon-dominated, {} survivor(s) \
         evaluated in full",
        outcome.evaluated(),
        outcome.pruned,
        outcome.survivors(),
    );
    let rows: Vec<Vec<String>> = outcome
        .frontier
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                f3(p.ipc),
                format!("{:.1}", p.energy_pj),
                format!("{:.3}", p.area_mm2),
            ]
        })
        .collect();
    println!("\nPareto frontier ({} point(s), IPC vs energy vs area):", rows.len());
    println!("{}", format_table(&["config", "ipc", "energy_pj", "area_mm2"], &rows));
    eprintln!("sweep finished in {:.1}s", start.elapsed().as_secs_f64());
    if let Some(path) = report_path {
        std::fs::write(path, outcome.report_value().to_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("report written to {path} ({})", scenario::REPORT_SCHEMA);
    }
    for failure in &outcome.study.failures {
        eprintln!(
            "failed: {}/{} (seed {}) [{}] after {} attempt(s): {}",
            failure.label,
            failure.workload,
            failure.seed,
            failure.error.status(),
            failure.attempts,
            failure.error,
        );
    }
    Ok(outcome.study.failures.len())
}

/// Entry point of the `lnuca` binary: runs one subcommand, returns the
/// process exit code.
#[must_use]
pub fn cli_main(args: &[String]) -> i32 {
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return 2;
    };
    match command.as_str() {
        "list" => {
            println!("built-in scenarios (run with `lnuca run <name>`; export with `lnuca export <name>`):\n");
            let rows: Vec<Vec<String>> = scenario::builtin_names()
                .into_iter()
                .map(|name| {
                    let s = scenario::builtin(name).expect("listed names resolve");
                    vec![
                        name.to_owned(),
                        s.plan.configs.len().to_string(),
                        s.description,
                    ]
                })
                .collect();
            println!("{}", format_table(&["name", "configs", "description"], &rows));
            0
        }
        "run" => {
            let mut scenarios: Vec<&String> = Vec::new();
            let mut report: Option<&str> = None;
            let mut batch_size: Option<usize> = None;
            let mut journal: Option<&str> = None;
            let mut resume = false;
            let mut iter = rest.iter();
            while let Some(arg) = iter.next() {
                if arg == "--report" {
                    match iter.next() {
                        Some(path) => report = Some(path),
                        None => {
                            eprintln!("error: --report needs a path\n{USAGE}");
                            return 2;
                        }
                    }
                } else if arg == "--batch-size" {
                    match iter.next().and_then(|raw| knobs::parse_batch(raw)) {
                        Some(batch) => batch_size = Some(batch),
                        None => {
                            eprintln!(
                                "error: --batch-size needs a batch size >= 1, or \"full\"\n{USAGE}"
                            );
                            return 2;
                        }
                    }
                } else if arg == "--journal" {
                    match iter.next() {
                        Some(path) => journal = Some(path),
                        None => {
                            eprintln!("error: --journal needs a path\n{USAGE}");
                            return 2;
                        }
                    }
                } else if arg == "--resume" {
                    resume = true;
                } else {
                    scenarios.push(arg);
                }
            }
            if scenarios.is_empty() {
                eprintln!("error: `lnuca run` needs at least one scenario\n{USAGE}");
                return 2;
            }
            if report.is_some() && scenarios.len() > 1 {
                eprintln!("error: --report works with exactly one scenario");
                return 2;
            }
            if journal.is_some() && scenarios.len() > 1 {
                eprintln!("error: --journal works with exactly one scenario");
                return 2;
            }
            if resume && journal.is_none() {
                eprintln!("error: --resume needs --journal\n{USAGE}");
                return 2;
            }
            let mut failed_runs = 0;
            for arg in scenarios {
                match run_scenario_supervised(arg, report, batch_size, journal, resume) {
                    Ok(failures) => failed_runs += failures,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return 1;
                    }
                }
            }
            if failed_runs > 0 {
                eprintln!("error: {failed_runs} run(s) failed (see the failure lines above)");
                return 1;
            }
            0
        }
        "validate" => {
            if rest.is_empty() {
                eprintln!("error: `lnuca validate` needs at least one file\n{USAGE}");
                return 2;
            }
            let mut failed = false;
            for path in rest {
                match std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))
                    .and_then(|text| Scenario::from_json(&text).map_err(|e| e.to_string()))
                {
                    Ok(scenario) => println!(
                        "{path}: OK ({} configuration(s), name {:?})",
                        scenario.plan.configs.len(),
                        scenario.name()
                    ),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        failed = true;
                    }
                }
            }
            i32::from(failed)
        }
        "export" => {
            let [name] = rest else {
                eprintln!("error: `lnuca export` takes exactly one built-in name\n{USAGE}");
                return 2;
            };
            match scenario::builtin(name) {
                Ok(scenario) => {
                    print!("{}", scenario.to_json());
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
        "check-report" => {
            if rest.is_empty() {
                eprintln!("error: `lnuca check-report` needs at least one file\n{USAGE}");
                return 2;
            }
            let mut failed = false;
            for path in rest {
                let outcome = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))
                    .and_then(|text| {
                        serde::json::parse(&text).map_err(|e| e.to_string())
                    })
                    .and_then(|value| scenario::validate_report(&value));
                match outcome {
                    Ok(()) => println!("{path}: OK ({})", scenario::REPORT_SCHEMA),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        failed = true;
                    }
                }
            }
            i32::from(failed)
        }
        "ingest" => {
            let mut input: Option<&String> = None;
            let mut output: Option<String> = None;
            let mut iter = rest.iter();
            while let Some(arg) = iter.next() {
                if arg == "--output" || arg == "-o" {
                    match iter.next() {
                        Some(path) => output = Some(path.clone()),
                        None => {
                            eprintln!("error: --output needs a path\n{USAGE}");
                            return 2;
                        }
                    }
                } else if input.is_none() {
                    input = Some(arg);
                } else {
                    eprintln!("error: `lnuca ingest` converts exactly one dump\n{USAGE}");
                    return 2;
                }
            }
            let Some(input) = input else {
                eprintln!("error: `lnuca ingest` needs an input dump\n{USAGE}");
                return 2;
            };
            let output = output.unwrap_or_else(|| {
                Path::new(input).with_extension("lnt").to_string_lossy().into_owned()
            });
            match ingest_dump(input, &output) {
                Ok(summary) => {
                    println!("{summary}");
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
        "sweep" => {
            let mut mini = false;
            let mut epsilon: Option<f64> = None;
            let mut probe: Option<u64> = None;
            let mut report: Option<&str> = None;
            let mut iter = rest.iter();
            while let Some(arg) = iter.next() {
                if arg == "--mini" {
                    mini = true;
                } else if arg == "--epsilon" {
                    match iter.next().and_then(|raw| knobs::parse_epsilon(raw)) {
                        Some(e) => epsilon = Some(e),
                        None => {
                            eprintln!(
                                "error: --epsilon needs a finite relative margin >= 0\n{USAGE}"
                            );
                            return 2;
                        }
                    }
                } else if arg == "--probe" {
                    match iter.next().and_then(|raw| knobs::parse_u64(raw)).filter(|&v| v >= 1)
                    {
                        Some(p) => probe = Some(p),
                        None => {
                            eprintln!(
                                "error: --probe needs an instruction budget >= 1\n{USAGE}"
                            );
                            return 2;
                        }
                    }
                } else if arg == "--report" {
                    match iter.next() {
                        Some(path) => report = Some(path),
                        None => {
                            eprintln!("error: --report needs a path\n{USAGE}");
                            return 2;
                        }
                    }
                } else {
                    eprintln!("error: unknown sweep argument {arg:?}\n{USAGE}");
                    return 2;
                }
            }
            match sweep_main(mini, epsilon, probe, report) {
                Ok(0) => 0,
                Ok(failures) => {
                    eprintln!("error: {failures} survivor run(s) failed");
                    1
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            0
        }
        other => {
            eprintln!("error: unknown command {other:?}\n{USAGE}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_scenarios_resolve_through_the_cli_resolver() {
        let s = resolve_scenario("paper-conventional").unwrap();
        assert_eq!(s.scenario.name(), "paper-conventional");
        assert!(s.from_registry);
        let err = resolve_scenario("no-such-scenario").unwrap_err();
        assert!(err.contains("paper-dnuca"), "unknown names list the registry: {err}");
    }

    #[test]
    fn file_scenarios_keep_their_configs_even_under_registry_names() {
        // A user-edited copy of a paper scenario must run exactly what it
        // spells out — only *registry* paper scenarios regenerate their
        // matrix from the layered lnuca_levels.
        if std::env::var("LNUCA_LEVELS").is_ok() || std::env::var("LNUCA_QUICK").is_ok() {
            return; // the env layer would legitimately change the registry plan
        }
        let mut edited = scenario::builtin("paper-conventional").unwrap();
        edited.plan.configs.truncate(2); // user dropped LN3/LN4
        let dir = std::env::temp_dir().join("lnuca-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("paper-conventional.json");
        std::fs::write(&path, edited.to_json()).unwrap();

        let resolved = resolve_scenario(path.to_str().unwrap()).unwrap();
        assert!(!resolved.from_registry);
        let plan = resolved_plan(&resolved).unwrap();
        assert_eq!(
            plan.configs.len(),
            2,
            "the file's edited configuration list survives resolution"
        );
    }

    #[test]
    fn ingest_round_trips_a_textual_dump() {
        let dir = std::env::temp_dir().join("lnuca-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let dump = dir.join("ingest-sample.txt");
        let out = dir.join("ingest-sample.lnt");
        std::fs::write(
            &dump,
            "# a tiny dump\nr 0x1000 0x400000\nw 4104 0x400004\nload 0x1010\n",
        )
        .unwrap();
        let code = cli_main(&[
            "ingest".to_owned(),
            dump.to_str().unwrap().to_owned(),
            "--output".to_owned(),
            out.to_str().unwrap().to_owned(),
        ]);
        assert_eq!(code, 0);
        let data = lnuca_workloads::TraceData::load(out.to_str().unwrap()).unwrap();
        let records = data.decode_all().unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].addr, 0x1000);
        assert!(records[1].write);
        assert_eq!(records[2].pc, 0, "a missing pc column defaults to 0");

        // A malformed line fails with its line number in the message.
        std::fs::write(&dump, "r 0x1000\nnot-a-kind 12\n").unwrap();
        let err = ingest_dump(dump.to_str().unwrap(), out.to_str().unwrap()).unwrap_err();
        assert!(err.contains("line 2"), "line numbers survive to the CLI: {err}");
    }

    #[test]
    fn ingest_round_trips_a_lackey_dump() {
        let dir = std::env::temp_dir().join("lnuca-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let dump = dir.join("ingest-lackey.txt");
        let out = dir.join("ingest-lackey.lnt");
        std::fs::write(
            &dump,
            "==99== Lackey banner\nI  400d7d4,4\n L 4f0a828,8\n M 421b7f0,4\n",
        )
        .unwrap();
        let code = cli_main(&[
            "ingest".to_owned(),
            dump.to_str().unwrap().to_owned(),
            "--output".to_owned(),
            out.to_str().unwrap().to_owned(),
        ]);
        assert_eq!(code, 0);
        let records = lnuca_workloads::TraceData::load(out.to_str().unwrap())
            .unwrap()
            .decode_all()
            .unwrap();
        assert_eq!(records.len(), 3, "M expands to load + store");
        assert_eq!(records[0].addr, 0x4f0_a828);
        assert_eq!(records[0].pc, 0x400_d7d4, "the preceding fetch sets the pc");
        assert!(!records[1].write);
        assert!(records[2].write);
        assert_eq!(records[1].addr, records[2].addr);
    }

    #[test]
    fn ingest_and_sweep_flag_errors_are_usage_errors() {
        assert_eq!(cli_main(&["ingest".to_owned()]), 2);
        assert_eq!(
            cli_main(&["ingest".to_owned(), "a.txt".to_owned(), "--output".to_owned()]),
            2
        );
        assert_eq!(
            cli_main(&["sweep".to_owned(), "--epsilon".to_owned(), "-1".to_owned()]),
            2,
            "a negative epsilon is rejected before anything runs"
        );
        assert_eq!(
            cli_main(&["sweep".to_owned(), "--probe".to_owned(), "0".to_owned()]),
            2,
            "a zero probe budget is rejected before anything runs"
        );
        assert_eq!(cli_main(&["sweep".to_owned(), "--frontier".to_owned()]), 2);
    }

    #[test]
    fn missing_files_and_commands_fail_cleanly() {
        assert!(resolve_scenario("does/not/exist.json").unwrap_err().contains("cannot read"));
        assert_eq!(cli_main(&[]), 2);
        assert_eq!(cli_main(&["frobnicate".to_owned()]), 2);
        assert_eq!(cli_main(&["run".to_owned()]), 2);
        assert_eq!(
            cli_main(&["run".to_owned(), "paper-dnuca".to_owned(), "--batch-size".to_owned()]),
            2,
            "--batch-size without a value is a usage error"
        );
        assert_eq!(
            cli_main(&[
                "run".to_owned(),
                "paper-dnuca".to_owned(),
                "--batch-size".to_owned(),
                "0".to_owned()
            ]),
            2,
            "a zero batch is rejected before anything runs"
        );
        assert_eq!(cli_main(&["export".to_owned(), "nope".to_owned()]), 1);
    }
}
