//! Shared plumbing for the experiment binaries and criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper;
//! they all read the same environment variables so a single invocation style
//! covers quick smoke runs and full reproductions:
//!
//! * `LNUCA_INSTRUCTIONS` — instructions per (configuration, benchmark) pair
//!   (default 100 000; the paper simulates 100 M per SimPoint, which is far
//!   beyond what a laptop-scale reproduction needs for stationary synthetic
//!   traces),
//! * `LNUCA_BENCHMARKS_PER_SUITE` — restrict each suite to its first N
//!   benchmarks (default: all eleven),
//! * `LNUCA_LEVELS` — comma-separated L-NUCA level counts (default `2,3,4`),
//! * `LNUCA_SEED` — base seed for the synthetic traces (default 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lnuca_sim::experiments::ExperimentOptions;

/// Builds [`ExperimentOptions`] from the `LNUCA_*` environment variables.
#[must_use]
pub fn options_from_env() -> ExperimentOptions {
    let mut opts = ExperimentOptions {
        instructions: 100_000,
        ..ExperimentOptions::default()
    };
    if let Some(v) = env_u64("LNUCA_INSTRUCTIONS") {
        opts.instructions = v;
    }
    if let Some(v) = env_u64("LNUCA_BENCHMARKS_PER_SUITE") {
        opts.benchmarks_per_suite = Some(v as usize);
    }
    if let Some(v) = env_u64("LNUCA_SEED") {
        opts.seed = v;
    }
    if let Ok(v) = std::env::var("LNUCA_LEVELS") {
        let levels: Vec<u8> = v
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&l| (2..=8).contains(&l))
            .collect();
        if !levels.is_empty() {
            opts.lnuca_levels = levels;
        }
    }
    opts
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Formats a floating-point value with three significant decimals.
#[must_use]
pub fn f3(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a percentage with one decimal and a sign.
#[must_use]
pub fn signed_pct(value: f64) -> String {
    format!("{value:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_sensible() {
        let opts = options_from_env();
        assert!(opts.instructions >= 1_000);
        assert!(!opts.lnuca_levels.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(signed_pct(6.13), "+6.1%");
        assert_eq!(signed_pct(-5.3), "-5.3%");
    }
}
