//! Shared plumbing for the experiment binaries and criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! by delegating to the scenario CLI layer ([`cli`]): a built-in scenario
//! (or any `lnuca-scenario/v1` JSON file) resolves to an
//! `ExperimentPlan`, the `LNUCA_*` environment variables layer on top
//! ([`knobs`]; defaults < scenario file < environment), and one
//! `Study::run` produces every table. The `lnuca` binary exposes the whole
//! surface (`lnuca list` / `run` / `validate` / `export` / `check-report`).
//!
//! The environment variables:
//!
//! * `LNUCA_INSTRUCTIONS` — instructions per (configuration, benchmark) pair
//!   (default 100 000; the paper simulates 100 M per SimPoint, which is far
//!   beyond what a laptop-scale reproduction needs for stationary synthetic
//!   traces),
//! * `LNUCA_BENCHMARKS_PER_SUITE` — restrict each suite to its first N
//!   benchmarks (default: all eleven),
//! * `LNUCA_WORKLOADS` — which profiles the matrix runs over: `paper`
//!   (default, the 22 paper benchmarks), `extended` (alias `all`:
//!   everything the crate ships — paper + the four adversarial
//!   access-pattern classes), `adversarial` (only those four), or a
//!   comma-separated list of profile names resolved case-insensitively
//!   (e.g. `int.compress,adv.gups`; unknown names abort with the valid
//!   list),
//! * `LNUCA_LEVELS` — comma-separated L-NUCA level counts (default `2,3,4`;
//!   applies to the two `paper-*` scenarios, which regenerate their
//!   configuration matrix from it — explicit scenarios pin their configs),
//! * `LNUCA_SEED` — base seed for the synthetic traces (default 1),
//! * `LNUCA_THREADS` — worker threads for the experiment matrix (default:
//!   all available hardware threads, unless the scenario pins a nonzero
//!   count; results are identical at any value, only the wall-clock
//!   changes),
//! * `LNUCA_QUICK` — any value but `0`/empty rewrites the run scale to the
//!   quick-smoke values (5 000 instructions, 2 benchmarks per suite,
//!   levels 2–3); the other variables still override individual fields,
//! * `LNUCA_ENGINE` — time-stepping engine: `event` (default; jump idle
//!   time via the `next_event` horizons of DESIGN.md §10) or `cycle`
//!   (single-step every cycle). Results are bit-identical either way
//!   (`tests/event_horizon_determinism.rs`); only throughput changes, and
//!   the chosen engine is recorded in the baseline's `engine` field,
//! * `LNUCA_BATCH` — simulations stepped in lockstep per worker by one
//!   `BatchRunner` (DESIGN.md §13): a batch size of at least 1 (default 1,
//!   the per-run path) or `full` for one batch per worker-claimed chunk.
//!   Like `LNUCA_THREADS` and `LNUCA_ENGINE` this changes only the wall
//!   clock — every batched run is bit-identical to its solo counterpart
//!   (`tests/batch_equivalence.rs`) — and it is recorded in the baseline's
//!   `batch_size` field,
//! * `LNUCA_BENCH_JSON` — where `all_experiments` writes the machine-readable
//!   perf baseline (default `BENCH_baseline.json`, deliberately the path of
//!   the committed trajectory point — rerunning refreshes it; empty or `-`
//!   disables). `headline_summary` honours it too but only when set; the
//!   single-figure binaries never write it.
//!
//! Malformed values are rejected with a one-line warning on stderr naming
//! the variable and the offending value — once per variable per process —
//! then the lower layer (scenario file or default) stays in effect.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cli;
pub mod knobs;

pub use knobs::{default_threads, options_from_env};

/// Formats a floating-point value with three significant decimals.
#[must_use]
pub fn f3(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a percentage with one decimal and a sign.
#[must_use]
pub fn signed_pct(value: f64) -> String {
    format!("{value:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_sensible() {
        let opts = options_from_env();
        assert!(opts.instructions >= 1_000);
        assert!(!opts.lnuca_levels.is_empty());
        assert!(opts.threads >= 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(signed_pct(6.13), "+6.1%");
        assert_eq!(signed_pct(-5.3), "-5.3%");
    }
}
