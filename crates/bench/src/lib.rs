//! Shared plumbing for the experiment binaries and criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper;
//! they all read the same environment variables so a single invocation style
//! covers quick smoke runs and full reproductions:
//!
//! * `LNUCA_INSTRUCTIONS` — instructions per (configuration, benchmark) pair
//!   (default 100 000; the paper simulates 100 M per SimPoint, which is far
//!   beyond what a laptop-scale reproduction needs for stationary synthetic
//!   traces),
//! * `LNUCA_BENCHMARKS_PER_SUITE` — restrict each suite to its first N
//!   benchmarks (default: all eleven),
//! * `LNUCA_WORKLOADS` — which profiles the matrix runs over: `paper`
//!   (default, the 22 paper benchmarks), `extended` (alias `all`:
//!   everything the crate ships — paper + the four adversarial
//!   access-pattern classes), `adversarial` (only those four), or a
//!   comma-separated list of profile names resolved case-insensitively
//!   (e.g. `int.compress,adv.gups`; unknown names abort with the valid
//!   list),
//! * `LNUCA_LEVELS` — comma-separated L-NUCA level counts (default `2,3,4`),
//! * `LNUCA_SEED` — base seed for the synthetic traces (default 1),
//! * `LNUCA_THREADS` — worker threads for the experiment matrix (default:
//!   all available hardware threads; results are identical at any value,
//!   only the wall-clock changes),
//! * `LNUCA_QUICK` — any value but `0`/empty starts from
//!   [`ExperimentOptions::quick`] instead of the full-run defaults (the
//!   other variables still override individual fields),
//! * `LNUCA_ENGINE` — time-stepping engine: `event` (default; jump idle
//!   time via the `next_event` horizons of DESIGN.md §10) or `cycle`
//!   (single-step every cycle). Results are bit-identical either way
//!   (`tests/event_horizon_determinism.rs`); only throughput changes, and
//!   the chosen engine is recorded in the baseline's `engine` field,
//! * `LNUCA_BENCH_JSON` — where `all_experiments` writes the machine-readable
//!   perf baseline (default `BENCH_baseline.json`, deliberately the path of
//!   the committed trajectory point — rerunning refreshes it; empty or `-`
//!   disables). `headline_summary` honours it too but only when set; the
//!   single-figure binaries never write it.
//!
//! Malformed numeric values are rejected with a one-line warning on stderr
//! naming the variable and the offending value, then the default applies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;

use lnuca_sim::experiments::{ExperimentOptions, WorkloadSelection};
use lnuca_sim::system::Engine;

/// Builds [`ExperimentOptions`] from the `LNUCA_*` environment variables.
#[must_use]
pub fn options_from_env() -> ExperimentOptions {
    let mut opts = if env_flag("LNUCA_QUICK") {
        ExperimentOptions::quick()
    } else {
        ExperimentOptions {
            instructions: 100_000,
            ..ExperimentOptions::default()
        }
    };
    if let Some(v) = env_u64("LNUCA_INSTRUCTIONS") {
        opts.instructions = v;
    }
    if let Some(v) = env_u64("LNUCA_BENCHMARKS_PER_SUITE") {
        opts.benchmarks_per_suite = Some(v as usize);
    }
    if let Some(v) = env_u64("LNUCA_SEED") {
        opts.seed = v;
    }
    if let Ok(v) = std::env::var("LNUCA_LEVELS") {
        let levels: Vec<u8> = v
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&l| (2..=8).contains(&l))
            .collect();
        if !levels.is_empty() {
            opts.lnuca_levels = levels;
        }
    }
    opts.threads = match env_u64("LNUCA_THREADS") {
        Some(v) => usize::try_from(v).unwrap_or(usize::MAX).max(1),
        None => default_threads(),
    };
    if let Ok(raw) = std::env::var("LNUCA_ENGINE") {
        match parse_engine(&raw) {
            Some(engine) => opts.engine = engine,
            None => eprintln!(
                "warning: ignoring LNUCA_ENGINE={raw:?}: expected \"event\" or \"cycle\", using the default"
            ),
        }
    }
    if let Ok(raw) = std::env::var("LNUCA_WORKLOADS") {
        opts.workloads = parse_workloads(&raw);
    }
    opts
}

/// Parses an `LNUCA_WORKLOADS` value: a keyword selecting a predefined set,
/// or a comma-separated list of profile names (resolved case-insensitively
/// by `suites::by_name` when the study runs — a typo aborts the run with
/// the full list of valid names rather than silently simulating nothing).
fn parse_workloads(raw: &str) -> WorkloadSelection {
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "paper" | "default" => WorkloadSelection::Paper,
        "extended" | "all" => WorkloadSelection::Extended,
        "adversarial" | "adv" => WorkloadSelection::Adversarial,
        _ => {
            let names: Vec<String> = raw
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect();
            if names.is_empty() {
                // Only separators/whitespace: an empty Named list would
                // silently simulate nothing, so warn and use the default.
                eprintln!(
                    "warning: ignoring LNUCA_WORKLOADS={raw:?}: no workload names found, \
                     using the paper suites"
                );
                WorkloadSelection::Paper
            } else {
                WorkloadSelection::Named(names)
            }
        }
    }
}

/// Parses an `LNUCA_ENGINE` value; `None` for anything unrecognised.
fn parse_engine(raw: &str) -> Option<Engine> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "event" | "event-horizon" | "horizon" => Some(Engine::EventHorizon),
        "cycle" | "cycle-step" | "step" | "naive" => Some(Engine::CycleStep),
        _ => None,
    }
}

/// The default worker-thread count: one per available hardware thread.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// `true` if `name` is set to anything but the empty string or `0`.
fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

fn env_u64(name: &str) -> Option<u64> {
    parse_env_u64(name, &std::env::var(name).ok()?)
}

/// Parses `raw` as a `u64`, warning on stderr (rather than silently falling
/// back to the default) when the value is malformed.
fn parse_env_u64(name: &str, raw: &str) -> Option<u64> {
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!(
                "warning: ignoring {name}={raw:?}: expected an unsigned integer, using the default"
            );
            None
        }
    }
}

/// Formats a floating-point value with three significant decimals.
#[must_use]
pub fn f3(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a percentage with one decimal and a sign.
#[must_use]
pub fn signed_pct(value: f64) -> String {
    format!("{value:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_sensible() {
        let opts = options_from_env();
        assert!(opts.instructions >= 1_000);
        assert!(!opts.lnuca_levels.is_empty());
        assert!(opts.threads >= 1);
    }

    #[test]
    fn malformed_env_values_are_rejected_not_swallowed() {
        // `parse_env_u64` is the pure core of `env_u64`; the warning itself
        // goes to stderr and is not capturable here.
        assert_eq!(parse_env_u64("LNUCA_INSTRUCTIONS", "10k"), None);
        assert_eq!(parse_env_u64("LNUCA_INSTRUCTIONS", ""), None);
        assert_eq!(parse_env_u64("LNUCA_SEED", "-3"), None);
        assert_eq!(parse_env_u64("LNUCA_INSTRUCTIONS", " 250 "), Some(250));
    }

    #[test]
    fn engine_values_parse_and_junk_is_rejected() {
        assert_eq!(parse_engine("event"), Some(Engine::EventHorizon));
        assert_eq!(parse_engine("Event-Horizon"), Some(Engine::EventHorizon));
        assert_eq!(parse_engine("cycle"), Some(Engine::CycleStep));
        assert_eq!(parse_engine(" naive "), Some(Engine::CycleStep));
        assert_eq!(parse_engine("warp9"), None);
    }

    #[test]
    fn workload_values_parse() {
        assert_eq!(parse_workloads("paper"), WorkloadSelection::Paper);
        assert_eq!(parse_workloads(" Extended "), WorkloadSelection::Extended);
        assert_eq!(parse_workloads("ADV"), WorkloadSelection::Adversarial);
        assert_eq!(
            parse_workloads("int.compress, adv.gups"),
            WorkloadSelection::Named(vec!["int.compress".to_owned(), "adv.gups".to_owned()])
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(signed_pct(6.13), "+6.1%");
        assert_eq!(signed_pct(-5.3), "-5.3%");
    }
}
