//! Lightweight statistics helpers shared by the simulator crates.
//!
//! The paper reports harmonic-mean IPC (Figs. 4a and 5a), per-level hit
//! distributions (Table III) and average-to-minimum latency ratios. This
//! module provides the small building blocks those reports are computed from:
//! a streaming [`Counter`], a [`RunningMean`], a bounded [`Histogram`], and
//! free functions for harmonic/geometric means.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A saturating event counter.
///
/// # Example
///
/// ```
/// use lnuca_types::stats::Counter;
///
/// let mut hits = Counter::new();
/// hits.add(3);
/// hits.incr();
/// assert_eq!(hits.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current count.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A numerically stable running arithmetic mean.
///
/// # Example
///
/// ```
/// use lnuca_types::stats::RunningMean;
///
/// let mut m = RunningMean::new();
/// for v in [2.0, 4.0, 6.0] {
///     m.push(v);
/// }
/// assert_eq!(m.mean(), 4.0);
/// assert_eq!(m.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningMean {
    count: u64,
    mean: f64,
}

impl RunningMean {
    /// Creates an empty mean.
    #[must_use]
    pub fn new() -> Self {
        RunningMean { count: 0, mean: 0.0 }
    }

    /// Adds a sample.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.mean += (value - self.mean) / self.count as f64;
    }

    /// Current mean, or 0.0 if no samples have been pushed.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Number of samples pushed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if no samples have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// A fixed-width histogram of non-negative integer samples with an overflow
/// bucket.
///
/// Used to record transport latencies and queueing delays.
///
/// # Example
///
/// ```
/// use lnuca_types::stats::Histogram;
///
/// let mut h = Histogram::new(4);
/// h.record(0);
/// h.record(2);
/// h.record(2);
/// h.record(99); // lands in the overflow bucket
/// assert_eq!(h.count(2), 2);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    sum: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with buckets for values `0..width`; larger values
    /// are counted in the overflow bucket (but still contribute to the sum
    /// and mean).
    #[must_use]
    pub fn new(width: usize) -> Self {
        Histogram {
            buckets: vec![0; width],
            overflow: 0,
            sum: 0,
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if (value as usize) < self.buckets.len() {
            self.buckets[value as usize] += 1;
        } else {
            self.overflow += 1;
        }
        self.sum += value;
        self.total += 1;
    }

    /// Number of samples equal to `value` (0 if `value` is beyond the bucket
    /// range).
    #[must_use]
    pub fn count(&self, value: u64) -> u64 {
        self.buckets.get(value as usize).copied().unwrap_or(0)
    }

    /// Number of samples that exceeded the bucket range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of all recorded samples, or 0.0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded value, or `None` if empty. Values in the overflow
    /// bucket are not individually tracked and therefore never returned.
    #[must_use]
    pub fn min_bucketed(&self) -> Option<u64> {
        self.buckets
            .iter()
            .position(|&c| c > 0)
            .map(|i| i as u64)
    }
}

/// Harmonic mean of a slice of positive values.
///
/// Returns `None` if the slice is empty or contains a non-positive value.
/// This is the aggregation the paper uses for IPC across benchmarks.
///
/// # Example
///
/// ```
/// use lnuca_types::stats::harmonic_mean;
///
/// let hm = harmonic_mean(&[1.0, 2.0, 4.0]).expect("positive inputs");
/// assert!((hm - 12.0 / 7.0).abs() < 1e-12);
/// assert!(harmonic_mean(&[]).is_none());
/// ```
#[must_use]
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let inv_sum: f64 = values.iter().map(|v| 1.0 / v).sum();
    Some(values.len() as f64 / inv_sum)
}

/// Geometric mean of a slice of positive values.
///
/// Returns `None` if the slice is empty or contains a non-positive value.
#[must_use]
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean of a slice, or `None` if it is empty.
#[must_use]
pub fn arithmetic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn counter_saturates_instead_of_overflowing() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn running_mean_matches_batch_mean() {
        let mut m = RunningMean::new();
        assert!(m.is_empty());
        for v in [1.0, 2.0, 3.0, 4.0] {
            m.push(v);
        }
        assert!((m.mean() - 2.5).abs() < 1e-12);
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn histogram_counts_and_overflows() {
        let mut h = Histogram::new(3);
        for v in [0, 1, 1, 2, 5, 7] {
            h.record(v);
        }
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(10), 0);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 6);
        assert!((h.mean() - 16.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.min_bucketed(), Some(0));
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new(2);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.min_bucketed(), None);
    }

    #[test]
    fn harmonic_mean_known_values() {
        assert!(harmonic_mean(&[2.0, 2.0]).unwrap() - 2.0 < 1e-12);
        assert!(harmonic_mean(&[1.0, 0.0]).is_none());
        assert!(harmonic_mean(&[]).is_none());
    }

    #[test]
    fn geometric_mean_known_values() {
        let gm = geometric_mean(&[1.0, 4.0]).unwrap();
        assert!((gm - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[-1.0]).is_none());
    }

    #[test]
    fn arithmetic_mean_known_values() {
        assert_eq!(arithmetic_mean(&[1.0, 3.0]), Some(2.0));
        assert_eq!(arithmetic_mean(&[]), None);
    }

    proptest! {
        #[test]
        fn harmonic_leq_geometric_leq_arithmetic(values in proptest::collection::vec(0.1f64..100.0, 1..20)) {
            let h = harmonic_mean(&values).unwrap();
            let g = geometric_mean(&values).unwrap();
            let a = arithmetic_mean(&values).unwrap();
            prop_assert!(h <= g + 1e-9);
            prop_assert!(g <= a + 1e-9);
        }

        #[test]
        fn running_mean_is_bounded_by_extremes(values in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
            let mut m = RunningMean::new();
            for &v in &values {
                m.push(v);
            }
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m.mean() >= lo - 1e-6);
            prop_assert!(m.mean() <= hi + 1e-6);
        }

        #[test]
        fn histogram_total_equals_samples(values in proptest::collection::vec(0u64..20, 0..100)) {
            let mut h = Histogram::new(8);
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.total(), values.len() as u64);
            let bucketed: u64 = (0..8).map(|v| h.count(v)).sum();
            prop_assert_eq!(bucketed + h.overflow(), values.len() as u64);
        }
    }
}
