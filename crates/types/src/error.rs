//! Configuration validation errors shared across the workspace.

use std::error::Error;
use std::fmt;

/// An invalid configuration was supplied to a constructor.
///
/// Every constructor in the workspace that accepts a configuration struct
/// validates it and reports problems through this type rather than panicking,
/// so callers can surface actionable messages (which parameter, which value,
/// what the constraint is).
///
/// # Example
///
/// ```
/// use lnuca_types::ConfigError;
///
/// let err = ConfigError::new("tile_size_bytes", "must be a power of two, got 3000");
/// assert_eq!(err.parameter(), "tile_size_bytes");
/// assert!(err.to_string().contains("power of two"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    parameter: String,
    message: String,
}

impl ConfigError {
    /// Creates a new error for `parameter` with a human-readable `message`
    /// describing the violated constraint.
    pub fn new(parameter: impl Into<String>, message: impl Into<String>) -> Self {
        ConfigError {
            parameter: parameter.into(),
            message: message.into(),
        }
    }

    /// The name of the offending configuration parameter.
    #[must_use]
    pub fn parameter(&self) -> &str {
        &self.parameter
    }

    /// The constraint that was violated.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration `{}`: {}", self.parameter, self.message)
    }
}

impl Error for ConfigError {}

/// A lookup by name failed: the caller asked for something this registry
/// does not contain.
///
/// Every "resolve a user-supplied name" path in the workspace — workload
/// profiles (`suites::by_name`), built-in scenarios and configuration
/// presets (the scenario loader) — reports misses through this one type, so
/// a typo always fails with the same shape of message: what was asked for,
/// what kind of thing it was supposed to be, and the complete list of valid
/// names to pick from instead.
///
/// # Example
///
/// ```
/// use lnuca_types::UnknownNameError;
///
/// let err = UnknownNameError::new("workload", "int.compres", ["int.compress", "adv.gups"]);
/// let text = err.to_string();
/// assert!(text.contains("unknown workload \"int.compres\""));
/// assert!(text.contains("int.compress, adv.gups"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownNameError {
    /// What kind of name was looked up ("workload", "scenario", "preset").
    pub kind: &'static str,
    /// The name that was asked for.
    pub given: String,
    /// Every name the registry would have accepted.
    pub valid: Vec<String>,
}

impl UnknownNameError {
    /// Creates an error for a failed `kind` lookup of `given`, listing the
    /// `valid` alternatives.
    pub fn new<I, S>(kind: &'static str, given: impl Into<String>, valid: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        UnknownNameError {
            kind,
            given: given.into(),
            valid: valid.into_iter().map(Into::into).collect(),
        }
    }
}

impl fmt::Display for UnknownNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown {} {:?}; valid names: {}",
            self.kind,
            self.given,
            self.valid.join(", ")
        )
    }
}

impl Error for UnknownNameError {}

/// A supervised run failed.
///
/// The experiment engine (DESIGN.md §14) isolates every job and batch member
/// behind a supervisor; when a run cannot produce a result, the failure is
/// reported through this taxonomy instead of aborting the study. Each variant
/// maps to a stable machine-readable status string (see
/// [`RunError::status`]) that surfaces in the `lnuca-report/v1` per-run
/// `status` field.
///
/// # Example
///
/// ```
/// use lnuca_types::RunError;
///
/// let err = RunError::CycleBudgetExceeded { budget: 1_000, at_cycle: 1_000 };
/// assert_eq!(err.status(), "cycle-budget");
/// assert!(!err.is_transient(), "budget trips are deterministic, never retried");
/// assert!(RunError::is_known_status("livelock"));
/// assert!(!RunError::is_known_status("exploded"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The run panicked; `message` is the stringified panic payload.
    Panic {
        /// Stringified panic payload (or a placeholder for opaque payloads).
        message: String,
    },
    /// The simulated clock reached the configured cycle budget with the
    /// workload still unfinished.
    CycleBudgetExceeded {
        /// The configured budget in cycles.
        budget: u64,
        /// The cycle at which the watchdog tripped.
        at_cycle: u64,
    },
    /// No instruction committed for a whole livelock window.
    Livelock {
        /// The configured no-progress window in cycles.
        window: u64,
        /// The cycle at which the watchdog tripped.
        at_cycle: u64,
        /// Instructions committed when progress stopped.
        committed: u64,
    },
    /// The run's wall-clock exceeded the configured timeout.
    WallClockTimeout {
        /// The configured timeout in milliseconds.
        timeout_ms: u64,
    },
    /// A study journal could not be trusted: unreadable, a foreign schema,
    /// or content-addressing digests that do not match the plan being run.
    JournalCorrupt {
        /// What exactly failed to validate.
        detail: String,
    },
    /// The job's configuration was rejected while building the system.
    Config(ConfigError),
    /// The run's job was cancelled by its submitter before this run
    /// executed (the service layer's per-job cancellation). In-flight runs
    /// are never torn mid-simulation — cancellation is clean at run
    /// granularity, so completed runs of the same job stay valid.
    Cancelled,
    /// The service began a graceful drain (SIGTERM) before this run
    /// executed. Completed runs of the job are journaled; resubmitting the
    /// same scenario against the journal resumes byte-identically.
    Shutdown,
}

/// Every status string a `lnuca-report/v1` per-run `status` field may carry:
/// `"ok"` plus one string per [`RunError`] variant.
pub const RUN_STATUSES: &[&str] = &[
    "ok",
    "panic",
    "cycle-budget",
    "livelock",
    "timeout",
    "journal-corrupt",
    "config",
    "cancelled",
    "shutdown",
];

impl RunError {
    /// The stable machine-readable status string for this failure, as
    /// written to the report's per-run `status` field.
    #[must_use]
    pub fn status(&self) -> &'static str {
        match self {
            RunError::Panic { .. } => "panic",
            RunError::CycleBudgetExceeded { .. } => "cycle-budget",
            RunError::Livelock { .. } => "livelock",
            RunError::WallClockTimeout { .. } => "timeout",
            RunError::JournalCorrupt { .. } => "journal-corrupt",
            RunError::Config(_) => "config",
            RunError::Cancelled => "cancelled",
            RunError::Shutdown => "shutdown",
        }
    }

    /// Whether `status` is a value the report schema admits (`"ok"` or one
    /// of the failure statuses).
    #[must_use]
    pub fn is_known_status(status: &str) -> bool {
        RUN_STATUSES.contains(&status)
    }

    /// Whether the failure is transient — worth one bounded retry — as
    /// opposed to deterministic (a budget or livelock trip reproduces
    /// identically on every attempt, so retrying is wasted work).
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, RunError::Panic { .. } | RunError::WallClockTimeout { .. })
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Panic { message } => write!(f, "run panicked: {message}"),
            RunError::CycleBudgetExceeded { budget, at_cycle } => write!(
                f,
                "cycle budget exceeded: clock reached {at_cycle} with a budget of {budget}"
            ),
            RunError::Livelock { window, at_cycle, committed } => write!(
                f,
                "livelock: no instruction committed for {window} cycles \
                 (stuck at {committed} committed, cycle {at_cycle})"
            ),
            RunError::WallClockTimeout { timeout_ms } => {
                write!(f, "wall-clock timeout: run exceeded {timeout_ms} ms")
            }
            RunError::JournalCorrupt { detail } => write!(f, "study journal corrupt: {detail}"),
            RunError::Config(err) => write!(f, "configuration rejected: {err}"),
            RunError::Cancelled => write!(f, "job cancelled before this run executed"),
            RunError::Shutdown => {
                write!(f, "service drained (SIGTERM) before this run executed")
            }
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Config(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ConfigError> for RunError {
    /// Wraps a constructor rejection so `?` keeps working in supervised run
    /// paths that report [`RunError`].
    fn from(err: ConfigError) -> Self {
        RunError::Config(err)
    }
}

impl From<UnknownNameError> for ConfigError {
    /// Wraps the lookup failure so `?` keeps working in constructors that
    /// report [`ConfigError`] — the full valid-name list survives into the
    /// message.
    fn from(err: UnknownNameError) -> Self {
        ConfigError::new(format!("{} name", err.kind), err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_parameter_and_message() {
        let e = ConfigError::new("levels", "must be between 2 and 8");
        let s = e.to_string();
        assert!(s.contains("levels"));
        assert!(s.contains("between 2 and 8"));
    }

    #[test]
    fn accessors_return_fields() {
        let e = ConfigError::new("ways", "must be nonzero");
        assert_eq!(e.parameter(), "ways");
        assert_eq!(e.message(), "must be nonzero");
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ConfigError>();
        assert_error::<UnknownNameError>();
    }

    #[test]
    fn run_error_statuses_are_stable_and_known() {
        let cases: Vec<(RunError, &str)> = vec![
            (RunError::Panic { message: "boom".into() }, "panic"),
            (RunError::CycleBudgetExceeded { budget: 5, at_cycle: 5 }, "cycle-budget"),
            (RunError::Livelock { window: 8, at_cycle: 20, committed: 3 }, "livelock"),
            (RunError::WallClockTimeout { timeout_ms: 10 }, "timeout"),
            (RunError::JournalCorrupt { detail: "bad digest".into() }, "journal-corrupt"),
            (RunError::Config(ConfigError::new("ways", "must be nonzero")), "config"),
            (RunError::Cancelled, "cancelled"),
            (RunError::Shutdown, "shutdown"),
        ];
        for (err, status) in cases {
            assert_eq!(err.status(), status);
            assert!(RunError::is_known_status(status), "{status} must be in RUN_STATUSES");
            assert!(!err.to_string().is_empty());
        }
        assert!(RunError::is_known_status("ok"));
        assert!(!RunError::is_known_status("OK"), "statuses are case-sensitive");
        assert_eq!(RUN_STATUSES.len(), 9, "one per variant plus ok");
    }

    #[test]
    fn only_panic_and_timeout_are_transient() {
        assert!(RunError::Panic { message: "x".into() }.is_transient());
        assert!(RunError::WallClockTimeout { timeout_ms: 1 }.is_transient());
        assert!(!RunError::CycleBudgetExceeded { budget: 1, at_cycle: 1 }.is_transient());
        assert!(!RunError::Livelock { window: 1, at_cycle: 1, committed: 0 }.is_transient());
        assert!(!RunError::JournalCorrupt { detail: "x".into() }.is_transient());
        assert!(!RunError::Config(ConfigError::new("p", "m")).is_transient());
        assert!(!RunError::Cancelled.is_transient(), "a cancelled job must not retry itself");
        assert!(!RunError::Shutdown.is_transient(), "a draining service must not retry");
    }

    #[test]
    fn config_errors_wrap_into_run_errors() {
        let cfg = ConfigError::new("levels", "must be between 2 and 8");
        let run: RunError = cfg.clone().into();
        assert_eq!(run, RunError::Config(cfg));
        assert!(std::error::Error::source(&run).is_some());
    }

    #[test]
    fn unknown_name_lists_every_valid_alternative() {
        let e = UnknownNameError::new("scenario", "papr", ["paper-conventional", "paper-dnuca"]);
        let s = e.to_string();
        assert!(s.contains("unknown scenario \"papr\""));
        assert!(s.contains("paper-conventional, paper-dnuca"));
        let cfg: ConfigError = e.into();
        assert_eq!(cfg.parameter(), "scenario name");
        assert!(cfg.to_string().contains("paper-dnuca"), "the list survives conversion");
    }
}
