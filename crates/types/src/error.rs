//! Configuration validation errors shared across the workspace.

use std::error::Error;
use std::fmt;

/// An invalid configuration was supplied to a constructor.
///
/// Every constructor in the workspace that accepts a configuration struct
/// validates it and reports problems through this type rather than panicking,
/// so callers can surface actionable messages (which parameter, which value,
/// what the constraint is).
///
/// # Example
///
/// ```
/// use lnuca_types::ConfigError;
///
/// let err = ConfigError::new("tile_size_bytes", "must be a power of two, got 3000");
/// assert_eq!(err.parameter(), "tile_size_bytes");
/// assert!(err.to_string().contains("power of two"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    parameter: String,
    message: String,
}

impl ConfigError {
    /// Creates a new error for `parameter` with a human-readable `message`
    /// describing the violated constraint.
    pub fn new(parameter: impl Into<String>, message: impl Into<String>) -> Self {
        ConfigError {
            parameter: parameter.into(),
            message: message.into(),
        }
    }

    /// The name of the offending configuration parameter.
    #[must_use]
    pub fn parameter(&self) -> &str {
        &self.parameter
    }

    /// The constraint that was violated.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration `{}`: {}", self.parameter, self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_parameter_and_message() {
        let e = ConfigError::new("levels", "must be between 2 and 8");
        let s = e.to_string();
        assert!(s.contains("levels"));
        assert!(s.contains("between 2 and 8"));
    }

    #[test]
    fn accessors_return_fields() {
        let e = ConfigError::new("ways", "must be nonzero");
        assert_eq!(e.parameter(), "ways");
        assert_eq!(e.message(), "must be nonzero");
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ConfigError>();
    }
}
