//! Configuration validation errors shared across the workspace.

use std::error::Error;
use std::fmt;

/// An invalid configuration was supplied to a constructor.
///
/// Every constructor in the workspace that accepts a configuration struct
/// validates it and reports problems through this type rather than panicking,
/// so callers can surface actionable messages (which parameter, which value,
/// what the constraint is).
///
/// # Example
///
/// ```
/// use lnuca_types::ConfigError;
///
/// let err = ConfigError::new("tile_size_bytes", "must be a power of two, got 3000");
/// assert_eq!(err.parameter(), "tile_size_bytes");
/// assert!(err.to_string().contains("power of two"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    parameter: String,
    message: String,
}

impl ConfigError {
    /// Creates a new error for `parameter` with a human-readable `message`
    /// describing the violated constraint.
    pub fn new(parameter: impl Into<String>, message: impl Into<String>) -> Self {
        ConfigError {
            parameter: parameter.into(),
            message: message.into(),
        }
    }

    /// The name of the offending configuration parameter.
    #[must_use]
    pub fn parameter(&self) -> &str {
        &self.parameter
    }

    /// The constraint that was violated.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration `{}`: {}", self.parameter, self.message)
    }
}

impl Error for ConfigError {}

/// A lookup by name failed: the caller asked for something this registry
/// does not contain.
///
/// Every "resolve a user-supplied name" path in the workspace — workload
/// profiles (`suites::by_name`), built-in scenarios and configuration
/// presets (the scenario loader) — reports misses through this one type, so
/// a typo always fails with the same shape of message: what was asked for,
/// what kind of thing it was supposed to be, and the complete list of valid
/// names to pick from instead.
///
/// # Example
///
/// ```
/// use lnuca_types::UnknownNameError;
///
/// let err = UnknownNameError::new("workload", "int.compres", ["int.compress", "adv.gups"]);
/// let text = err.to_string();
/// assert!(text.contains("unknown workload \"int.compres\""));
/// assert!(text.contains("int.compress, adv.gups"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownNameError {
    /// What kind of name was looked up ("workload", "scenario", "preset").
    pub kind: &'static str,
    /// The name that was asked for.
    pub given: String,
    /// Every name the registry would have accepted.
    pub valid: Vec<String>,
}

impl UnknownNameError {
    /// Creates an error for a failed `kind` lookup of `given`, listing the
    /// `valid` alternatives.
    pub fn new<I, S>(kind: &'static str, given: impl Into<String>, valid: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        UnknownNameError {
            kind,
            given: given.into(),
            valid: valid.into_iter().map(Into::into).collect(),
        }
    }
}

impl fmt::Display for UnknownNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown {} {:?}; valid names: {}",
            self.kind,
            self.given,
            self.valid.join(", ")
        )
    }
}

impl Error for UnknownNameError {}

impl From<UnknownNameError> for ConfigError {
    /// Wraps the lookup failure so `?` keeps working in constructors that
    /// report [`ConfigError`] — the full valid-name list survives into the
    /// message.
    fn from(err: UnknownNameError) -> Self {
        ConfigError::new(format!("{} name", err.kind), err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_parameter_and_message() {
        let e = ConfigError::new("levels", "must be between 2 and 8");
        let s = e.to_string();
        assert!(s.contains("levels"));
        assert!(s.contains("between 2 and 8"));
    }

    #[test]
    fn accessors_return_fields() {
        let e = ConfigError::new("ways", "must be nonzero");
        assert_eq!(e.parameter(), "ways");
        assert_eq!(e.message(), "must be nonzero");
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<ConfigError>();
        assert_error::<UnknownNameError>();
    }

    #[test]
    fn unknown_name_lists_every_valid_alternative() {
        let e = UnknownNameError::new("scenario", "papr", ["paper-conventional", "paper-dnuca"]);
        let s = e.to_string();
        assert!(s.contains("unknown scenario \"papr\""));
        assert!(s.contains("paper-conventional, paper-dnuca"));
        let cfg: ConfigError = e.into();
        assert_eq!(cfg.parameter(), "scenario name");
        assert!(cfg.to_string().contains("paper-dnuca"), "the list survives conversion");
    }
}
