//! Memory requests, responses and hit attribution.

use crate::{Addr, Cycle};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of an in-flight memory request.
///
/// Identifiers are allocated by the request originator (the core model or an
/// experiment driver) and carried unchanged through the hierarchy so that
/// completions can be matched back to the issuing instruction.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ReqId(pub u64);

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// The kind of memory access performed by a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A data load (read).
    Read,
    /// A data store (write).
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Read`].
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// Returns `true` for [`AccessKind::Write`].
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// Which hierarchy component ultimately serviced a request.
///
/// This is the attribution used by Table III of the paper (hits per L-NUCA
/// level) and by the energy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceLevel {
    /// The L1 cache / L-NUCA root tile.
    L1,
    /// An L-NUCA tile level (2 = Le2, 3 = Le3, ...).
    LNucaLevel(u8),
    /// The conventional second-level cache.
    L2,
    /// The conventional third-level cache.
    L3,
    /// An intermediate conventional cache at depth `d ≥ 1` behind the first
    /// intermediate level (which reports [`ServiceLevel::L2`]). Only occurs
    /// in deep stacks composed through `lnuca-sim`'s `HierarchySpec`; the
    /// paper's hierarchies never produce it.
    Intermediate(u8),
    /// A D-NUCA bank at the given row distance from the controller (0 = closest).
    DNucaRow(u8),
    /// Main memory.
    Memory,
}

impl ServiceLevel {
    /// Returns the L-NUCA level number if the request was serviced by an
    /// L-NUCA tile, and `None` otherwise.
    #[must_use]
    pub fn lnuca_level(self) -> Option<u8> {
        match self {
            ServiceLevel::LNucaLevel(l) => Some(l),
            _ => None,
        }
    }

    /// Returns `true` if the access was serviced on chip (anywhere but main
    /// memory).
    #[must_use]
    pub fn is_on_chip(self) -> bool {
        !matches!(self, ServiceLevel::Memory)
    }
}

impl fmt::Display for ServiceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceLevel::L1 => write!(f, "L1"),
            ServiceLevel::LNucaLevel(l) => write!(f, "Le{l}"),
            ServiceLevel::L2 => write!(f, "L2"),
            ServiceLevel::L3 => write!(f, "L3"),
            ServiceLevel::Intermediate(d) => write!(f, "intermediate {d}"),
            ServiceLevel::DNucaRow(r) => write!(f, "D-NUCA row {r}"),
            ServiceLevel::Memory => write!(f, "memory"),
        }
    }
}

/// A memory request flowing down the hierarchy.
///
/// # Example
///
/// ```
/// use lnuca_types::{Addr, AccessKind, Cycle, MemRequest, ReqId};
///
/// let req = MemRequest::new(ReqId(7), Addr(0x80), AccessKind::Write, Cycle(3));
/// assert_eq!(req.id, ReqId(7));
/// assert!(req.kind.is_write());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRequest {
    /// Identifier used to match the response.
    pub id: ReqId,
    /// Requested byte address.
    pub addr: Addr,
    /// Read or write.
    pub kind: AccessKind,
    /// Cycle at which the originator issued the request.
    pub issued_at: Cycle,
}

impl MemRequest {
    /// Creates a new request.
    #[must_use]
    pub fn new(id: ReqId, addr: Addr, kind: AccessKind, issued_at: Cycle) -> Self {
        MemRequest {
            id,
            addr,
            kind,
            issued_at,
        }
    }

    /// Convenience constructor for a read request.
    #[must_use]
    pub fn read(id: ReqId, addr: Addr, issued_at: Cycle) -> Self {
        Self::new(id, addr, AccessKind::Read, issued_at)
    }

    /// Convenience constructor for a write request.
    #[must_use]
    pub fn write(id: ReqId, addr: Addr, issued_at: Cycle) -> Self {
        Self::new(id, addr, AccessKind::Write, issued_at)
    }
}

/// A completed memory request, annotated with where and when it was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemResponse {
    /// Identifier of the original request.
    pub id: ReqId,
    /// Address of the original request.
    pub addr: Addr,
    /// Read or write.
    pub kind: AccessKind,
    /// Cycle at which the originator issued the request.
    pub issued_at: Cycle,
    /// Cycle at which the data became available to the originator.
    pub completed_at: Cycle,
    /// Hierarchy component that provided the data.
    pub served_by: ServiceLevel,
}

impl MemResponse {
    /// Builds the response corresponding to `req`, completed at
    /// `completed_at` by `served_by`.
    #[must_use]
    pub fn for_request(req: &MemRequest, completed_at: Cycle, served_by: ServiceLevel) -> Self {
        MemResponse {
            id: req.id,
            addr: req.addr,
            kind: req.kind,
            issued_at: req.issued_at,
            completed_at,
            served_by,
        }
    }

    /// Total latency observed by the originator, in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.completed_at.since(self.issued_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }

    #[test]
    fn service_level_helpers() {
        assert_eq!(ServiceLevel::LNucaLevel(3).lnuca_level(), Some(3));
        assert_eq!(ServiceLevel::L3.lnuca_level(), None);
        assert!(ServiceLevel::L2.is_on_chip());
        assert!(!ServiceLevel::Memory.is_on_chip());
        assert_eq!(ServiceLevel::LNucaLevel(2).to_string(), "Le2");
        assert_eq!(ServiceLevel::DNucaRow(1).to_string(), "D-NUCA row 1");
    }

    #[test]
    fn response_latency_measures_issue_to_completion() {
        let req = MemRequest::read(ReqId(1), Addr(0x40), Cycle(10));
        let resp = MemResponse::for_request(&req, Cycle(35), ServiceLevel::L2);
        assert_eq!(resp.latency(), 25);
        assert_eq!(resp.id, req.id);
        assert_eq!(resp.addr, req.addr);
        assert_eq!(resp.served_by, ServiceLevel::L2);
    }

    #[test]
    fn request_constructors_set_kind() {
        let r = MemRequest::read(ReqId(1), Addr(0), Cycle(0));
        let w = MemRequest::write(ReqId(2), Addr(0), Cycle(0));
        assert!(r.kind.is_read());
        assert!(w.kind.is_write());
    }

    #[test]
    fn req_id_displays_with_hash() {
        assert_eq!(ReqId(12).to_string(), "req#12");
    }
}
