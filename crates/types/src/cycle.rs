//! Simulation time expressed in processor cycles.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in processor clock cycles.
///
/// The whole simulator is clocked at the processor frequency (the paper
/// assumes a 19 FO4 cycle); slower components express their latencies as a
/// number of processor cycles.
///
/// # Example
///
/// ```
/// use lnuca_types::Cycle;
///
/// let start = Cycle(100);
/// let done = start + 20;
/// assert_eq!(done, Cycle(120));
/// assert_eq!(done - start, 20);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero cycle (simulation start).
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the later of two cycles.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two cycles.
    #[must_use]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Returns the number of cycles elapsed since `earlier`, saturating at
    /// zero if `earlier` is in the future.
    #[must_use]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns this cycle advanced by one.
    #[must_use]
    pub fn next(self) -> Cycle {
        Cycle(self.0 + 1)
    }

    /// Folds the event time `at`, clamped to be no earlier than `floor`,
    /// into the running minimum `horizon`.
    ///
    /// This is the one building block of every `next_event` implementation
    /// (the event-horizon contract of DESIGN.md §10): horizons are minima
    /// over per-source event times, and no reported event may precede
    /// `floor` (= the cycle after the tick that just ran). Centralising the
    /// clamp keeps the strictly-after-`now` rule in one place.
    pub fn merge_horizon(horizon: &mut Option<Cycle>, at: Cycle, floor: Cycle) {
        let at = at.max(floor);
        *horizon = Some(horizon.map_or(at, |cur| cur.min(at)));
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Cycle {
    fn from(value: u64) -> Self {
        Cycle(value)
    }
}

impl From<Cycle> for u64 {
    fn from(value: Cycle) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_u64() {
        let c = Cycle(5);
        assert_eq!(c + 3, Cycle(8));
        assert_eq!(Cycle(8) - c, 3);
        let mut m = Cycle(1);
        m += 9;
        assert_eq!(m, Cycle(10));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(Cycle(10).since(Cycle(3)), 7);
        assert_eq!(Cycle(3).since(Cycle(10)), 0);
    }

    #[test]
    fn min_max_and_next() {
        assert_eq!(Cycle(3).max(Cycle(7)), Cycle(7));
        assert_eq!(Cycle(3).min(Cycle(7)), Cycle(3));
        assert_eq!(Cycle(3).next(), Cycle(4));
        assert_eq!(Cycle::ZERO, Cycle(0));
    }

    #[test]
    fn display_mentions_cycle() {
        assert_eq!(Cycle(42).to_string(), "cycle 42");
    }

    #[test]
    fn ordering_follows_time() {
        assert!(Cycle(1) < Cycle(2));
        assert!(Cycle(2) >= Cycle(2));
    }

    #[test]
    fn merge_horizon_takes_the_floored_minimum() {
        let floor = Cycle(10);
        let mut horizon = None;
        Cycle::merge_horizon(&mut horizon, Cycle(25), floor);
        assert_eq!(horizon, Some(Cycle(25)));
        Cycle::merge_horizon(&mut horizon, Cycle(40), floor);
        assert_eq!(horizon, Some(Cycle(25)), "later events do not lower the minimum");
        Cycle::merge_horizon(&mut horizon, Cycle(3), floor);
        assert_eq!(horizon, Some(Cycle(10)), "events before the floor clamp to it");
    }
}
