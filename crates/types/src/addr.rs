//! Byte addresses and block-level helpers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A physical byte address.
///
/// The simulator operates on a flat 64-bit physical address space. Caches
/// derive their own block, set-index and tag fields from an `Addr` using the
/// helpers below, so that levels with different block sizes (32 B L-NUCA
/// tiles, 64 B L2, 128 B L3/D-NUCA banks) can share the same request stream.
///
/// # Example
///
/// ```
/// use lnuca_types::Addr;
///
/// let a = Addr(0x1234);
/// assert_eq!(a.block_base(64), Addr(0x1200));
/// assert_eq!(a.block_index(64), 0x48);
/// assert_eq!(a.offset_in_block(64), 0x34);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u64);

impl Addr {
    /// Returns the address of the first byte of the block containing `self`.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two.
    #[must_use]
    pub fn block_base(self, block_size: u64) -> Addr {
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two, got {block_size}"
        );
        Addr(self.0 & !(block_size - 1))
    }

    /// Returns the block number (address divided by the block size).
    ///
    /// Two addresses with the same block index map to the same cache block.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two.
    #[must_use]
    pub fn block_index(self, block_size: u64) -> u64 {
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two, got {block_size}"
        );
        self.0 >> block_size.trailing_zeros()
    }

    /// Returns the byte offset of this address within its block.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two.
    #[must_use]
    pub fn offset_in_block(self, block_size: u64) -> u64 {
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two, got {block_size}"
        );
        self.0 & (block_size - 1)
    }

    /// Returns `true` if `self` and `other` fall in the same block of the
    /// given size.
    #[must_use]
    pub fn same_block(self, other: Addr, block_size: u64) -> bool {
        self.block_index(block_size) == other.block_index(block_size)
    }

    /// Returns the address `bytes` bytes above this one, wrapping on overflow.
    #[must_use]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0.wrapping_add(bytes))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(value: u64) -> Self {
        Addr(value)
    }
}

impl From<Addr> for u64 {
    fn from(value: Addr) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn block_base_masks_low_bits() {
        assert_eq!(Addr(0xFFFF).block_base(32), Addr(0xFFE0));
        assert_eq!(Addr(0x20).block_base(32), Addr(0x20));
        assert_eq!(Addr(0x0).block_base(128), Addr(0x0));
    }

    #[test]
    fn block_index_divides_by_block_size() {
        assert_eq!(Addr(0x100).block_index(32), 8);
        assert_eq!(Addr(0x11F).block_index(32), 8);
        assert_eq!(Addr(0x120).block_index(32), 9);
    }

    #[test]
    fn offset_in_block_is_low_bits() {
        assert_eq!(Addr(0x1234).offset_in_block(64), 0x34);
        assert_eq!(Addr(0x1240).offset_in_block(64), 0);
    }

    #[test]
    fn same_block_respects_block_size() {
        assert!(Addr(0x100).same_block(Addr(0x11F), 32));
        assert!(!Addr(0x100).same_block(Addr(0x120), 32));
        assert!(Addr(0x100).same_block(Addr(0x17F), 128));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", Addr(255)), "ff");
        assert_eq!(format!("{:X}", Addr(255)), "FF");
    }

    #[test]
    fn conversion_round_trip() {
        let a: Addr = 42u64.into();
        let v: u64 = a.into();
        assert_eq!(v, 42);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_block_size_panics() {
        let _ = Addr(0x100).block_base(48);
    }

    proptest! {
        #[test]
        fn block_base_is_aligned(addr in any::<u64>(), shift in 3u32..10) {
            let bs = 1u64 << shift;
            let base = Addr(addr).block_base(bs);
            prop_assert_eq!(base.0 % bs, 0);
            prop_assert!(base.0 <= addr);
            prop_assert!(addr - base.0 < bs);
        }

        #[test]
        fn base_plus_offset_recovers_address(addr in any::<u64>(), shift in 3u32..10) {
            let bs = 1u64 << shift;
            let a = Addr(addr);
            prop_assert_eq!(a.block_base(bs).0 + a.offset_in_block(bs), addr);
        }

        #[test]
        fn same_block_iff_same_index(a in any::<u64>(), b in any::<u64>(), shift in 3u32..10) {
            let bs = 1u64 << shift;
            let same = Addr(a).same_block(Addr(b), bs);
            prop_assert_eq!(same, a >> shift == b >> shift);
        }
    }
}
