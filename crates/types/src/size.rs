//! Human-friendly byte sizes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A capacity expressed in bytes, with convenience constructors and a
/// human-readable `Display` (`72 KB`, `8 MB`, ...).
///
/// # Example
///
/// ```
/// use lnuca_types::ByteSize;
///
/// assert_eq!(ByteSize::kib(8).bytes(), 8192);
/// assert_eq!(ByteSize::mib(8).to_string(), "8 MB");
/// assert_eq!(ByteSize::new(72 * 1024).to_string(), "72 KB");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Creates a size of exactly `bytes` bytes.
    #[must_use]
    pub fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size of `kib` kibibytes (1024 bytes each).
    #[must_use]
    pub fn kib(kib: u64) -> Self {
        ByteSize(kib * 1024)
    }

    /// Creates a size of `mib` mebibytes.
    #[must_use]
    pub fn mib(mib: u64) -> Self {
        ByteSize(mib * 1024 * 1024)
    }

    /// The size in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        self.0
    }

    /// The size in kibibytes, rounded down.
    #[must_use]
    pub fn as_kib(self) -> u64 {
        self.0 / 1024
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KB: u64 = 1024;
        const MB: u64 = 1024 * 1024;
        if self.0 >= MB && self.0 % MB == 0 {
            write!(f, "{} MB", self.0 / MB)
        } else if self.0 >= KB && self.0 % KB == 0 {
            write!(f, "{} KB", self.0 / KB)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

impl From<u64> for ByteSize {
    fn from(value: u64) -> Self {
        ByteSize(value)
    }
}

impl From<ByteSize> for u64 {
    fn from(value: ByteSize) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(ByteSize::kib(1).bytes(), 1024);
        assert_eq!(ByteSize::mib(1).bytes(), 1024 * 1024);
        assert_eq!(ByteSize::new(17).bytes(), 17);
    }

    #[test]
    fn display_picks_largest_exact_unit() {
        assert_eq!(ByteSize::new(100).to_string(), "100 B");
        assert_eq!(ByteSize::kib(256).to_string(), "256 KB");
        assert_eq!(ByteSize::mib(8).to_string(), "8 MB");
        assert_eq!(ByteSize::new(1536).to_string(), "1536 B");
    }

    #[test]
    fn as_kib_rounds_down() {
        assert_eq!(ByteSize::new(2047).as_kib(), 1);
        assert_eq!(ByteSize::kib(248).as_kib(), 248);
    }
}
