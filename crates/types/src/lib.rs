//! Shared primitive types for the Light NUCA (DATE 2009) reproduction.
//!
//! This crate holds the vocabulary every other crate in the workspace speaks:
//! byte [`Addr`]esses, simulation [`Cycle`]s, memory [`MemRequest`]s and
//! [`MemResponse`]s, the [`ServiceLevel`] enumeration used to attribute hits
//! to hierarchy levels, simple statistics helpers ([`stats`]) and the common
//! [`ConfigError`] type returned by constructors that validate their
//! configuration.
//!
//! # Example
//!
//! ```
//! use lnuca_types::{Addr, Cycle, AccessKind, MemRequest, ReqId};
//!
//! let req = MemRequest::new(ReqId(1), Addr(0x1_0040), AccessKind::Read, Cycle(10));
//! assert_eq!(req.addr.block_index(32), 0x802);
//! assert!(req.kind.is_read());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cycle;
pub mod error;
pub mod request;
pub mod size;
pub mod stats;

pub use addr::Addr;
pub use cycle::Cycle;
pub use error::{ConfigError, RunError, UnknownNameError, RUN_STATUSES};
pub use request::{AccessKind, MemRequest, MemResponse, ReqId, ServiceLevel};
pub use size::ByteSize;
