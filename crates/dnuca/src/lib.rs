//! A Dynamic NUCA (D-NUCA) secondary-cache model.
//!
//! The paper's second evaluation scenario places an L-NUCA between the L1 and
//! an 8 MB D-NUCA (Figs. 1(c) and 1(d)), and the D-NUCA alone (`DN-4x8`) is
//! the baseline of Fig. 5. This crate rebuilds that substrate following the
//! configuration in Table I, which itself models the *SS-performance*
//! organisation of Kim et al. (ASPLOS 2002):
//!
//! * 32 banks of 256 KB (2-way, 128 B blocks, 3-cycle access) arranged as
//!   8 bank sets (columns) × 4 rows,
//! * a virtual-channel wormhole 2-D mesh (32-byte flits, 1–5 flits per
//!   message, 4 VCs) connecting the banks to the cache controller,
//! * multicast search across the banks of a bank set,
//! * hit-driven block *migration* (promotion) toward the controller, which is
//!   what makes the NUCA "dynamic".
//!
//! # Example
//!
//! ```
//! use lnuca_dnuca::{DNuca, DNucaConfig};
//! use lnuca_types::{Addr, Cycle};
//!
//! let mut dnuca = DNuca::new(DNucaConfig::paper())?;
//! assert_eq!(dnuca.capacity_bytes(), 8 * 1024 * 1024);
//! // A cold access misses; after the fill the same block hits.
//! let miss = dnuca.access(Addr(0x1_0000), false, Cycle(0));
//! assert!(!miss.is_hit());
//! dnuca.fill(Addr(0x1_0000), false, Cycle(100));
//! let hit = dnuca.access(Addr(0x1_0000), false, Cycle(200));
//! assert!(hit.is_hit());
//! # Ok::<(), lnuca_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;

pub use cache::{DNuca, DNucaOutcome, DNucaStats};
pub use config::{DNucaConfig, SearchPolicy};
