//! D-NUCA configuration.

use lnuca_types::ConfigError;
use serde::{Deserialize, Serialize};

/// How the banks of a bank set are searched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SearchPolicy {
    /// The request is multicast to every bank of the bank set at once
    /// (the performance-oriented policy of Kim et al. used by the paper).
    #[default]
    Multicast,
    /// Banks are probed one after another, closest first. Cheaper in energy,
    /// slower on hits in far banks; provided for the ablation benches.
    Incremental,
}

/// Configuration of a [`DNuca`](crate::DNuca) cache.
///
/// The defaults (via [`DNucaConfig::paper`]) reproduce Table I's `DN-4x8`:
/// 8 MB in 32 banks of 256 KB arranged as 8 columns (sparse bank sets) by
/// 4 rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DNucaConfig {
    /// Number of bank rows (distance levels from the controller).
    pub rows: usize,
    /// Number of bank columns (sparse bank sets).
    pub cols: usize,
    /// Capacity of each bank in bytes.
    pub bank_size_bytes: u64,
    /// Associativity of each bank.
    pub bank_ways: usize,
    /// Block size in bytes.
    pub block_size: u64,
    /// Bank access (completion) latency in cycles.
    pub bank_completion_cycles: u64,
    /// Bank initiation interval in cycles.
    pub bank_initiation_interval: u64,
    /// Link width in bytes (one flit).
    pub flit_bytes: u64,
    /// Per-hop routing latency of the mesh routers.
    pub routing_latency: u64,
    /// Virtual channels per link.
    pub virtual_channels: usize,
    /// Search policy across the banks of a bank set.
    pub search: SearchPolicy,
    /// Whether hit blocks migrate one row closer to the controller.
    pub promotion: bool,
}

impl DNucaConfig {
    /// The paper's `DN-4x8` configuration (Table I).
    #[must_use]
    pub fn paper() -> Self {
        DNucaConfig {
            rows: 4,
            cols: 8,
            bank_size_bytes: 256 * 1024,
            bank_ways: 2,
            block_size: 128,
            bank_completion_cycles: 3,
            bank_initiation_interval: 3,
            flit_bytes: 32,
            routing_latency: 1,
            virtual_channels: 4,
            search: SearchPolicy::Multicast,
            promotion: true,
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.rows as u64 * self.cols as u64 * self.bank_size_bytes
    }

    /// Number of data flits needed to carry one block.
    #[must_use]
    pub fn flits_per_block(&self) -> u64 {
        self.block_size.div_ceil(self.flit_bytes).max(1)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any dimension, size or latency is zero or
    /// inconsistent.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(ConfigError::new("rows/cols", "must be nonzero"));
        }
        if self.bank_completion_cycles == 0 || self.bank_initiation_interval == 0 {
            return Err(ConfigError::new(
                "bank latencies",
                "completion and initiation must be nonzero",
            ));
        }
        if self.flit_bytes == 0 || !self.flit_bytes.is_power_of_two() {
            return Err(ConfigError::new(
                "flit_bytes",
                format!("must be a nonzero power of two, got {}", self.flit_bytes),
            ));
        }
        if self.virtual_channels == 0 {
            return Err(ConfigError::new("virtual_channels", "must be nonzero"));
        }
        // Bank geometry must be a valid cache geometry.
        lnuca_mem::CacheGeometry::new(self.bank_size_bytes, self.bank_ways, self.block_size)?;
        Ok(())
    }
}

impl Default for DNucaConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1() {
        let c = DNucaConfig::paper();
        assert_eq!(c.capacity_bytes(), 8 * 1024 * 1024);
        assert_eq!(c.rows * c.cols, 32);
        assert_eq!(c.bank_size_bytes, 256 * 1024);
        assert_eq!(c.block_size, 128);
        assert_eq!(c.flits_per_block(), 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = DNucaConfig::paper();
        c.rows = 0;
        assert!(c.validate().is_err());
        let mut c = DNucaConfig::paper();
        c.flit_bytes = 48;
        assert!(c.validate().is_err());
        let mut c = DNucaConfig::paper();
        c.bank_ways = 3;
        assert!(c.validate().is_err());
        let mut c = DNucaConfig::paper();
        c.virtual_channels = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(DNucaConfig::default(), DNucaConfig::paper());
    }
}
