//! The banked D-NUCA cache with migration and mesh transport.

use crate::config::{DNucaConfig, SearchPolicy};
use lnuca_mem::{CacheArray, CacheGeometry, EvictedLine, ReplacementPolicy};
use lnuca_noc::{MeshConfig, WormholeMesh};
use lnuca_types::{Addr, ConfigError, Cycle};
use serde::{Deserialize, Serialize};

/// Timing outcome of a D-NUCA access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DNucaOutcome {
    /// The block was found in a bank of the addressed bank set.
    Hit {
        /// Cycle at which the data arrives back at the cache controller.
        ready_at: Cycle,
        /// Row (distance class) of the bank that hit; 0 is closest to the
        /// controller.
        row: u8,
    },
    /// The block is not in the cache.
    Miss {
        /// Cycle at which the miss is known at the controller (all probed
        /// banks have answered).
        determined_at: Cycle,
    },
}

impl DNucaOutcome {
    /// Returns `true` for hits.
    #[must_use]
    pub fn is_hit(self) -> bool {
        matches!(self, DNucaOutcome::Hit { .. })
    }

    /// The cycle at which the outcome is known at the controller.
    #[must_use]
    pub fn resolved_at(self) -> Cycle {
        match self {
            DNucaOutcome::Hit { ready_at, .. } => ready_at,
            DNucaOutcome::Miss { determined_at } => determined_at,
        }
    }
}

/// Event counters of a [`DNuca`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DNucaStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits, bucketed by bank row (index 0 = closest to the controller).
    pub hits_per_row: Vec<u64>,
    /// Misses.
    pub misses: u64,
    /// Individual bank lookups (dominates dynamic energy under multicast).
    pub bank_lookups: u64,
    /// Bank accesses caused by fills and migrations.
    pub bank_fills: u64,
    /// Block migrations (promotions) performed.
    pub migrations: u64,
    /// Dirty blocks evicted (to be written back to memory).
    pub dirty_evictions: u64,
    /// Sum of hit latencies in cycles.
    pub hit_latency_sum: u64,
}

impl DNucaStats {
    /// Total hits across all rows.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits_per_row.iter().sum()
    }

    /// Average hit latency in cycles (0.0 if there were no hits).
    #[must_use]
    pub fn mean_hit_latency(&self) -> f64 {
        if self.hits() == 0 {
            0.0
        } else {
            self.hit_latency_sum as f64 / self.hits() as f64
        }
    }
}

/// An 8 MB dynamic NUCA: banks on a wormhole mesh with multicast search and
/// hit-driven promotion.
///
/// Like [`lnuca_mem::ConventionalCache`], the D-NUCA does not own its
/// downstream connection: the hierarchy reacts to [`DNucaOutcome::Miss`] by
/// fetching from memory and then calls [`DNuca::fill`].
#[derive(Debug, Clone)]
pub struct DNuca {
    config: DNucaConfig,
    /// `banks[col][row]`.
    banks: Vec<Vec<CacheArray>>,
    /// Earliest cycle each bank can start a new access: `ports[col][row]`.
    bank_free_at: Vec<Vec<Cycle>>,
    mesh: WormholeMesh,
    controller_col: usize,
    stats: DNucaStats,
}

impl DNuca {
    /// Builds an empty D-NUCA from its configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is invalid.
    pub fn new(config: DNucaConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let bank_geometry =
            CacheGeometry::new(config.bank_size_bytes, config.bank_ways, config.block_size)?;
        let banks = (0..config.cols)
            .map(|_| {
                (0..config.rows)
                    .map(|_| CacheArray::new(bank_geometry, ReplacementPolicy::Lru))
                    .collect()
            })
            .collect();
        let bank_free_at = vec![vec![Cycle::ZERO; config.rows]; config.cols];
        let mesh = WormholeMesh::new(MeshConfig {
            cols: config.cols,
            rows: config.rows,
            routing_latency: config.routing_latency,
            virtual_channels: config.virtual_channels,
        })?;
        let controller_col = config.cols / 2;
        let stats = DNucaStats {
            hits_per_row: vec![0; config.rows],
            ..DNucaStats::default()
        };
        Ok(DNuca {
            config,
            banks,
            bank_free_at,
            mesh,
            controller_col,
            stats,
        })
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> &DNucaConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &DNucaStats {
        &self.stats
    }

    /// Network statistics of the underlying mesh (for the energy model).
    #[must_use]
    pub fn mesh_stats(&self) -> &lnuca_noc::mesh::MeshStats {
        self.mesh.stats()
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.config.capacity_bytes()
    }

    /// Returns `true` if the block containing `addr` is resident in any bank
    /// of its bank set.
    #[must_use]
    pub fn probe(&self, addr: Addr) -> bool {
        let col = self.bank_set(addr);
        self.banks[col].iter().any(|b| b.contains(addr))
    }

    /// Every resident line, tagged with its `(col, row)` bank coordinates —
    /// the final-residency enumeration the differential oracle compares.
    /// Allocates a fresh `Vec`; verification and tests only.
    #[must_use]
    pub fn resident_lines(&self) -> Vec<(usize, usize, lnuca_mem::Line)> {
        let mut out = Vec::new();
        for (col, rows) in self.banks.iter().enumerate() {
            for (row, bank) in rows.iter().enumerate() {
                out.extend(bank.iter().map(|line| (col, row, line)));
            }
        }
        out
    }

    /// Column (sparse bank set) that `addr` maps to.
    #[must_use]
    pub fn bank_set(&self, addr: Addr) -> usize {
        (addr.block_index(self.config.block_size) % self.config.cols as u64) as usize
    }

    /// Performs a timed access.
    ///
    /// Under the multicast policy the request is sent to every bank of the
    /// bank set; the hit latency is the round trip to the hitting bank and
    /// the miss is determined when the farthest bank has answered. A hit
    /// promotes the block one row toward the controller (swapping with
    /// whatever occupies that slot), which is the D-NUCA migration mechanism.
    pub fn access(&mut self, addr: Addr, is_write: bool, now: Cycle) -> DNucaOutcome {
        self.stats.accesses += 1;
        let col = self.bank_set(addr);

        // Rows are probed in distance order (0 = closest); iterating the
        // range directly keeps this per-access path allocation-free.
        match self.config.search {
            SearchPolicy::Multicast => self.access_multicast(addr, is_write, now, col),
            SearchPolicy::Incremental => self.access_incremental(addr, is_write, now, col),
        }
    }

    fn access_multicast(
        &mut self,
        addr: Addr,
        is_write: bool,
        now: Cycle,
        col: usize,
    ) -> DNucaOutcome {
        let mut hit: Option<(usize, Cycle)> = None;
        let mut worst_miss = now;
        for row in 0..self.config.rows {
            let answer_at = self.probe_bank(addr, is_write, now, col, row);
            self.stats.bank_lookups += 1;
            if self.banks[col][row].contains(addr) {
                // The lookup above already refreshed recency via probe_bank.
                hit = Some((row, answer_at));
                break;
            }
            worst_miss = worst_miss.max(answer_at);
        }
        match hit {
            Some((row, data_back_at)) => self.finish_hit(addr, is_write, col, row, data_back_at, now),
            None => DNucaOutcome::Miss {
                determined_at: worst_miss,
            },
        }
    }

    fn access_incremental(
        &mut self,
        addr: Addr,
        is_write: bool,
        now: Cycle,
        col: usize,
    ) -> DNucaOutcome {
        // Banks are probed in order of distance; each probe starts after the
        // previous one has answered with a miss.
        let mut clock = now;
        for row in 0..self.config.rows {
            let answer_at = self.probe_bank(addr, is_write, clock, col, row);
            self.stats.bank_lookups += 1;
            if self.banks[col][row].contains(addr) {
                return self.finish_hit(addr, is_write, col, row, answer_at, now);
            }
            clock = answer_at;
        }
        DNucaOutcome::Miss { determined_at: clock }
    }

    /// Sends the request to bank (`col`, `row`), performs the bank lookup and
    /// returns the cycle at which the answer (data or miss) is back at the
    /// controller.
    fn probe_bank(&mut self, addr: Addr, _is_write: bool, now: Cycle, col: usize, row: usize) -> Cycle {
        // Request: one flit from the controller edge to the bank.
        let request_arrives = self
            .mesh
            .traverse((self.controller_col, 0), (col, row), 1, now);
        // Bank port occupancy and access latency.
        let start = request_arrives.max(self.bank_free_at[col][row]);
        self.bank_free_at[col][row] = start + self.config.bank_initiation_interval;
        let bank_done = start + self.config.bank_completion_cycles;
        // Touch recency on a real hit.
        let _ = self.banks[col][row].lookup(addr);
        // Response: data blocks are block-sized, miss answers a single flit.
        let flits = if self.banks[col][row].contains(addr) {
            self.config.flits_per_block() + 1
        } else {
            1
        };
        self.mesh
            .traverse((col, row), (self.controller_col, 0), flits, bank_done)
    }

    fn finish_hit(
        &mut self,
        addr: Addr,
        is_write: bool,
        col: usize,
        row: usize,
        ready_at: Cycle,
        issued_at: Cycle,
    ) -> DNucaOutcome {
        self.stats.hits_per_row[row] += 1;
        self.stats.hit_latency_sum += ready_at.since(issued_at);
        if is_write {
            self.banks[col][row].mark_dirty(addr);
        }
        if self.config.promotion && row > 0 {
            self.promote(addr, col, row);
        }
        DNucaOutcome::Hit {
            ready_at,
            row: row as u8,
        }
    }

    /// Swaps the hit block one row closer to the controller.
    fn promote(&mut self, addr: Addr, col: usize, row: usize) {
        let closer = row - 1;
        let line = self.banks[col][row]
            .invalidate(addr)
            .expect("promoted block is resident in the hitting bank");
        // Whatever the promoted block displaces in the closer bank moves to
        // the slot the promoted block vacated (a swap), so no data is lost.
        if let Some(displaced) = self.banks[col][closer].fill(line.addr, line.dirty) {
            self.banks[col][row].fill(displaced.addr, displaced.dirty);
            self.stats.bank_fills += 2;
        } else {
            self.stats.bank_fills += 1;
        }
        self.stats.migrations += 1;
    }

    /// Inserts a block arriving from memory into the farthest bank of its
    /// bank set, returning the displaced victim if one had to be evicted.
    pub fn fill(&mut self, addr: Addr, dirty: bool, _now: Cycle) -> Option<EvictedLine> {
        let col = self.bank_set(addr);
        let row = self.config.rows - 1;
        self.stats.bank_fills += 1;
        let evicted = self.banks[col][row].fill(addr, dirty);
        if let Some(e) = &evicted {
            if e.dirty {
                self.stats.dirty_evictions += 1;
            }
        }
        evicted
    }

    /// Marks the block containing `addr` dirty wherever it resides. Returns
    /// `true` if the block was found.
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        let col = self.bank_set(addr);
        self.banks[col].iter_mut().any(|b| b.mark_dirty(addr))
    }

    /// Removes the block containing `addr`. Returns `true` if it was present.
    pub fn invalidate(&mut self, addr: Addr) -> bool {
        let col = self.bank_set(addr);
        let mut removed = false;
        for bank in &mut self.banks[col] {
            removed |= bank.invalidate(addr).is_some();
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dnuca() -> DNuca {
        DNuca::new(DNucaConfig::paper()).unwrap()
    }

    #[test]
    fn cold_cache_misses_and_fills_hit() {
        let mut d = dnuca();
        let addr = Addr(0xDEAD_0000);
        assert!(!d.access(addr, false, Cycle(0)).is_hit());
        d.fill(addr, false, Cycle(50));
        let out = d.access(addr, false, Cycle(100));
        assert!(out.is_hit());
        assert_eq!(d.stats().misses, 0, "misses counter is owned by the hierarchy");
        assert_eq!(d.stats().hits(), 1);
    }

    #[test]
    fn fills_land_in_the_farthest_row_and_promote_on_hits() {
        let mut d = dnuca();
        let addr = Addr(0x4_2000);
        d.fill(addr, false, Cycle(0));
        let rows = d.config().rows as u8;
        let first = d.access(addr, false, Cycle(10));
        match first {
            DNucaOutcome::Hit { row, .. } => assert_eq!(row, rows - 1, "first hit is in the insertion row"),
            DNucaOutcome::Miss { .. } => panic!("expected hit"),
        }
        // Each subsequent hit moves the block one row closer.
        for expected in (0..rows - 1).rev() {
            let out = d.access(addr, false, Cycle(1_000 * u64::from(expected + 2)));
            match out {
                DNucaOutcome::Hit { row, .. } => assert_eq!(row, expected),
                DNucaOutcome::Miss { .. } => panic!("expected hit"),
            }
        }
        // Already in row 0: stays there.
        match d.access(addr, false, Cycle(100_000)) {
            DNucaOutcome::Hit { row, .. } => assert_eq!(row, 0),
            DNucaOutcome::Miss { .. } => panic!("expected hit"),
        }
        assert_eq!(d.stats().migrations, u64::from(rows) - 1);
    }

    #[test]
    fn closer_rows_have_lower_hit_latency() {
        let mut d = dnuca();
        let addr = Addr(0x8_0000);
        d.fill(addr, false, Cycle(0));
        let far = match d.access(addr, false, Cycle(1_000)) {
            DNucaOutcome::Hit { ready_at, .. } => ready_at.since(Cycle(1_000)),
            DNucaOutcome::Miss { .. } => panic!(),
        };
        // Promote to row 0 with repeated hits.
        for i in 0..4 {
            d.access(addr, false, Cycle(10_000 + i * 1_000));
        }
        let near = match d.access(addr, false, Cycle(100_000)) {
            DNucaOutcome::Hit { ready_at, .. } => ready_at.since(Cycle(100_000)),
            DNucaOutcome::Miss { .. } => panic!(),
        };
        assert!(near < far, "row-0 hit ({near}) must be faster than row-{} hit ({far})", d.config().rows - 1);
    }

    #[test]
    fn promotion_swaps_rather_than_drops_the_displaced_block() {
        let mut d = dnuca();
        // Two blocks in the same bank set mapping to the same bank set index.
        let cols = d.config().cols as u64;
        let block = d.config().block_size;
        let a = Addr(0);
        let b = Addr(cols * block * 1024); // same column, different tag
        assert_eq!(d.bank_set(a), d.bank_set(b));
        d.fill(a, false, Cycle(0));
        // Promote `a` all the way to row 0.
        for i in 0..5 {
            d.access(a, false, Cycle(1_000 * (i + 1)));
        }
        d.fill(b, true, Cycle(10_000));
        // Promote `b` to row 0; each promotion swaps with whatever is there.
        for i in 0..5 {
            d.access(b, false, Cycle(20_000 + 1_000 * (i + 1)));
        }
        // Both blocks must still be resident somewhere in the bank set.
        assert!(d.probe(a));
        assert!(d.probe(b));
    }

    #[test]
    fn incremental_search_is_slower_on_far_hits_but_cheaper_in_lookups() {
        let mut multicast = dnuca();
        let mut incremental = DNuca::new(DNucaConfig {
            search: SearchPolicy::Incremental,
            promotion: false,
            ..DNucaConfig::paper()
        })
        .unwrap();
        let mut multicast_nopromo = DNuca::new(DNucaConfig {
            promotion: false,
            ..DNucaConfig::paper()
        })
        .unwrap();
        let addr = Addr(0x12_3400);
        for d in [&mut multicast, &mut incremental, &mut multicast_nopromo] {
            d.fill(addr, false, Cycle(0));
        }
        let m = multicast_nopromo.access(addr, false, Cycle(100)).resolved_at();
        let i = incremental.access(addr, false, Cycle(100)).resolved_at();
        assert!(i >= m, "incremental far hit cannot be faster than multicast");
        assert!(incremental.stats().bank_lookups >= multicast_nopromo.stats().bank_lookups);
    }

    #[test]
    fn eviction_reports_dirty_victims() {
        let mut d = dnuca();
        let cols = d.config().cols as u64;
        let block = d.config().block_size;
        let sets = 1024u64; // 256 KB, 2-way, 128 B => 1024 sets per bank
        // Fill the same set of the insertion bank three times (2 ways).
        let mk = |i: u64| Addr(i * cols * sets * block);
        assert!(d.fill(mk(1), true, Cycle(0)).is_none());
        assert!(d.fill(mk(2), false, Cycle(0)).is_none());
        let evicted = d.fill(mk(3), false, Cycle(0)).expect("set overflow evicts");
        assert!(evicted.dirty);
        assert_eq!(d.stats().dirty_evictions, 1);
    }

    #[test]
    fn invalidate_and_mark_dirty() {
        let mut d = dnuca();
        let addr = Addr(0xFE_0000);
        d.fill(addr, false, Cycle(0));
        assert!(d.mark_dirty(addr));
        assert!(d.invalidate(addr));
        assert!(!d.probe(addr));
        assert!(!d.mark_dirty(addr));
        assert!(!d.invalidate(addr));
    }

    proptest! {
        #[test]
        fn bank_set_is_stable_and_in_range(addr in any::<u64>()) {
            let d = dnuca();
            let col = d.bank_set(Addr(addr));
            prop_assert!(col < d.config().cols);
            prop_assert_eq!(col, d.bank_set(Addr(addr)));
        }

        #[test]
        fn filled_blocks_are_always_probeable(addrs in proptest::collection::vec(0u64..0x100_0000, 1..50)) {
            let mut d = dnuca();
            for &a in &addrs {
                d.fill(Addr(a), false, Cycle(0));
                prop_assert!(d.probe(Addr(a)));
            }
        }
    }
}
