//! The L-NUCA tile grid: levels, coordinates and network neighbourhoods.
//!
//! An `L`-level L-NUCA consists of the root tile (the L1 cache, level Le1)
//! plus a grid of small tiles arranged around it. Using coordinates where the
//! r-tile sits at column offset 0, row 0 and tiles occupy rows `0..L-1` and
//! column offsets `-(L-1)..=(L-1)`, a tile belongs to level
//! `max(|col|, row) + 1`. This reproduces the paper's layout: 5 tiles in Le2,
//! 9 in Le3 and 13 in Le4, i.e. 72 KB, 144 KB and 248 KB total capacity with
//! 8 KB tiles and a 32 KB L1 (Fig. 1).
//!
//! The three networks are derived from the same coordinates:
//!
//! * **Search** (broadcast tree): each tile has exactly one parent in the
//!   previous level, so the maximum distance grows by one hop per level.
//! * **Transport** (2-D mesh toward the r-tile): each tile links to its
//!   4-neighbours with a strictly smaller Manhattan distance to the r-tile,
//!   giving multiple return paths.
//! * **Replacement** (latency-ordered): each tile links to its 8-neighbours
//!   whose total latency is exactly one cycle larger, reproducing the
//!   "domino" eviction chains of Fig. 2(c); the corner tiles of the last
//!   level have no successor and are the only tiles that evict to the next
//!   cache level.

use lnuca_types::{ByteSize, ConfigError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Position of a tile relative to the root tile.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TileCoord {
    /// Column offset from the root tile (negative = left).
    pub col: i16,
    /// Row above the root tile (the root row is 0).
    pub row: i16,
}

impl TileCoord {
    /// Creates a coordinate.
    #[must_use]
    pub fn new(col: i16, row: i16) -> Self {
        TileCoord { col, row }
    }

    /// L-NUCA level of this coordinate (the root tile is level 1).
    #[must_use]
    pub fn level(self) -> u8 {
        (self.col.unsigned_abs().max(self.row.unsigned_abs()) + 1) as u8
    }

    /// Manhattan (4-neighbour mesh) distance to the root tile.
    #[must_use]
    pub fn manhattan_to_root(self) -> u64 {
        u64::from(self.col.unsigned_abs()) + u64::from(self.row.unsigned_abs())
    }

    /// Total tile latency in cycles: search propagation, tile access and
    /// minimum transport back to the r-tile, as annotated in Fig. 2(c) of
    /// the paper (the level-2 side tiles are latency 3, the outer corners of
    /// a 3-level L-NUCA latency 7).
    #[must_use]
    pub fn latency(self) -> u64 {
        u64::from(self.level()) + self.manhattan_to_root()
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.col, self.row)
    }
}

/// Where a message goes next: to another tile or to the root tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Hop {
    /// Another tile, identified by its index in [`LNucaGeometry::tiles`].
    Tile(usize),
    /// The root tile (the L1 cache / processor interface).
    Root,
}

/// Geometry of an L-NUCA fabric with a given number of levels.
///
/// # Example
///
/// ```
/// use lnuca_core::geometry::LNucaGeometry;
///
/// let g = LNucaGeometry::new(3)?;
/// assert_eq!(g.tile_count(), 14);              // 5 + 9 tiles
/// assert_eq!(g.tiles_in_level(2), 5);
/// assert_eq!(g.tiles_in_level(3), 9);
/// assert_eq!(g.capacity_bytes(8 * 1024), 14 * 8 * 1024);
/// # Ok::<(), lnuca_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LNucaGeometry {
    levels: u8,
    tiles: Vec<TileCoord>,
}

impl LNucaGeometry {
    /// Smallest supported number of levels (the r-tile plus one ring).
    pub const MIN_LEVELS: u8 = 2;
    /// Largest supported number of levels.
    pub const MAX_LEVELS: u8 = 8;

    /// Creates the geometry of an L-NUCA with `levels` levels (the root tile
    /// counts as level 1).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `levels` is outside
    /// [`MIN_LEVELS`](Self::MIN_LEVELS)..=[`MAX_LEVELS`](Self::MAX_LEVELS).
    pub fn new(levels: u8) -> Result<Self, ConfigError> {
        if !(Self::MIN_LEVELS..=Self::MAX_LEVELS).contains(&levels) {
            return Err(ConfigError::new(
                "levels",
                format!(
                    "must be between {} and {}, got {levels}",
                    Self::MIN_LEVELS,
                    Self::MAX_LEVELS
                ),
            ));
        }
        let reach = i16::from(levels) - 1;
        let mut tiles = Vec::new();
        for row in 0..=reach {
            for col in -reach..=reach {
                let coord = TileCoord::new(col, row);
                if coord == TileCoord::new(0, 0) {
                    continue; // the root tile is not part of the fabric
                }
                if coord.level() <= levels {
                    tiles.push(coord);
                }
            }
        }
        tiles.sort_by_key(|t| (t.level(), t.row, t.col));
        Ok(LNucaGeometry { levels, tiles })
    }

    /// Number of levels, including the root tile's level 1.
    #[must_use]
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// Number of tiles in the fabric (excluding the root tile).
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// All tile coordinates, ordered by (level, row, column).
    #[must_use]
    pub fn tiles(&self) -> &[TileCoord] {
        &self.tiles
    }

    /// Coordinate of the tile with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn coord(&self, index: usize) -> TileCoord {
        self.tiles[index]
    }

    /// Index of the tile at `coord`, if it exists in this geometry.
    #[must_use]
    pub fn index_of(&self, coord: TileCoord) -> Option<usize> {
        self.tiles.iter().position(|&t| t == coord)
    }

    /// Number of tiles in level `level` (2-based; level 1 is the root tile
    /// and returns 0).
    #[must_use]
    pub fn tiles_in_level(&self, level: u8) -> usize {
        self.tiles.iter().filter(|t| t.level() == level).count()
    }

    /// Indices of all tiles in level `level`.
    #[must_use]
    pub fn level_tiles(&self, level: u8) -> Vec<usize> {
        (0..self.tiles.len())
            .filter(|&i| self.tiles[i].level() == level)
            .collect()
    }

    /// Total fabric capacity for a given tile size, in bytes (the r-tile is
    /// not included).
    #[must_use]
    pub fn capacity_bytes(&self, tile_size_bytes: u64) -> u64 {
        self.tile_count() as u64 * tile_size_bytes
    }

    /// Total fabric capacity as a [`ByteSize`].
    #[must_use]
    pub fn capacity(&self, tile_size_bytes: u64) -> ByteSize {
        ByteSize::new(self.capacity_bytes(tile_size_bytes))
    }

    /// The search-network parent of the tile at `index`: [`Hop::Root`] for
    /// level-2 tiles, otherwise the unique neighbouring tile one level
    /// closer to the root.
    #[must_use]
    pub fn search_parent(&self, index: usize) -> Hop {
        let c = self.tiles[index];
        if c.level() == 2 {
            return Hop::Root;
        }
        let parent = parent_coord(c);
        Hop::Tile(
            self.index_of(parent)
                .expect("parent of a non-level-2 tile exists in the grid"),
        )
    }

    /// The search-network children of the tile at `index` (tiles in the next
    /// level whose parent is this tile).
    #[must_use]
    pub fn search_children(&self, index: usize) -> Vec<usize> {
        (0..self.tiles.len())
            .filter(|&i| self.search_parent(i) == Hop::Tile(index))
            .collect()
    }

    /// The level-2 tiles, which receive search messages directly from the
    /// root tile.
    #[must_use]
    pub fn search_roots(&self) -> Vec<usize> {
        self.level_tiles(2)
    }

    /// Transport-network output hops of the tile at `index`: the
    /// 4-neighbours (or the root tile) with a strictly smaller Manhattan
    /// distance to the root.
    #[must_use]
    pub fn transport_next(&self, index: usize) -> Vec<Hop> {
        let c = self.tiles[index];
        let mut hops = Vec::new();
        let mut push = |col: i16, row: i16| {
            let n = TileCoord::new(col, row);
            if n.manhattan_to_root() < c.manhattan_to_root() {
                if n == TileCoord::new(0, 0) {
                    hops.push(Hop::Root);
                } else if let Some(i) = self.index_of(n) {
                    hops.push(Hop::Tile(i));
                }
            }
        };
        push(c.col - 1, c.row);
        push(c.col + 1, c.row);
        push(c.col, c.row - 1);
        push(c.col, c.row + 1);
        hops
    }

    /// Replacement-network output tiles of the tile at `index`: the
    /// 8-neighbours whose latency is exactly one cycle larger. Tiles with an
    /// empty result are the spill tiles that evict to the next cache level.
    #[must_use]
    pub fn replacement_next(&self, index: usize) -> Vec<usize> {
        let c = self.tiles[index];
        let target_latency = c.latency() + 1;
        let mut out = Vec::new();
        for dcol in -1..=1i16 {
            for drow in -1..=1i16 {
                if dcol == 0 && drow == 0 {
                    continue;
                }
                let n = TileCoord::new(c.col + dcol, c.row + drow);
                if n.latency() == target_latency {
                    if let Some(i) = self.index_of(n) {
                        out.push(i);
                    }
                }
            }
        }
        out
    }

    /// The tiles that receive evictions directly from the root tile: the
    /// latency-3 level-2 tiles (left, right and above the r-tile).
    #[must_use]
    pub fn root_evict_targets(&self) -> Vec<usize> {
        (0..self.tiles.len())
            .filter(|&i| self.tiles[i].level() == 2 && self.tiles[i].latency() == 3)
            .collect()
    }

    /// The tiles that evict blocks to the next cache level (the upper corner
    /// tiles of the outermost level).
    #[must_use]
    pub fn spill_tiles(&self) -> Vec<usize> {
        (0..self.tiles.len())
            .filter(|&i| self.replacement_next(i).is_empty())
            .collect()
    }

    /// Maximum tile latency in this geometry.
    #[must_use]
    pub fn max_latency(&self) -> u64 {
        self.tiles.iter().map(|t| t.latency()).max().unwrap_or(0)
    }

    /// Number of directed links per network:
    /// `(search, transport, replacement)`, counting links from/to the root
    /// tile.
    #[must_use]
    pub fn link_counts(&self) -> (usize, usize, usize) {
        let search = self.tile_count(); // one parent link per tile
        let transport: usize = (0..self.tile_count())
            .map(|i| self.transport_next(i).len())
            .sum();
        let replacement: usize = (0..self.tile_count())
            .map(|i| self.replacement_next(i).len())
            .sum::<usize>()
            + self.root_evict_targets().len();
        (search, transport, replacement)
    }
}

fn parent_coord(c: TileCoord) -> TileCoord {
    let abs_col = c.col.abs();
    let toward_center = c.col - c.col.signum();
    if abs_col > c.row {
        TileCoord::new(toward_center, c.row)
    } else if c.row > abs_col {
        TileCoord::new(c.col, c.row - 1)
    } else {
        TileCoord::new(toward_center, c.row - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn level_counts_match_the_paper() {
        for (levels, expected) in [(2u8, vec![5]), (3, vec![5, 9]), (4, vec![5, 9, 13])] {
            let g = LNucaGeometry::new(levels).unwrap();
            for (i, &count) in expected.iter().enumerate() {
                assert_eq!(g.tiles_in_level(i as u8 + 2), count, "level {} of LN{}", i + 2, levels);
            }
            assert_eq!(g.tile_count(), expected.iter().sum::<usize>());
        }
    }

    #[test]
    fn capacities_match_figure_1() {
        // 32 KB L1 + tiles of 8 KB: LN2 = 72 KB, LN3 = 144 KB, LN4 = 248 KB.
        let l1 = 32 * 1024u64;
        let tile = 8 * 1024u64;
        assert_eq!(LNucaGeometry::new(2).unwrap().capacity_bytes(tile) + l1, 72 * 1024);
        assert_eq!(LNucaGeometry::new(3).unwrap().capacity_bytes(tile) + l1, 144 * 1024);
        assert_eq!(LNucaGeometry::new(4).unwrap().capacity_bytes(tile) + l1, 248 * 1024);
    }

    #[test]
    fn invalid_level_counts_rejected() {
        assert!(LNucaGeometry::new(0).is_err());
        assert!(LNucaGeometry::new(1).is_err());
        assert!(LNucaGeometry::new(9).is_err());
    }

    #[test]
    fn tile_latencies_match_figure_2c() {
        // Fig. 2(c): in a 3-level L-NUCA tile latencies are
        // {3,3,3,4,4} in Le2 and {5,5,5,6,6,6,6,7,7} in Le3.
        let g = LNucaGeometry::new(3).unwrap();
        let mut le2: Vec<u64> = g.level_tiles(2).iter().map(|&i| g.coord(i).latency()).collect();
        let mut le3: Vec<u64> = g.level_tiles(3).iter().map(|&i| g.coord(i).latency()).collect();
        le2.sort_unstable();
        le3.sort_unstable();
        assert_eq!(le2, vec![3, 3, 3, 4, 4]);
        assert_eq!(le3, vec![5, 5, 5, 6, 6, 6, 6, 7, 7]);
    }

    #[test]
    fn adding_a_level_adds_three_cycles_to_the_worst_latency() {
        let l3 = LNucaGeometry::new(3).unwrap().max_latency();
        let l4 = LNucaGeometry::new(4).unwrap().max_latency();
        let l5 = LNucaGeometry::new(5).unwrap().max_latency();
        assert_eq!(l4 - l3, 3);
        assert_eq!(l5 - l4, 3);
    }

    #[test]
    fn search_tree_has_one_parent_per_tile_and_single_hop_growth() {
        for levels in 2..=5u8 {
            let g = LNucaGeometry::new(levels).unwrap();
            // Every tile has a parent in the previous level.
            for i in 0..g.tile_count() {
                match g.search_parent(i) {
                    Hop::Root => assert_eq!(g.coord(i).level(), 2),
                    Hop::Tile(p) => {
                        assert_eq!(g.coord(p).level(), g.coord(i).level() - 1);
                        // Parent is a grid neighbour (Chebyshev distance 1).
                        let a = g.coord(i);
                        let b = g.coord(p);
                        assert!((a.col - b.col).abs() <= 1 && (a.row - b.row).abs() <= 1);
                    }
                }
            }
            // Search distance from the root equals level - 1, so the maximum
            // distance grows by exactly one hop per level.
            let max_level = g.tiles().iter().map(|t| t.level()).max().unwrap();
            assert_eq!(max_level, levels);
        }
    }

    #[test]
    fn search_children_partition_the_next_level() {
        let g = LNucaGeometry::new(4).unwrap();
        for level in 2..4u8 {
            let mut children_of_level: Vec<usize> = g
                .level_tiles(level)
                .iter()
                .flat_map(|&i| g.search_children(i))
                .collect();
            children_of_level.sort_unstable();
            let mut next_level = g.level_tiles(level + 1);
            next_level.sort_unstable();
            assert_eq!(children_of_level, next_level);
        }
    }

    #[test]
    fn transport_always_progresses_toward_the_root() {
        let g = LNucaGeometry::new(4).unwrap();
        for i in 0..g.tile_count() {
            let hops = g.transport_next(i);
            assert!(!hops.is_empty(), "tile {i} must have a transport output");
            assert!(hops.len() <= 2, "path diversity never needs more than two outputs");
            for hop in hops {
                match hop {
                    Hop::Root => assert_eq!(g.coord(i).manhattan_to_root(), 1),
                    Hop::Tile(t) => {
                        assert!(g.coord(t).manhattan_to_root() < g.coord(i).manhattan_to_root());
                    }
                }
            }
        }
    }

    #[test]
    fn replacement_chains_increase_latency_by_one() {
        let g = LNucaGeometry::new(3).unwrap();
        for i in 0..g.tile_count() {
            for next in g.replacement_next(i) {
                assert_eq!(g.coord(next).latency(), g.coord(i).latency() + 1);
            }
        }
    }

    #[test]
    fn root_evictions_enter_at_latency_three_tiles() {
        let g = LNucaGeometry::new(3).unwrap();
        let targets = g.root_evict_targets();
        assert_eq!(targets.len(), 3);
        for t in targets {
            assert_eq!(g.coord(t).latency(), 3);
        }
    }

    #[test]
    fn spill_tiles_are_the_outer_upper_corners() {
        let g = LNucaGeometry::new(3).unwrap();
        let spills = g.spill_tiles();
        assert_eq!(spills.len(), 2);
        for s in spills {
            let c = g.coord(s);
            assert_eq!(c.latency(), g.max_latency());
            assert_eq!(c.row, 2);
            assert_eq!(c.col.abs(), 2);
        }
    }

    #[test]
    fn every_tile_can_reach_a_spill_tile_through_the_replacement_network() {
        let g = LNucaGeometry::new(4).unwrap();
        for start in 0..g.tile_count() {
            let mut frontier = vec![start];
            let mut reached_spill = false;
            let mut guard = 0;
            while let Some(t) = frontier.pop() {
                guard += 1;
                assert!(guard < 10_000, "replacement network must be acyclic");
                let next = g.replacement_next(t);
                if next.is_empty() {
                    reached_spill = true;
                    break;
                }
                frontier.extend(next);
            }
            assert!(reached_spill, "tile {start} cannot spill");
        }
    }

    #[test]
    fn index_and_coord_round_trip() {
        let g = LNucaGeometry::new(4).unwrap();
        for i in 0..g.tile_count() {
            assert_eq!(g.index_of(g.coord(i)), Some(i));
        }
        assert_eq!(g.index_of(TileCoord::new(0, 0)), None, "the root is not a fabric tile");
        assert_eq!(g.index_of(TileCoord::new(9, 9)), None);
    }

    #[test]
    fn link_counts_are_reported() {
        let g = LNucaGeometry::new(3).unwrap();
        let (search, transport, replacement) = g.link_counts();
        assert_eq!(search, 14);
        assert!(transport > 14, "mesh has more links than the tree");
        assert!(replacement >= 14);
    }

    #[test]
    fn coord_display_and_level() {
        let c = TileCoord::new(-2, 1);
        assert_eq!(c.to_string(), "(-2, 1)");
        assert_eq!(c.level(), 3);
        assert_eq!(c.manhattan_to_root(), 3);
        assert_eq!(c.latency(), 6);
    }

    proptest! {
        #[test]
        fn every_tile_level_is_within_bounds(levels in 2u8..=6) {
            let g = LNucaGeometry::new(levels).unwrap();
            for t in g.tiles() {
                prop_assert!(t.level() >= 2);
                prop_assert!(t.level() <= levels);
            }
        }

        #[test]
        fn tiles_per_level_follow_4k_plus_1(levels in 2u8..=8) {
            let g = LNucaGeometry::new(levels).unwrap();
            for level in 2..=levels {
                let k = u64::from(level) - 1;
                prop_assert_eq!(g.tiles_in_level(level) as u64, 4 * k + 1);
            }
        }

        #[test]
        fn transport_distance_equals_manhattan(levels in 2u8..=6) {
            // Following any chain of transport hops reaches the root in exactly
            // the Manhattan distance, so the minimum transport latency used by
            // the statistics equals the hop count.
            let g = LNucaGeometry::new(levels).unwrap();
            for i in 0..g.tile_count() {
                let mut hops = 0u64;
                let mut current = Hop::Tile(i);
                while let Hop::Tile(t) = current {
                    let next = g.transport_next(t);
                    prop_assert!(!next.is_empty());
                    current = next[0];
                    hops += 1;
                    prop_assert!(hops <= 64);
                }
                prop_assert_eq!(hops, g.coord(i).manhattan_to_root());
            }
        }
    }
}
