//! Statistics collected by the L-NUCA fabric.

use serde::{Deserialize, Serialize};

/// Event counters accumulated by an [`LNuca`](crate::LNuca) fabric.
///
/// These counters feed three consumers: the Table III reproduction (read
/// hits per level and the average-to-minimum transport latency ratio), the
/// energy model (tile accesses, link traversals) and the general sanity
/// assertions in the test suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LNucaStats {
    /// Searches injected by the root tile.
    pub searches: u64,
    /// Read hits per level, indexed by `level - 2` (Le2 first).
    pub read_hits_per_level: Vec<u64>,
    /// Write hits per level, indexed by `level - 2`.
    pub write_hits_per_level: Vec<u64>,
    /// Searches that missed in every tile.
    pub global_misses: u64,
    /// Individual tile lookups performed by search messages.
    pub tile_lookups: u64,
    /// Hits satisfied from an in-flight Replacement (U) buffer instead of a
    /// tile's array.
    pub in_flight_hits: u64,
    /// Blocks written into tiles by the replacement "domino".
    pub tile_fills: u64,
    /// Blocks evicted out of the fabric to the next cache level.
    pub spills: u64,
    /// Evictions accepted from the root tile.
    pub root_evictions: u64,
    /// Transport messages delivered to the root tile.
    pub transport_deliveries: u64,
    /// Sum of observed transport latencies (cycles).
    pub transport_latency_sum: u64,
    /// Sum of contention-free transport latencies (cycles).
    pub transport_min_latency_sum: u64,
    /// Cycles a transport message spent waiting because every downstream
    /// buffer was Off.
    pub transport_stall_cycles: u64,
    /// Cycles a replacement victim spent waiting because every downstream
    /// buffer was Off.
    pub replacement_stall_cycles: u64,
    /// Search-network link traversals (for dynamic energy).
    pub search_link_traversals: u64,
    /// Transport-network link traversals.
    pub transport_link_traversals: u64,
    /// Replacement-network link traversals.
    pub replacement_link_traversals: u64,
}

impl LNucaStats {
    /// Creates zeroed statistics for a fabric with `levels` levels.
    #[must_use]
    pub fn new(levels: u8) -> Self {
        let buckets = levels.saturating_sub(1) as usize;
        LNucaStats {
            read_hits_per_level: vec![0; buckets],
            write_hits_per_level: vec![0; buckets],
            ..Self::default()
        }
    }

    /// Total read hits across all levels.
    #[must_use]
    pub fn read_hits(&self) -> u64 {
        self.read_hits_per_level.iter().sum()
    }

    /// Total hits (read + write) across all levels.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.read_hits() + self.write_hits_per_level.iter().sum::<u64>()
    }

    /// Read hits serviced by the given level (2-based), or 0 for levels the
    /// fabric does not have.
    #[must_use]
    pub fn read_hits_in_level(&self, level: u8) -> u64 {
        if level < 2 {
            return 0;
        }
        self.read_hits_per_level
            .get((level - 2) as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Average observed transport latency divided by the contention-free
    /// latency. Values close to 1.0 mean the Transport mesh and the random
    /// distributed routing keep contention negligible (Table III reports
    /// values below 1.015).
    #[must_use]
    pub fn transport_latency_ratio(&self) -> f64 {
        if self.transport_min_latency_sum == 0 {
            1.0
        } else {
            self.transport_latency_sum as f64 / self.transport_min_latency_sum as f64
        }
    }

    /// Fraction of injected searches that missed in every tile.
    #[must_use]
    pub fn global_miss_ratio(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            self.global_misses as f64 / self.searches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sizes_the_per_level_buckets() {
        let s = LNucaStats::new(4);
        assert_eq!(s.read_hits_per_level.len(), 3);
        assert_eq!(s.write_hits_per_level.len(), 3);
    }

    #[test]
    fn aggregations_sum_levels() {
        let mut s = LNucaStats::new(3);
        s.read_hits_per_level[0] = 10;
        s.read_hits_per_level[1] = 5;
        s.write_hits_per_level[0] = 2;
        assert_eq!(s.read_hits(), 15);
        assert_eq!(s.hits(), 17);
        assert_eq!(s.read_hits_in_level(2), 10);
        assert_eq!(s.read_hits_in_level(3), 5);
        assert_eq!(s.read_hits_in_level(4), 0);
        assert_eq!(s.read_hits_in_level(1), 0);
    }

    #[test]
    fn latency_ratio_defaults_to_one() {
        let s = LNucaStats::new(2);
        assert_eq!(s.transport_latency_ratio(), 1.0);
        let mut s = LNucaStats::new(2);
        s.transport_latency_sum = 105;
        s.transport_min_latency_sum = 100;
        assert!((s.transport_latency_ratio() - 1.05).abs() < 1e-12);
    }

    #[test]
    fn global_miss_ratio_handles_zero_searches() {
        let mut s = LNucaStats::new(2);
        assert_eq!(s.global_miss_ratio(), 0.0);
        s.searches = 4;
        s.global_misses = 1;
        assert!((s.global_miss_ratio() - 0.25).abs() < 1e-12);
    }
}
