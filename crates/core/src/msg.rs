//! The headerless messages carried by the three L-NUCA networks.
//!
//! Links are message-wide, so each message is its own flow-control unit
//! (flit). The structs below carry slightly more than the hardware would
//! (request identifiers, timestamps) purely for statistics and attribution;
//! the routing never looks at a destination field because the topologies
//! make every output link valid — that is what "headerless" means in the
//! paper.

use lnuca_types::{Addr, Cycle, ReqId};
use serde::{Deserialize, Serialize};

/// A miss request travelling outward on the Search (broadcast tree) network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchMsg {
    /// Address being searched.
    pub addr: Addr,
    /// Request that triggered the search.
    pub req: ReqId,
    /// Whether the originating access was a write.
    pub is_write: bool,
    /// Cycle at which the root tile launched the search.
    pub injected_at: Cycle,
}

/// A hit block travelling toward the root tile on the Transport (2-D mesh)
/// network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportMsg {
    /// Block-aligned address of the data.
    pub addr: Addr,
    /// Request being satisfied.
    pub req: ReqId,
    /// Whether the block carries modified data.
    pub dirty: bool,
    /// L-NUCA level (2-based) where the hit occurred.
    pub hit_level: u8,
    /// Cycle at which the hit occurred (start of transport).
    pub hit_at: Cycle,
    /// Minimum possible transport latency from the hitting tile to the root
    /// (its Manhattan distance), used for the contention statistics of
    /// Table III.
    pub min_latency: u64,
}

/// An evicted block travelling outward on the Replacement network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplMsg {
    /// Block-aligned address of the victim.
    pub addr: Addr,
    /// Whether the victim holds modified data.
    pub dirty: bool,
}

/// A hit block delivered to the root tile, as observed by the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// Block-aligned address of the delivered block.
    pub addr: Addr,
    /// Request being satisfied.
    pub req: ReqId,
    /// Whether the block carries modified data (must be re-marked dirty in
    /// the root tile or written back later).
    pub dirty: bool,
    /// L-NUCA level that serviced the request.
    pub hit_level: u8,
    /// Cycle at which the block is available at the root tile.
    pub available_at: Cycle,
    /// Observed transport latency in cycles.
    pub transport_latency: u64,
    /// Contention-free transport latency in cycles.
    pub min_transport_latency: u64,
}

/// A global miss: no tile holds the block, the request must go to the next
/// cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalMiss {
    /// Address that missed everywhere.
    pub addr: Addr,
    /// Request that must be forwarded.
    pub req: ReqId,
    /// Whether the originating access was a write.
    pub is_write: bool,
    /// Cycle at which the miss determination is available.
    pub determined_at: Cycle,
}

/// A block evicted out of the fabric toward the next cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Spill {
    /// Block-aligned address of the spilled block.
    pub addr: Addr,
    /// Whether the block must be written back (dirty).
    pub dirty: bool,
    /// Cycle at which the spill leaves the fabric.
    pub at: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_plain_copyable_data() {
        fn assert_copy<T: Copy + Send + Sync + 'static>() {}
        assert_copy::<SearchMsg>();
        assert_copy::<TransportMsg>();
        assert_copy::<ReplMsg>();
        assert_copy::<Arrival>();
        assert_copy::<GlobalMiss>();
        assert_copy::<Spill>();
    }

    #[test]
    fn transport_message_carries_attribution() {
        let m = TransportMsg {
            addr: Addr(0x40),
            req: ReqId(3),
            dirty: true,
            hit_level: 2,
            hit_at: Cycle(11),
            min_latency: 1,
        };
        assert_eq!(m.hit_level, 2);
        assert!(m.dirty);
        assert_eq!(m.min_latency, 1);
    }
}
