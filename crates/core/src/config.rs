//! Configuration of an L-NUCA fabric.

use lnuca_mem::ReplacementPolicy;
use lnuca_noc::RoutingPolicy;
use lnuca_types::ConfigError;
use serde::{Deserialize, Serialize};

/// Configuration of an [`LNuca`](crate::LNuca) fabric.
///
/// The defaults reproduce the paper's configuration (Table I): 8 KB, 2-way,
/// 32 B-block tiles with single-cycle completion and initiation, two-entry
/// On/Off buffers and random distributed routing.
///
/// # Example
///
/// ```
/// use lnuca_core::LNucaConfig;
///
/// let cfg = LNucaConfig::paper(3)?;
/// assert_eq!(cfg.levels, 3);
/// assert_eq!(cfg.tile_size_bytes, 8 * 1024);
/// cfg.validate()?;
/// # Ok::<(), lnuca_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LNucaConfig {
    /// Number of levels including the root tile (2..=8).
    pub levels: u8,
    /// Capacity of each tile in bytes.
    pub tile_size_bytes: u64,
    /// Associativity of each tile.
    pub tile_ways: usize,
    /// Block size in bytes (shared with the root tile to allow migration).
    pub block_size: u64,
    /// Entries per Transport/Replacement flow-control buffer.
    pub buffer_entries: usize,
    /// Routing policy for the Transport and Replacement networks.
    pub routing: RoutingPolicy,
    /// Replacement policy inside each tile.
    pub tile_replacement: ReplacementPolicy,
    /// Seed for the distributed random routing decisions.
    pub seed: u64,
}

impl LNucaConfig {
    /// The paper's configuration with the given number of levels.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `levels` is out of range.
    pub fn paper(levels: u8) -> Result<Self, ConfigError> {
        let cfg = LNucaConfig {
            levels,
            ..Self::default()
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks all parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        crate::geometry::LNucaGeometry::new(self.levels)?;
        if self.tile_size_bytes == 0 || !self.tile_size_bytes.is_power_of_two() {
            return Err(ConfigError::new(
                "tile_size_bytes",
                format!("must be a nonzero power of two, got {}", self.tile_size_bytes),
            ));
        }
        if self.block_size == 0 || !self.block_size.is_power_of_two() {
            return Err(ConfigError::new(
                "block_size",
                format!("must be a nonzero power of two, got {}", self.block_size),
            ));
        }
        if self.block_size > self.tile_size_bytes {
            return Err(ConfigError::new(
                "block_size",
                "must not exceed the tile size",
            ));
        }
        if self.tile_ways == 0 {
            return Err(ConfigError::new("tile_ways", "must be nonzero"));
        }
        if self.buffer_entries == 0 {
            return Err(ConfigError::new("buffer_entries", "must be nonzero"));
        }
        // The tile itself must form a valid cache geometry.
        lnuca_mem::CacheGeometry::new(self.tile_size_bytes, self.tile_ways, self.block_size)?;
        Ok(())
    }
}

impl Default for LNucaConfig {
    fn default() -> Self {
        LNucaConfig {
            levels: 3,
            tile_size_bytes: 8 * 1024,
            tile_ways: 2,
            block_size: 32,
            buffer_entries: 2,
            routing: RoutingPolicy::RandomValid,
            tile_replacement: ReplacementPolicy::Lru,
            seed: 0xC0FF_EE00,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table1() {
        let cfg = LNucaConfig::default();
        assert_eq!(cfg.tile_size_bytes, 8 * 1024);
        assert_eq!(cfg.tile_ways, 2);
        assert_eq!(cfg.block_size, 32);
        assert_eq!(cfg.buffer_entries, 2);
        assert_eq!(cfg.routing, RoutingPolicy::RandomValid);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn paper_constructor_validates_levels() {
        assert!(LNucaConfig::paper(2).is_ok());
        assert!(LNucaConfig::paper(4).is_ok());
        assert!(LNucaConfig::paper(1).is_err());
        assert!(LNucaConfig::paper(12).is_err());
    }

    #[test]
    fn validation_catches_each_field() {
        let base = LNucaConfig::default();
        assert!(LNucaConfig { tile_size_bytes: 3000, ..base.clone() }.validate().is_err());
        assert!(LNucaConfig { block_size: 0, ..base.clone() }.validate().is_err());
        assert!(LNucaConfig { block_size: 16 * 1024, ..base.clone() }.validate().is_err());
        assert!(LNucaConfig { tile_ways: 0, ..base.clone() }.validate().is_err());
        assert!(LNucaConfig { buffer_entries: 0, ..base.clone() }.validate().is_err());
        assert!(LNucaConfig { tile_ways: 3, ..base }.validate().is_err());
    }
}
