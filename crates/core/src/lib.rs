//! # Light NUCA (L-NUCA) — the paper's primary contribution
//!
//! This crate implements the tiled cache fabric proposed in *"Light NUCA: a
//! proposal for bridging the inter-cache latency gap"* (Suárez et al., DATE
//! 2009): a grid of small (8 KB) single-cycle cache tiles surrounding the L1
//! ("root tile"), interconnected by three dedicated unidirectional networks:
//!
//! * **Search** — a broadcast tree propagating miss requests outward one
//!   level per cycle and collecting global misses with a one-cycle miss line,
//! * **Transport** — a 2-D mesh pointing toward the root tile that returns
//!   hit blocks with path diversity and headerless, randomly-routed messages,
//! * **Replacement** — a latency-ordered "domino" network that spills root
//!   tile victims outward, turning the fabric into a distributed victim
//!   cache with content exclusion.
//!
//! The fabric is exposed through [`LNuca`]; the geometry (tile counts per
//! level, network neighbourhoods, per-tile latencies) lives in [`geometry`],
//! and [`LNucaStats`] carries the counters the paper's Table III and energy
//! evaluation are built from.
//!
//! # Example
//!
//! ```
//! use lnuca_core::{LNuca, LNucaConfig};
//! use lnuca_types::{Addr, Cycle, ReqId};
//!
//! // Build the paper's 3-level, 144 KB configuration.
//! let mut fabric = LNuca::new(LNucaConfig::paper(3)?)?;
//! assert_eq!(fabric.geometry().tile_count(), 14);
//!
//! // Place a block in the fabric (as a root-tile eviction), then find it.
//! fabric.evict_from_root(Addr(0x8000), false);
//! for c in 0..4 {
//!     fabric.tick(Cycle(c));
//! }
//! fabric.inject_search(Addr(0x8000), ReqId(1), false, Cycle(4));
//! let mut arrivals = Vec::new();
//! for c in 4..10 {
//!     fabric.tick(Cycle(c));
//!     arrivals.extend(fabric.pop_arrivals(Cycle(c)));
//! }
//! assert_eq!(arrivals.len(), 1);
//! assert_eq!(arrivals[0].hit_level, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fabric;
pub mod geometry;
pub mod msg;
pub mod stats;

pub use config::LNucaConfig;
pub use fabric::LNuca;
pub use geometry::{Hop, LNucaGeometry, TileCoord};
pub use msg::{Arrival, GlobalMiss, ReplMsg, SearchMsg, Spill, TransportMsg};
pub use stats::LNucaStats;
