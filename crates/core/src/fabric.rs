//! The L-NUCA fabric: tiles plus the Search, Transport and Replacement
//! networks, advanced one processor cycle at a time.

use crate::config::LNucaConfig;
use crate::geometry::{Hop, LNucaGeometry};
use crate::msg::{Arrival, GlobalMiss, ReplMsg, Spill, TransportMsg};
use crate::stats::LNucaStats;
use lnuca_mem::{CacheArray, CacheGeometry};
use lnuca_noc::{NodeId, OnOffBuffer, RoutingPolicy};
use lnuca_types::{Addr, ConfigError, Cycle, ReqId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// A search request travelling outward, one level per cycle.
#[derive(Debug, Clone)]
struct SearchInFlight {
    addr: Addr,
    req: ReqId,
    is_write: bool,
    /// Level whose tiles will be looked up next.
    level: u8,
    /// Tiles of `level` that received the request.
    active: Vec<usize>,
    /// Cycle at which `level` is looked up.
    process_at: Cycle,
    /// A tile (or U buffer) already produced the block.
    resolved: bool,
}

/// A buffered network message plus the cycle from which it may be forwarded
/// (store-and-forward: one hop per cycle).
#[derive(Debug, Clone, Copy)]
struct Buffered<T> {
    msg: T,
    forwardable_at: Cycle,
}

/// The Light NUCA fabric (everything except the root tile).
///
/// The fabric owns the tile arrays, the per-tile Transport (D) and
/// Replacement (U) buffers and the in-flight search state. The root tile —
/// a conventional L1 — lives in the hierarchy model (`lnuca-sim`), which
/// drives the fabric through this interface each cycle:
///
/// 1. [`LNuca::inject_search`] when the root tile misses,
/// 2. [`LNuca::evict_from_root`] when a fill displaces a root-tile victim,
/// 3. [`LNuca::tick`] exactly once per cycle,
/// 4. [`LNuca::drain_arrivals_into`], [`LNuca::drain_global_misses_into`]
///    and [`LNuca::drain_spills_into`] to collect the fabric's outputs into
///    caller-owned scratch buffers (the allocating [`LNuca::pop_arrivals`]
///    et al. remain as conveniences for tests and examples).
///
/// # Zero-allocation invariant
///
/// Steady-state cycles — `tick` plus the three `drain_*_into` calls —
/// perform **no heap allocation**: every per-cycle working set (hit lists,
/// search frontiers, routing candidates) lives in scratch buffers owned by
/// the fabric whose capacity is reached within the first few thousand
/// cycles and then reused forever. New fabric code must preserve this:
/// never `collect()` or build a fresh `Vec`/`VecDeque` inside `tick` or its
/// phases; add a reusable scratch field instead (see DESIGN.md §9).
///
/// # Example
///
/// ```
/// use lnuca_core::{LNuca, LNucaConfig};
/// use lnuca_types::{Addr, Cycle, ReqId};
///
/// let mut fabric = LNuca::new(LNucaConfig::paper(2)?)?;
/// // An empty fabric misses everywhere: the search reaches Le2 one cycle
/// // after injection and the global miss is known one cycle later.
/// assert!(fabric.inject_search(Addr(0x80), ReqId(1), false, Cycle(0)));
/// for c in 0..4 {
///     fabric.tick(Cycle(c));
/// }
/// let misses = fabric.pop_global_misses(Cycle(3));
/// assert_eq!(misses.len(), 1);
/// assert_eq!(misses[0].determined_at, Cycle(2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct LNuca {
    config: LNucaConfig,
    geometry: LNucaGeometry,
    routing: RoutingPolicy,
    rng: SmallRng,

    tiles: Vec<CacheArray>,
    pending_victims: Vec<Option<ReplMsg>>,
    pending_transport: Vec<Vec<Buffered<TransportMsg>>>,
    transport_in: Vec<OnOffBuffer<Buffered<TransportMsg>>>,
    replacement_in: Vec<OnOffBuffer<Buffered<ReplMsg>>>,

    searches: Vec<SearchInFlight>,
    root_evict_queue: VecDeque<ReplMsg>,

    arrivals: VecDeque<Arrival>,
    global_misses: VecDeque<GlobalMiss>,
    spills: VecDeque<Spill>,

    // Cached geometry queries (the hot loop must not recompute them).
    search_roots: Vec<usize>,
    search_children: Vec<Vec<usize>>,
    transport_next: Vec<Vec<Hop>>,
    replacement_next: Vec<Vec<usize>>,
    root_targets: Vec<usize>,
    transport_order: Vec<usize>,
    min_transport_latency: Vec<u64>,
    tile_level: Vec<u8>,

    search_touched: Vec<bool>,
    last_injection: Option<Cycle>,
    stats: LNucaStats,

    // Reusable per-cycle scratch space (the zero-allocation invariant).
    // Each buffer is cleared at the start of the phase that uses it and
    // never escapes `tick`; retired search frontiers return to the pool so
    // `inject_search` does not allocate either.
    scratch_hits: Vec<(usize, TransportMsg)>,
    scratch_frontier: Vec<usize>,
    scratch_viable: Vec<NodeId>,
    frontier_pool: Vec<Vec<usize>>,
}

impl LNuca {
    /// Builds an empty fabric from its configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is invalid.
    pub fn new(config: LNucaConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let geometry = LNucaGeometry::new(config.levels)?;
        let tile_geometry =
            CacheGeometry::new(config.tile_size_bytes, config.tile_ways, config.block_size)?;
        let n = geometry.tile_count();

        let tiles = (0..n)
            .map(|_| CacheArray::new(tile_geometry, config.tile_replacement))
            .collect();
        let transport_in = (0..n).map(|_| OnOffBuffer::new(config.buffer_entries)).collect();
        let replacement_in = (0..n).map(|_| OnOffBuffer::new(config.buffer_entries)).collect();

        let search_roots = geometry.search_roots();
        let search_children: Vec<Vec<usize>> = (0..n).map(|i| geometry.search_children(i)).collect();
        let transport_next: Vec<Vec<Hop>> = (0..n).map(|i| geometry.transport_next(i)).collect();
        let replacement_next: Vec<Vec<usize>> = (0..n).map(|i| geometry.replacement_next(i)).collect();
        let root_targets = geometry.root_evict_targets();
        let min_transport_latency: Vec<u64> =
            (0..n).map(|i| geometry.coord(i).manhattan_to_root()).collect();
        let tile_level: Vec<u8> = (0..n).map(|i| geometry.coord(i).level()).collect();
        let mut transport_order: Vec<usize> = (0..n).collect();
        transport_order.sort_by_key(|&i| min_transport_latency[i]);

        let stats = LNucaStats::new(config.levels);
        let rng = SmallRng::seed_from_u64(config.seed);
        let routing = config.routing;

        Ok(LNuca {
            config,
            geometry,
            routing,
            rng,
            tiles,
            pending_victims: vec![None; n],
            pending_transport: vec![Vec::new(); n],
            transport_in,
            replacement_in,
            searches: Vec::new(),
            root_evict_queue: VecDeque::new(),
            arrivals: VecDeque::new(),
            global_misses: VecDeque::new(),
            spills: VecDeque::new(),
            search_roots,
            search_children,
            transport_next,
            replacement_next,
            root_targets,
            transport_order,
            min_transport_latency,
            tile_level,
            search_touched: vec![false; n],
            last_injection: None,
            stats,
            scratch_hits: Vec::new(),
            scratch_frontier: Vec::new(),
            scratch_viable: Vec::new(),
            frontier_pool: Vec::new(),
        })
    }

    /// The configuration this fabric was built with.
    #[must_use]
    pub fn config(&self) -> &LNucaConfig {
        &self.config
    }

    /// The geometry of this fabric.
    #[must_use]
    pub fn geometry(&self) -> &LNucaGeometry {
        &self.geometry
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &LNucaStats {
        &self.stats
    }

    /// Total tile capacity in bytes (the root tile is not included).
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.geometry.capacity_bytes(self.config.tile_size_bytes)
    }

    /// Number of blocks currently resident across all tiles (not counting
    /// blocks in flight in the Replacement network).
    #[must_use]
    pub fn resident_blocks(&self) -> usize {
        self.tiles.iter().map(CacheArray::resident).sum()
    }

    /// Returns `true` if the block containing `addr` is anywhere in the
    /// fabric: in a tile, in an in-flight Replacement buffer, in a pending
    /// victim slot or in the root eviction queue.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        let base = addr.block_base(self.config.block_size);
        self.tiles.iter().any(|t| t.contains(base))
            || self
                .replacement_in
                .iter()
                .any(|b| b.iter().any(|m| m.msg.addr == base))
            || self.pending_victims.iter().flatten().any(|m| m.addr == base)
            || self.root_evict_queue.iter().any(|m| m.addr == base)
            || self
                .pending_transport
                .iter()
                .flatten()
                .any(|m| m.msg.addr == base)
            || self
                .transport_in
                .iter()
                .any(|b| b.iter().any(|m| m.msg.addr == base))
    }

    /// Every block currently owned by the fabric, with its dirty state:
    /// blocks resident in tiles, in flight in the Transport/Replacement
    /// buffers, parked in pending slots, queued for root eviction, and
    /// sitting in the undrained arrival/spill output queues.
    ///
    /// This is the full-custody enumeration the differential oracle in
    /// `lnuca-verify` compares against its exclusion-set reference model:
    /// a block handed to the fabric via [`LNuca::evict_from_root`] appears
    /// here until it leaves through an arrival or a spill. Allocates a
    /// fresh `Vec`; verification and tests only, never the hot loop.
    #[must_use]
    pub fn resident_lines(&self) -> Vec<lnuca_mem::Line> {
        let mut lines: Vec<lnuca_mem::Line> = Vec::new();
        for tile in &self.tiles {
            lines.extend(tile.iter());
        }
        let repl = |m: &ReplMsg| lnuca_mem::Line {
            addr: m.addr,
            dirty: m.dirty,
        };
        lines.extend(self.pending_victims.iter().flatten().map(repl));
        lines.extend(self.root_evict_queue.iter().map(repl));
        for buf in &self.replacement_in {
            lines.extend(buf.iter().map(|b| repl(&b.msg)));
        }
        for buf in &self.transport_in {
            lines.extend(buf.iter().map(|b| lnuca_mem::Line {
                addr: b.msg.addr,
                dirty: b.msg.dirty,
            }));
        }
        for pending in &self.pending_transport {
            lines.extend(pending.iter().map(|b| lnuca_mem::Line {
                addr: b.msg.addr,
                dirty: b.msg.dirty,
            }));
        }
        lines.extend(self.arrivals.iter().map(|a| lnuca_mem::Line {
            addr: a.addr,
            dirty: a.dirty,
        }));
        lines.extend(self.spills.iter().map(|s| lnuca_mem::Line {
            addr: s.addr,
            dirty: s.dirty,
        }));
        lines
    }

    /// Removes the block containing `addr` from every tile and buffer
    /// (needed to enforce inclusion/coherence invalidations from the next
    /// cache level). Returns `true` if anything was removed.
    pub fn invalidate(&mut self, addr: Addr) -> bool {
        let base = addr.block_base(self.config.block_size);
        let mut removed = false;
        for tile in &mut self.tiles {
            removed |= tile.invalidate(base).is_some();
        }
        for pv in &mut self.pending_victims {
            if pv.map(|m| m.addr) == Some(base) {
                *pv = None;
                removed = true;
            }
        }
        let before = self.root_evict_queue.len();
        self.root_evict_queue.retain(|m| m.addr != base);
        removed |= self.root_evict_queue.len() != before;
        for buf in &mut self.replacement_in {
            let before = buf.len();
            buf.retain(|m| m.msg.addr != base);
            removed |= buf.len() != before;
        }
        for buf in &mut self.transport_in {
            let before = buf.len();
            buf.retain(|m| m.msg.addr != base);
            removed |= buf.len() != before;
        }
        for pending in &mut self.pending_transport {
            let before = pending.len();
            pending.retain(|m| m.msg.addr != base);
            removed |= pending.len() != before;
        }
        removed
    }

    /// Injects a search for the block containing `addr` on behalf of request
    /// `req`. Returns `false` (and does nothing) if a search was already
    /// injected this cycle — the Search network has a single injection point,
    /// so the caller must retry next cycle.
    pub fn inject_search(&mut self, addr: Addr, req: ReqId, is_write: bool, now: Cycle) -> bool {
        if self.last_injection == Some(now) {
            return false;
        }
        self.last_injection = Some(now);
        self.stats.searches += 1;
        let base = addr.block_base(self.config.block_size);
        let mut active = self.frontier_pool.pop().unwrap_or_default();
        active.clear();
        active.extend_from_slice(&self.search_roots);
        self.searches.push(SearchInFlight {
            addr: base,
            req,
            is_write,
            level: 2,
            active,
            process_at: now.next(),
            resolved: false,
        });
        true
    }

    /// Hands the fabric a victim block displaced from the root tile. The
    /// block enters the Replacement network at one of the latency-3 level-2
    /// tiles (the paper's "evict a victim block to an Le2 tile").
    pub fn evict_from_root(&mut self, addr: Addr, dirty: bool) {
        let base = addr.block_base(self.config.block_size);
        self.stats.root_evictions += 1;
        self.root_evict_queue.push_back(ReplMsg { addr: base, dirty });
    }

    /// Appends the hit blocks delivered to the root tile up to and including
    /// `now` to `out`, oldest first.
    ///
    /// `out` is not cleared: the caller owns the scratch buffer, clears it
    /// once per cycle and reuses its capacity forever, so steady-state
    /// cycles allocate nothing.
    pub fn drain_arrivals_into(&mut self, now: Cycle, out: &mut Vec<Arrival>) {
        while let Some(front) = self.arrivals.front() {
            if front.available_at <= now {
                out.push(self.arrivals.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
    }

    /// Appends the global misses determined up to and including `now` to
    /// `out`, oldest first. Same buffer contract as
    /// [`LNuca::drain_arrivals_into`].
    pub fn drain_global_misses_into(&mut self, now: Cycle, out: &mut Vec<GlobalMiss>) {
        while let Some(front) = self.global_misses.front() {
            if front.determined_at <= now {
                out.push(self.global_misses.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
    }

    /// Appends the blocks evicted out of the fabric toward the next cache
    /// level up to and including `now` to `out`, oldest first. Same buffer
    /// contract as [`LNuca::drain_arrivals_into`].
    pub fn drain_spills_into(&mut self, now: Cycle, out: &mut Vec<Spill>) {
        while let Some(front) = self.spills.front() {
            if front.at <= now {
                out.push(self.spills.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
    }

    /// Hit blocks delivered to the root tile up to and including `now`.
    ///
    /// Allocates a fresh `Vec` per call; tests and examples only. The hot
    /// loop uses [`LNuca::drain_arrivals_into`].
    pub fn pop_arrivals(&mut self, now: Cycle) -> Vec<Arrival> {
        let mut out = Vec::new();
        self.drain_arrivals_into(now, &mut out);
        out
    }

    /// Global misses determined up to and including `now` (allocating
    /// convenience over [`LNuca::drain_global_misses_into`]).
    pub fn pop_global_misses(&mut self, now: Cycle) -> Vec<GlobalMiss> {
        let mut out = Vec::new();
        self.drain_global_misses_into(now, &mut out);
        out
    }

    /// Blocks evicted out of the fabric toward the next cache level up to and
    /// including `now` (allocating convenience over
    /// [`LNuca::drain_spills_into`]).
    pub fn pop_spills(&mut self, now: Cycle) -> Vec<Spill> {
        let mut out = Vec::new();
        self.drain_spills_into(now, &mut out);
        out
    }

    /// Earliest cycle strictly after `now` at which ticking the fabric could
    /// change its state, or `None` when the fabric is completely empty
    /// (event-horizon contract, DESIGN.md §10).
    ///
    /// The fabric moves something every cycle while *anything* is in flight
    /// — searches advance a level per cycle, buffered messages hop, parked
    /// messages retry (and count stall cycles) — so any in-flight state
    /// reports "busy" (`now + 1`). With the tiles and networks drained, the
    /// only remaining events are the timestamps of undelivered outputs,
    /// which the hierarchy must drain at exactly their maturity cycles.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let floor = now.next();
        if !self.searches.is_empty()
            || !self.root_evict_queue.is_empty()
            || self.pending_victims.iter().any(Option::is_some)
            || self.pending_transport.iter().any(|p| !p.is_empty())
        {
            return Some(floor);
        }
        let mut horizon: Option<Cycle> = None;
        let merge = |cur: &mut Option<Cycle>, at: Cycle| Cycle::merge_horizon(cur, at, floor);
        for buffer in &self.transport_in {
            if let Some(at) = buffer.next_event_by(|m| m.forwardable_at) {
                merge(&mut horizon, at);
            }
        }
        for buffer in &self.replacement_in {
            if let Some(at) = buffer.next_event_by(|m| m.forwardable_at) {
                merge(&mut horizon, at);
            }
        }
        // Output queues are pushed in timestamp order, so the fronts are the
        // minima (the same ordering `drain_*_into` relies on).
        if let Some(arrival) = self.arrivals.front() {
            merge(&mut horizon, arrival.available_at);
        }
        if let Some(miss) = self.global_misses.front() {
            merge(&mut horizon, miss.determined_at);
        }
        if let Some(spill) = self.spills.front() {
            merge(&mut horizon, spill.at);
        }
        horizon
    }

    /// Advances the fabric by one cycle. Must be called exactly once per
    /// simulated cycle with a non-decreasing `now`.
    pub fn tick(&mut self, now: Cycle) {
        self.search_touched.iter_mut().for_each(|t| *t = false);
        self.search_phase(now);
        self.transport_phase(now);
        self.replacement_phase(now);
        self.root_evict_phase(now);
    }

    // ----- tick phases -------------------------------------------------

    fn search_phase(&mut self, now: Cycle) {
        debug_assert!(self.scratch_hits.is_empty());
        let last_level = self.config.levels;

        let mut i = 0;
        while i < self.searches.len() {
            if self.searches[i].process_at != now {
                i += 1;
                continue;
            }
            let addr = self.searches[i].addr;
            let req = self.searches[i].req;
            let is_write = self.searches[i].is_write;
            let level = self.searches[i].level;
            // The frontier vector is taken out of the search (and later
            // either handed back or recycled into the pool) so the tile loop
            // can borrow the rest of `self` freely without cloning it.
            let mut active = std::mem::take(&mut self.searches[i].active);
            self.stats.search_link_traversals += active.len() as u64;

            self.scratch_frontier.clear();
            let mut hit_this_level = false;
            for &tile in &active {
                self.search_touched[tile] = true;
                self.stats.tile_lookups += 1;

                // The U buffers are searched in parallel with the tag array to
                // catch blocks in transit (avoiding false misses).
                let mut found_dirty: Option<bool> = None;
                if let Some(d) = self.take_from_replacement_buffers(tile, addr) {
                    self.stats.in_flight_hits += 1;
                    found_dirty = Some(d);
                } else if let Some(line) = self.tiles[tile].lookup(addr) {
                    // Content exclusion: the block moves to the root tile, so
                    // it leaves this tile.
                    self.tiles[tile].invalidate(addr);
                    found_dirty = Some(line.dirty);
                }

                if let Some(dirty) = found_dirty {
                    hit_this_level = true;
                    let bucket = (level - 2) as usize;
                    if is_write {
                        self.stats.write_hits_per_level[bucket] += 1;
                    } else {
                        self.stats.read_hits_per_level[bucket] += 1;
                    }
                    self.scratch_hits.push((
                        tile,
                        TransportMsg {
                            addr,
                            req,
                            dirty,
                            hit_level: level,
                            hit_at: now,
                            min_latency: self.min_transport_latency[tile],
                        },
                    ));
                } else {
                    self.scratch_frontier.extend_from_slice(&self.search_children[tile]);
                }
            }

            let search = &mut self.searches[i];
            if hit_this_level {
                search.resolved = true;
            }
            if level >= last_level || self.scratch_frontier.is_empty() {
                // Last level processed: the global-miss line gathers the miss
                // status one cycle later.
                if !search.resolved {
                    self.stats.global_misses += 1;
                    self.global_misses.push_back(GlobalMiss {
                        addr,
                        req,
                        is_write,
                        determined_at: now.next(),
                    });
                }
                self.searches.swap_remove(i);
                active.clear();
                self.frontier_pool.push(active);
            } else {
                search.level = level + 1;
                active.clear();
                active.extend_from_slice(&self.scratch_frontier);
                search.active = active;
                search.process_at = now.next();
                i += 1;
            }
        }

        // A hit performs its cache access and one hop of routing in the same
        // cycle (the paper's single-cycle tile), so the block leaves the tile
        // now and is available one hop downstream at the start of next cycle.
        let mut hits = std::mem::take(&mut self.scratch_hits);
        for &(tile, msg) in &hits {
            self.forward_transport(tile, msg, now);
        }
        hits.clear();
        self.scratch_hits = hits;
    }

    fn take_from_replacement_buffers(&mut self, tile: usize, addr: Addr) -> Option<bool> {
        if let Some(pv) = self.pending_victims[tile] {
            if pv.addr == addr {
                self.pending_victims[tile] = None;
                return Some(pv.dirty);
            }
        }
        let buf = &mut self.replacement_in[tile];
        let mut dirty = None;
        buf.retain(|m| {
            if m.msg.addr == addr {
                dirty = Some(m.msg.dirty);
                false
            } else {
                true
            }
        });
        dirty
    }

    /// Sends a transport message one hop toward the root, or parks it in the
    /// tile's pending slot if every downstream buffer is Off.
    fn forward_transport(&mut self, tile: usize, msg: TransportMsg, now: Cycle) {
        let root = NodeId(self.tiles.len());
        self.scratch_viable.clear();
        for hop in &self.transport_next[tile] {
            match *hop {
                Hop::Root => self.scratch_viable.push(root),
                Hop::Tile(t) => {
                    if self.transport_in[t].is_on() {
                        self.scratch_viable.push(NodeId(t));
                    }
                }
            }
        }
        match self.routing.choose(&self.scratch_viable, &mut self.rng) {
            Some(node) if node.0 == self.tiles.len() => {
                self.stats.transport_link_traversals += 1;
                self.deliver_to_root(msg, now);
            }
            Some(node) => {
                self.stats.transport_link_traversals += 1;
                self.transport_in[node.0]
                    .push(Buffered {
                        msg,
                        forwardable_at: now.next(),
                    })
                    .unwrap_or_else(|_| unreachable!("buffer was checked to be On"));
            }
            None => {
                // All downstream buffers Off: hold the message in the tile
                // and retry next cycle (the paper's contention-marked search
                // restart is a rare corner case; holding is equivalent in
                // timing and simpler).
                self.stats.transport_stall_cycles += 1;
                self.pending_transport[tile].push(Buffered {
                    msg,
                    forwardable_at: now.next(),
                });
            }
        }
    }

    fn deliver_to_root(&mut self, msg: TransportMsg, now: Cycle) {
        let available_at = now.next();
        let transport_latency = available_at.since(msg.hit_at);
        self.stats.transport_deliveries += 1;
        self.stats.transport_latency_sum += transport_latency;
        self.stats.transport_min_latency_sum += msg.min_latency;
        self.arrivals.push_back(Arrival {
            addr: msg.addr,
            req: msg.req,
            dirty: msg.dirty,
            hit_level: msg.hit_level,
            available_at,
            transport_latency,
            min_transport_latency: msg.min_latency,
        });
    }

    fn transport_phase(&mut self, now: Cycle) {
        // Indexed loop rather than iteration: `forward_transport` needs the
        // whole `&mut self`, and `transport_order` never changes, so cloning
        // it every cycle was pure allocation overhead.
        for order_idx in 0..self.transport_order.len() {
            let tile = self.transport_order[order_idx];
            // How many messages can this tile forward this cycle: one per
            // output link.
            let max_sends = self.transport_next[tile].len();
            let mut sent = 0;
            // First retry messages that stalled in this tile.
            while sent < max_sends {
                let candidate = self
                    .pending_transport[tile]
                    .iter()
                    .position(|m| m.forwardable_at <= now);
                let Some(pos) = candidate else { break };
                let msg = self.pending_transport[tile].remove(pos);
                self.forward_transport(tile, msg.msg, now);
                sent += 1;
            }
            // Then drain the input buffers.
            while sent < max_sends {
                let forwardable = self.transport_in[tile]
                    .front()
                    .is_some_and(|m| m.forwardable_at <= now);
                if !forwardable {
                    break;
                }
                let msg = self.transport_in[tile].pop().expect("front exists");
                self.forward_transport(tile, msg.msg, now);
                sent += 1;
            }
        }
    }

    fn replacement_phase(&mut self, now: Cycle) {
        for tile in 0..self.tiles.len() {
            // Replacement only proceeds during search-idle cycles.
            if self.search_touched[tile] {
                continue;
            }
            // 1. Try to push the pending victim one hop outward.
            if let Some(victim) = self.pending_victims[tile] {
                if self.replacement_next[tile].is_empty() {
                    // Corner tile of the last level: evict to the next cache
                    // level.
                    self.pending_victims[tile] = None;
                    self.stats.spills += 1;
                    self.spills.push_back(Spill {
                        addr: victim.addr,
                        dirty: victim.dirty,
                        at: now,
                    });
                } else {
                    self.scratch_viable.clear();
                    for &t in &self.replacement_next[tile] {
                        if self.replacement_in[t].is_on() {
                            self.scratch_viable.push(NodeId(t));
                        }
                    }
                    match self.routing.choose(&self.scratch_viable, &mut self.rng) {
                        Some(node) => {
                            self.pending_victims[tile] = None;
                            self.stats.replacement_link_traversals += 1;
                            self.replacement_in[node.0]
                                .push(Buffered {
                                    msg: victim,
                                    forwardable_at: now.next(),
                                })
                                .unwrap_or_else(|_| unreachable!("buffer was checked to be On"));
                        }
                        None => {
                            self.stats.replacement_stall_cycles += 1;
                        }
                    }
                }
            }
            // 2. Accept one incoming block if the victim slot is free.
            if self.pending_victims[tile].is_none() {
                let acceptable = self.replacement_in[tile]
                    .front()
                    .is_some_and(|m| m.forwardable_at <= now);
                if acceptable {
                    let incoming = self.replacement_in[tile].pop().expect("front exists");
                    self.stats.tile_fills += 1;
                    if let Some(evicted) =
                        self.tiles[tile].fill(incoming.msg.addr, incoming.msg.dirty)
                    {
                        self.pending_victims[tile] = Some(ReplMsg {
                            addr: evicted.addr,
                            dirty: evicted.dirty,
                        });
                    }
                }
            }
        }
    }

    fn root_evict_phase(&mut self, now: Cycle) {
        if let Some(&victim) = self.root_evict_queue.front() {
            self.scratch_viable.clear();
            for &t in &self.root_targets {
                if self.replacement_in[t].is_on() {
                    self.scratch_viable.push(NodeId(t));
                }
            }
            if let Some(node) = self.routing.choose(&self.scratch_viable, &mut self.rng) {
                self.root_evict_queue.pop_front();
                self.stats.replacement_link_traversals += 1;
                self.replacement_in[node.0]
                    .push(Buffered {
                        msg: victim,
                        forwardable_at: now.next(),
                    })
                    .unwrap_or_else(|_| unreachable!("buffer was checked to be On"));
            } else {
                self.stats.replacement_stall_cycles += 1;
            }
        }
    }

    /// The level (2-based) of the tile with the given index. Exposed for the
    /// energy model and the tests.
    #[must_use]
    pub fn tile_level(&self, tile: usize) -> u8 {
        self.tile_level[tile]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(levels: u8) -> LNuca {
        LNuca::new(LNucaConfig::paper(levels).unwrap()).unwrap()
    }

    /// Runs the fabric for `cycles` cycles starting at `start`, collecting
    /// all outputs.
    fn run(
        f: &mut LNuca,
        start: u64,
        cycles: u64,
    ) -> (Vec<Arrival>, Vec<GlobalMiss>, Vec<Spill>) {
        let mut arrivals = Vec::new();
        let mut misses = Vec::new();
        let mut spills = Vec::new();
        for c in start..start + cycles {
            f.tick(Cycle(c));
            arrivals.extend(f.pop_arrivals(Cycle(c)));
            misses.extend(f.pop_global_misses(Cycle(c)));
            spills.extend(f.pop_spills(Cycle(c)));
        }
        (arrivals, misses, spills)
    }

    #[test]
    fn empty_fabric_reports_global_miss_after_last_level_plus_one() {
        for levels in 2..=4u8 {
            let mut f = fabric(levels);
            assert!(f.inject_search(Addr(0x1000), ReqId(1), false, Cycle(0)));
            let (arrivals, misses, _) = run(&mut f, 0, 16);
            assert!(arrivals.is_empty());
            assert_eq!(misses.len(), 1);
            // Level l is looked up at cycle l-1; the miss line adds one cycle.
            assert_eq!(misses[0].determined_at, Cycle(u64::from(levels)));
            assert_eq!(f.stats().global_misses, 1);
        }
    }

    #[test]
    fn only_one_search_injection_per_cycle() {
        let mut f = fabric(2);
        assert!(f.inject_search(Addr(0x100), ReqId(1), false, Cycle(5)));
        assert!(!f.inject_search(Addr(0x200), ReqId(2), false, Cycle(5)));
        assert!(f.inject_search(Addr(0x200), ReqId(2), false, Cycle(6)));
    }

    #[test]
    fn a_block_evicted_from_root_is_found_by_a_later_search() {
        let mut f = fabric(3);
        let addr = Addr(0x4_0000);
        f.evict_from_root(addr, false);
        // Give the fabric time to place the block in an Le2 tile.
        run(&mut f, 0, 6);
        assert!(f.contains(addr));
        assert!(f.inject_search(addr, ReqId(9), false, Cycle(6)));
        let (arrivals, misses, _) = run(&mut f, 6, 12);
        assert_eq!(misses.len(), 0, "the block is in the fabric, no global miss");
        assert_eq!(arrivals.len(), 1);
        let a = &arrivals[0];
        assert_eq!(a.addr, addr);
        assert_eq!(a.req, ReqId(9));
        assert_eq!(a.hit_level, 2);
        // Exclusion: after servicing the hit the block has left the fabric.
        assert!(!f.contains(addr));
        assert_eq!(f.stats().read_hits_in_level(2), 1);
    }

    #[test]
    fn le2_hit_latency_is_search_plus_one_hop() {
        let mut f = fabric(3);
        let addr = Addr(0x880);
        f.evict_from_root(addr, false);
        run(&mut f, 0, 6);
        let inject_at = Cycle(6);
        assert!(f.inject_search(addr, ReqId(1), false, inject_at));
        let (arrivals, _, _) = run(&mut f, 6, 10);
        assert_eq!(arrivals.len(), 1);
        // Search processed by Le2 at cycle 7; hit + one-hop routing in the
        // same cycle; available at the root tile at cycle 8.
        assert_eq!(arrivals[0].available_at, Cycle(8));
        assert_eq!(arrivals[0].transport_latency, 1);
        assert_eq!(arrivals[0].min_transport_latency, 1);
    }

    #[test]
    fn write_searches_count_as_write_hits() {
        let mut f = fabric(2);
        let addr = Addr(0xABC0);
        f.evict_from_root(addr, true);
        run(&mut f, 0, 5);
        assert!(f.inject_search(addr, ReqId(1), true, Cycle(5)));
        let (arrivals, _, _) = run(&mut f, 5, 8);
        assert_eq!(arrivals.len(), 1);
        assert!(arrivals[0].dirty, "dirtiness travels with the block");
        assert_eq!(f.stats().write_hits_per_level[0], 1);
        assert_eq!(f.stats().read_hits(), 0);
    }

    #[test]
    fn in_flight_blocks_are_found_in_u_buffers() {
        let mut f = fabric(3);
        let addr = Addr(0x77C0);
        // Evict the block and search for it immediately: when the search
        // reaches Le2 (one cycle after injection) the block is still sitting
        // in an Le2 U buffer, not yet written into any tile array, so the
        // U-buffer comparators must catch it to avoid a false miss.
        f.evict_from_root(addr, false);
        assert!(f.inject_search(addr, ReqId(4), false, Cycle(0)));
        f.tick(Cycle(0));
        assert!(f.contains(addr));
        assert_eq!(f.resident_blocks(), 0, "not yet written into any tile");
        let (arrivals, misses, _) = run(&mut f, 1, 10);
        assert_eq!(misses.len(), 0, "U-buffer lookup avoids the false miss");
        assert_eq!(arrivals.len(), 1);
        assert_eq!(f.stats().in_flight_hits, 1);
    }

    #[test]
    fn evictions_cascade_and_eventually_spill() {
        // Fill the fabric far beyond its capacity with conflicting blocks and
        // check that spills appear and exclusion holds throughout.
        let mut f = fabric(2);
        let block = 32u64;
        let tile_sets = 8 * 1024 / 32 / 2; // 128 sets per tile
        let total_blocks = f.geometry().tile_count() as u64 * 2 + 8;
        let mut spilled = 0;
        for i in 0..total_blocks {
            // Same set in every tile: forces the domino quickly.
            let addr = Addr(i * tile_sets as u64 * block * 2);
            f.evict_from_root(addr, i % 2 == 0);
            let (_, _, spills) = run(&mut f, i * 4, 4);
            spilled += spills.len();
        }
        let (_, _, spills) = run(&mut f, total_blocks * 4, 200);
        spilled += spills.len();
        assert!(spilled > 0, "overflow must spill to the next level");
        assert_eq!(f.stats().spills, spilled as u64);
    }

    #[test]
    fn pipelined_searches_occupy_different_levels() {
        let mut f = fabric(4);
        // Inject three searches in consecutive cycles; all miss. They must
        // pipeline: global misses are determined in consecutive cycles.
        for (i, c) in (0..3u64).enumerate() {
            assert!(f.inject_search(Addr(0x1000 + i as u64 * 64), ReqId(i as u64), false, Cycle(c)));
        }
        let (_, misses, _) = run(&mut f, 0, 12);
        assert_eq!(misses.len(), 3);
        let times: Vec<u64> = misses.iter().map(|m| m.determined_at.0).collect();
        assert_eq!(times, vec![4, 5, 6]);
    }

    #[test]
    fn invalidate_removes_blocks_everywhere() {
        let mut f = fabric(2);
        let addr = Addr(0x9999);
        f.evict_from_root(addr, false);
        run(&mut f, 0, 4);
        assert!(f.contains(addr));
        assert!(f.invalidate(addr));
        assert!(!f.contains(addr));
        assert!(!f.invalidate(addr));
    }

    #[test]
    fn invalidate_reports_removal_of_in_flight_blocks() {
        let mut f = fabric(2);
        let addr = Addr(0x5440);
        f.evict_from_root(addr, true);
        // One tick: the victim enters an Le2 U buffer but no tile array yet.
        f.tick(Cycle(0));
        assert!(f.contains(addr));
        assert_eq!(f.resident_blocks(), 0);
        assert!(f.invalidate(addr), "removal from a U buffer must report true");
        assert!(!f.contains(addr));
    }

    #[test]
    fn exclusion_no_block_is_duplicated() {
        let mut f = fabric(3);
        // Insert a set of blocks, search some of them, keep evicting others.
        let addrs: Vec<Addr> = (0..64u64).map(|i| Addr(i * 0x400)).collect();
        let mut cycle = 0u64;
        for (i, &a) in addrs.iter().enumerate() {
            f.evict_from_root(a, i % 3 == 0);
            f.tick(Cycle(cycle));
            cycle += 1;
            if i % 5 == 0 {
                let _ = f.inject_search(a, ReqId(i as u64), false, Cycle(cycle));
            }
            f.tick(Cycle(cycle));
            cycle += 1;
            let _ = f.pop_arrivals(Cycle(cycle));
            let _ = f.pop_global_misses(Cycle(cycle));
            let _ = f.pop_spills(Cycle(cycle));
        }
        // Count occurrences of each block across tiles; duplicates violate
        // content exclusion.
        for &a in &addrs {
            let in_tiles = f.tiles.iter().filter(|t| t.contains(a)).count();
            assert!(in_tiles <= 1, "block {a} duplicated across tiles");
        }
    }

    #[test]
    fn next_event_is_none_only_when_the_fabric_is_empty() {
        let mut f = fabric(3);
        assert_eq!(f.next_event(Cycle(0)), None, "an empty fabric has no events");
        // An in-flight search keeps the fabric busy every cycle.
        assert!(f.inject_search(Addr(0x40), ReqId(1), false, Cycle(0)));
        assert_eq!(f.next_event(Cycle(0)), Some(Cycle(1)));
        // Drive to completion; the undelivered global miss is the only
        // remaining event and is reported at its maturity cycle.
        for c in 0..2 {
            f.tick(Cycle(c));
        }
        let horizon = f.next_event(Cycle(1)).expect("a miss is pending delivery");
        assert!(horizon >= Cycle(2));
        // After every output drains the fabric goes quiet again.
        for c in 2..8 {
            f.tick(Cycle(c));
            let _ = f.pop_arrivals(Cycle(c));
            let _ = f.pop_global_misses(Cycle(c));
            let _ = f.pop_spills(Cycle(c));
        }
        assert_eq!(f.next_event(Cycle(8)), None);
    }

    #[test]
    fn next_event_reports_in_flight_replacement_traffic() {
        let mut f = fabric(2);
        f.evict_from_root(Addr(0x800), false);
        // The victim sits in the root eviction queue: busy.
        assert_eq!(f.next_event(Cycle(0)), Some(Cycle(1)));
        f.tick(Cycle(0));
        // Now it travels the Replacement network: still busy or timestamped.
        assert!(f.next_event(Cycle(0)).is_some());
        for c in 1..8 {
            f.tick(Cycle(c));
        }
        // Settled into a tile: quiet.
        assert_eq!(f.next_event(Cycle(8)), None);
        assert!(f.contains(Addr(0x800)));
    }

    #[test]
    fn stats_accumulate_traversals_and_lookups() {
        let mut f = fabric(3);
        f.inject_search(Addr(0x40), ReqId(0), false, Cycle(0));
        run(&mut f, 0, 8);
        // A full miss searches all 14 tiles of a 3-level fabric.
        assert_eq!(f.stats().tile_lookups, 14);
        assert_eq!(f.stats().search_link_traversals, 14);
        assert_eq!(f.stats().searches, 1);
    }

    /// Batched execution (DESIGN.md §13) builds whole hierarchies inside a
    /// `TagSlab` scope; the fabric participates automatically because its
    /// tiles are `CacheArray`s. Pin both halves of that contract: every
    /// tile's tag lane lands in the ambient slab, and a slab-backed fabric
    /// is bit-identical to an owned-storage one.
    #[test]
    fn tile_tag_lanes_pack_into_an_ambient_slab_without_changing_behaviour() {
        let slab = lnuca_mem::TagSlab::new();
        let mut packed = slab.scoped(|| fabric(3));
        assert!(
            slab.allocated_words() > 0,
            "all 14 tile lanes must be carved from the shared slab"
        );
        assert_eq!(slab.chunk_count(), 1, "a 3-level fabric fits one chunk");

        let mut owned = fabric(3);
        let mut cycle = 0u64;
        for turn in 0..600u64 {
            let addr = Addr((turn % 96) * 0x40 + (turn % 7) * 0x1000);
            for f in [&mut packed, &mut owned] {
                if turn % 3 == 0 {
                    f.evict_from_root(addr, turn % 2 == 0);
                } else {
                    f.inject_search(addr, ReqId(turn), false, Cycle(cycle));
                }
            }
            let (a, b) = (
                run(&mut packed, cycle, 2),
                run(&mut owned, cycle, 2),
            );
            assert_eq!(a, b, "turn {turn}: slab-backed outputs diverged");
            cycle += 2;
        }
        assert_eq!(packed.stats(), owned.stats());
        assert_eq!(packed.resident_lines(), owned.resident_lines());
    }
}
