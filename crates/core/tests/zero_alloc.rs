//! Pins the zero-allocation invariant of the fabric's steady-state cycle
//! loop (DESIGN.md §9): once the scratch buffers have warmed up, `tick` plus
//! the three `drain_*_into` calls must not touch the heap.
//!
//! The test binary installs a counting global allocator; it contains only
//! this one test so the counter observes nothing but the code under test.

use lnuca_core::{LNuca, LNucaConfig};
use lnuca_types::{Addr, Cycle, ReqId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged; the
// counter is a relaxed atomic with no allocator interaction.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Drives `fabric` for `cycles` cycles with the same load pattern as the
/// `sim_throughput` bench: one search every 4 cycles, one root eviction
/// every 8.
fn drive(
    fabric: &mut LNuca,
    start: u64,
    cycles: u64,
    arrivals: &mut Vec<lnuca_core::Arrival>,
    misses: &mut Vec<lnuca_core::GlobalMiss>,
    spills: &mut Vec<lnuca_core::Spill>,
) -> u64 {
    let mut delivered = 0;
    for c in start..start + cycles {
        if c % 4 == 0 {
            let _ = fabric.inject_search(Addr((c % 512) * 0x200), ReqId(c), false, Cycle(c));
        }
        if c % 8 == 0 {
            fabric.evict_from_root(Addr((c % 1024) * 0x40), c % 16 == 0);
        }
        fabric.tick(Cycle(c));
        arrivals.clear();
        misses.clear();
        spills.clear();
        fabric.drain_arrivals_into(Cycle(c), arrivals);
        fabric.drain_global_misses_into(Cycle(c), misses);
        fabric.drain_spills_into(Cycle(c), spills);
        delivered += arrivals.len() as u64;
    }
    delivered
}

#[test]
fn steady_state_cycles_do_not_allocate() {
    for levels in [2u8, 3, 4] {
        let mut fabric =
            LNuca::new(LNucaConfig::paper(levels).expect("valid levels")).expect("valid config");
        let mut arrivals = Vec::new();
        let mut misses = Vec::new();
        let mut spills = Vec::new();

        // Warm-up: scratch buffers, queues and the frontier pool grow to
        // their steady-state capacity.
        drive(&mut fabric, 0, 20_000, &mut arrivals, &mut misses, &mut spills);

        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let delivered = drive(
            &mut fabric,
            20_000,
            10_000,
            &mut arrivals,
            &mut misses,
            &mut spills,
        );
        let after = ALLOCATIONS.load(Ordering::Relaxed);

        assert!(delivered > 0, "the load pattern must produce fabric hits");
        assert_eq!(
            after - before,
            0,
            "levels={levels}: steady-state cycles allocated {} times",
            after - before
        );
    }
}
