//! Cache and network area models (Table II).

use serde::{Deserialize, Serialize};

/// One row of the paper's Table II: configuration name, total L1+second-level
/// area in mm² and the percentage of that area spent on the tile network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Configuration name as printed in the paper.
    pub name: &'static str,
    /// L1 + L2 / L-NUCA area in mm².
    pub area_mm2: f64,
    /// Network share of the area in percent (0 for the conventional L2).
    pub network_percent: f64,
}

/// The paper's Table II, verbatim.
pub const PAPER_TABLE2: [Table2Row; 4] = [
    Table2Row { name: "L2-256KB", area_mm2: 0.91, network_percent: 0.0 },
    Table2Row { name: "LN2-72KB", area_mm2: 0.46, network_percent: 14.01 },
    Table2Row { name: "LN3-144KB", area_mm2: 0.86, network_percent: 18.8 },
    Table2Row { name: "LN4-248KB", area_mm2: 1.59, network_percent: 19.02 },
];

/// A Cacti-like analytical area model calibrated against Table II.
///
/// Areas are linear in capacity with a fixed per-array overhead; multi-ported
/// arrays pay a port factor; L-NUCA tiles add a per-tile router/link area and
/// D-NUCA banks a per-bank virtual-channel router area. The model reproduces
/// the published Table II values within roughly 10–15 % and, more
/// importantly, preserves their ordering (LN3 smaller than the L2 baseline,
/// LN4 substantially larger), which is what the headline claim uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Area per byte of single-ported high-performance SRAM, in mm².
    pub mm2_per_byte: f64,
    /// Fixed per-array overhead (decoders, sense amplifiers), in mm².
    pub array_overhead_mm2: f64,
    /// Multiplicative factor for a second port.
    pub dual_port_factor: f64,
    /// Router + link area added per L-NUCA tile, in mm².
    pub lnuca_network_mm2_per_tile: f64,
    /// Router area added per D-NUCA bank, in mm².
    pub dnuca_router_mm2_per_bank: f64,
    /// Area per byte of low-operating-power SRAM (the L3), in mm².
    pub lop_mm2_per_byte: f64,
}

impl AreaModel {
    /// The calibration used throughout the repository.
    #[must_use]
    pub fn paper() -> Self {
        AreaModel {
            mm2_per_byte: 2.6e-6,
            array_overhead_mm2: 0.012,
            dual_port_factor: 1.9,
            lnuca_network_mm2_per_tile: 0.012,
            dnuca_router_mm2_per_bank: 0.045,
            lop_mm2_per_byte: 1.45e-6,
        }
    }

    /// Area of a single-ported SRAM array of `size_bytes`.
    #[must_use]
    pub fn sram_mm2(&self, size_bytes: u64) -> f64 {
        self.array_overhead_mm2 + self.mm2_per_byte * size_bytes as f64
    }

    /// Area of the 2-ported L1 / root tile.
    #[must_use]
    pub fn l1_mm2(&self, size_bytes: u64) -> f64 {
        self.sram_mm2(size_bytes) * self.dual_port_factor
    }

    /// Area of an L-NUCA of `tiles` tiles of `tile_bytes` each, **including**
    /// the 2-ported root tile of `l1_bytes` and the three tile networks.
    #[must_use]
    pub fn lnuca_mm2(&self, l1_bytes: u64, tiles: usize, tile_bytes: u64) -> f64 {
        self.l1_mm2(l1_bytes)
            + tiles as f64 * (self.sram_mm2(tile_bytes) + self.lnuca_network_mm2_per_tile)
    }

    /// Network share of an L-NUCA area, in percent.
    #[must_use]
    pub fn lnuca_network_percent(&self, l1_bytes: u64, tiles: usize, tile_bytes: u64) -> f64 {
        let network = tiles as f64 * self.lnuca_network_mm2_per_tile;
        100.0 * network / self.lnuca_mm2(l1_bytes, tiles, tile_bytes)
    }

    /// Area of the conventional L1 + L2 pair of the baseline.
    #[must_use]
    pub fn conventional_mm2(&self, l1_bytes: u64, l2_bytes: u64) -> f64 {
        self.l1_mm2(l1_bytes) + self.sram_mm2(l2_bytes)
    }

    /// Area of a D-NUCA of `banks` banks of `bank_bytes` each, including the
    /// per-bank routers.
    #[must_use]
    pub fn dnuca_mm2(&self, banks: usize, bank_bytes: u64) -> f64 {
        banks as f64 * (self.sram_mm2(bank_bytes) + self.dnuca_router_mm2_per_bank)
    }

    /// Area of the L3 (low-operating-power transistors).
    #[must_use]
    pub fn l3_mm2(&self, size_bytes: u64) -> f64 {
        self.array_overhead_mm2 + self.lop_mm2_per_byte * size_bytes as f64
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: u64 = 1024;

    #[test]
    fn paper_table2_is_recorded_verbatim() {
        assert_eq!(PAPER_TABLE2[0].area_mm2, 0.91);
        assert_eq!(PAPER_TABLE2[2].name, "LN3-144KB");
        assert_eq!(PAPER_TABLE2[3].network_percent, 19.02);
    }

    #[test]
    fn model_reproduces_table2_within_twenty_percent() {
        let m = AreaModel::paper();
        let modeled = [
            m.conventional_mm2(32 * KB, 256 * KB),
            m.lnuca_mm2(32 * KB, 5, 8 * KB),
            m.lnuca_mm2(32 * KB, 14, 8 * KB),
            m.lnuca_mm2(32 * KB, 27, 8 * KB),
        ];
        for (row, value) in PAPER_TABLE2.iter().zip(modeled) {
            let err = (value - row.area_mm2).abs() / row.area_mm2;
            assert!(err < 0.20, "{}: model {value:.3} vs paper {} (err {err:.2})", row.name, row.area_mm2);
        }
    }

    #[test]
    fn model_preserves_the_table2_ordering() {
        let m = AreaModel::paper();
        let conventional = m.conventional_mm2(32 * KB, 256 * KB);
        let ln2 = m.lnuca_mm2(32 * KB, 5, 8 * KB);
        let ln3 = m.lnuca_mm2(32 * KB, 14, 8 * KB);
        let ln4 = m.lnuca_mm2(32 * KB, 27, 8 * KB);
        assert!(ln2 < ln3 && ln3 < ln4);
        assert!(ln3 < conventional, "LN3 must save area vs the 256 KB L2 baseline");
        assert!(ln4 > conventional, "LN4 costs more area than the baseline");
    }

    #[test]
    fn network_share_grows_with_the_number_of_tiles_and_stays_below_a_quarter() {
        let m = AreaModel::paper();
        let p2 = m.lnuca_network_percent(32 * KB, 5, 8 * KB);
        let p3 = m.lnuca_network_percent(32 * KB, 14, 8 * KB);
        let p4 = m.lnuca_network_percent(32 * KB, 27, 8 * KB);
        assert!(p2 < p3 && p3 < p4);
        assert!(p4 < 25.0);
        assert!(p2 > 5.0);
    }

    #[test]
    fn dnuca_area_is_dominated_by_its_32_banks() {
        let m = AreaModel::paper();
        let dn = m.dnuca_mm2(32, 256 * KB);
        assert!(dn > 20.0, "8 MB of HP SRAM plus routers is tens of mm2, got {dn}");
        // Adding an LN2 (1.2% claim in the paper) must be a small relative increase.
        let ln2_tiles_only = m.lnuca_mm2(32 * KB, 5, 8 * KB) - m.l1_mm2(32 * KB);
        assert!(ln2_tiles_only / dn < 0.03);
    }

    #[test]
    fn l3_uses_denser_low_power_cells() {
        let m = AreaModel::paper();
        assert!(m.l3_mm2(8 * 1024 * KB) < m.sram_mm2(8 * 1024 * KB));
    }
}
