//! Energy bookkeeping for a simulation run.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An energy ledger with one dynamic and one static bucket per named
/// component, in picojoules.
///
/// The experiment harness fills one account per simulated configuration and
/// the report code turns it into the normalised stacked bars of Figs. 4(b)
/// and 5(b).
///
/// # Example
///
/// ```
/// use lnuca_energy::EnergyAccount;
///
/// let mut account = EnergyAccount::new();
/// account.add_dynamic("L2", 47.2 * 100.0);
/// account.add_static("L3", 1_000_000.0);
/// assert_eq!(account.dynamic_pj("L2"), 4_720.0);
/// assert_eq!(account.static_pj("L3"), 1_000_000.0);
/// assert!(account.total_pj() > 1_000_000.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyAccount {
    dynamic: BTreeMap<String, f64>,
    static_: BTreeMap<String, f64>,
}

impl EnergyAccount {
    /// Creates an empty account.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `pj` picojoules of dynamic energy to `component`.
    pub fn add_dynamic(&mut self, component: &str, pj: f64) {
        *self.dynamic.entry(component.to_owned()).or_insert(0.0) += pj;
    }

    /// Adds `pj` picojoules of static (leakage) energy to `component`.
    pub fn add_static(&mut self, component: &str, pj: f64) {
        *self.static_.entry(component.to_owned()).or_insert(0.0) += pj;
    }

    /// Dynamic energy charged to `component` so far.
    #[must_use]
    pub fn dynamic_pj(&self, component: &str) -> f64 {
        self.dynamic.get(component).copied().unwrap_or(0.0)
    }

    /// Static energy charged to `component` so far.
    #[must_use]
    pub fn static_pj(&self, component: &str) -> f64 {
        self.static_.get(component).copied().unwrap_or(0.0)
    }

    /// Total dynamic energy across all components.
    #[must_use]
    pub fn total_dynamic_pj(&self) -> f64 {
        self.dynamic.values().sum()
    }

    /// Total static energy across all components.
    #[must_use]
    pub fn total_static_pj(&self) -> f64 {
        self.static_.values().sum()
    }

    /// Total energy (dynamic + static).
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.total_dynamic_pj() + self.total_static_pj()
    }

    /// All component names that appear in either bucket, sorted.
    #[must_use]
    pub fn components(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .dynamic
            .keys()
            .chain(self.static_.keys())
            .cloned()
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Every `(component, picojoules)` entry in the dynamic bucket, in the
    /// map's sorted order. Unlike [`EnergyAccount::components`] this exposes
    /// exactly the entries the account holds — including explicit zeros —
    /// so a serialised account can be reconstructed `PartialEq`-identical
    /// (the study journal depends on this).
    pub fn dynamic_entries(&self) -> impl Iterator<Item = (&str, f64)> {
        self.dynamic.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Every `(component, picojoules)` entry in the static bucket, in the
    /// map's sorted order; see [`EnergyAccount::dynamic_entries`].
    pub fn static_entries(&self) -> impl Iterator<Item = (&str, f64)> {
        self.static_.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// This account's total divided by `baseline`'s total — the normalised
    /// quantity plotted in Figs. 4(b) and 5(b). Returns 1.0 when the baseline
    /// total is zero.
    #[must_use]
    pub fn normalised_to(&self, baseline: &EnergyAccount) -> f64 {
        let b = baseline.total_pj();
        if b == 0.0 {
            1.0
        } else {
            self.total_pj() / b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_totals() {
        let mut a = EnergyAccount::new();
        a.add_dynamic("tiles", 10.0);
        a.add_dynamic("tiles", 5.0);
        a.add_static("L3", 100.0);
        assert_eq!(a.dynamic_pj("tiles"), 15.0);
        assert_eq!(a.static_pj("tiles"), 0.0);
        assert_eq!(a.total_dynamic_pj(), 15.0);
        assert_eq!(a.total_static_pj(), 100.0);
        assert_eq!(a.total_pj(), 115.0);
    }

    #[test]
    fn components_are_deduplicated_and_sorted() {
        let mut a = EnergyAccount::new();
        a.add_dynamic("b", 1.0);
        a.add_static("b", 1.0);
        a.add_static("a", 1.0);
        assert_eq!(a.components(), vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn normalisation_against_a_baseline() {
        let mut baseline = EnergyAccount::new();
        baseline.add_dynamic("x", 200.0);
        let mut candidate = EnergyAccount::new();
        candidate.add_dynamic("x", 150.0);
        assert!((candidate.normalised_to(&baseline) - 0.75).abs() < 1e-12);
        assert_eq!(candidate.normalised_to(&EnergyAccount::new()), 1.0);
    }

    #[test]
    fn entry_iterators_expose_exact_bucket_contents() {
        let mut a = EnergyAccount::new();
        a.add_dynamic("tiles", 3.0);
        a.add_dynamic("L2", 0.0); // explicit zero must survive a round-trip
        a.add_static("L3", 7.5);
        let dynamic: Vec<_> = a.dynamic_entries().collect();
        assert_eq!(dynamic, vec![("L2", 0.0), ("tiles", 3.0)]);
        let static_: Vec<_> = a.static_entries().collect();
        assert_eq!(static_, vec![("L3", 7.5)]);

        // Reconstructing from the entries is PartialEq-identical.
        let mut copy = EnergyAccount::new();
        for (k, v) in a.dynamic_entries() {
            copy.add_dynamic(k, v);
        }
        for (k, v) in a.static_entries() {
            copy.add_static(k, v);
        }
        assert_eq!(a, copy);
    }

    #[test]
    fn unknown_components_read_as_zero() {
        let a = EnergyAccount::new();
        assert_eq!(a.dynamic_pj("nope"), 0.0);
        assert_eq!(a.static_pj("nope"), 0.0);
        assert_eq!(a.total_pj(), 0.0);
    }
}
