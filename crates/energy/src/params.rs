//! Per-component energy parameters (Table I values plus network estimates).

use serde::{Deserialize, Serialize};

/// Processor cycle time in nanoseconds.
///
/// The paper assumes a 19 FO4 cycle "similar to the Intel Core2 Duo E8600 in
/// a 32 nm technology"; the E8600 runs at 3.33 GHz, i.e. 0.3 ns per cycle.
#[must_use]
pub fn cycle_time_ns() -> f64 {
    0.3
}

/// Dynamic and static energy parameters of one cache-like component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheEnergyParams {
    /// Energy of one read hit, in picojoules.
    pub read_pj: f64,
    /// Energy of one write / fill, in picojoules (taken equal to a read for
    /// the structures the paper does not detail further).
    pub write_pj: f64,
    /// Leakage power in milliwatts.
    pub leakage_mw: f64,
}

impl CacheEnergyParams {
    /// The 32 KB, 4-way, 2-port L1 / root tile (Table I: 21.2 pJ, 12.8 mW).
    #[must_use]
    pub fn paper_l1() -> Self {
        CacheEnergyParams {
            read_pj: 21.2,
            write_pj: 21.2,
            leakage_mw: 12.8,
        }
    }

    /// The 256 KB, 8-way L2 (Table I: 47.2 pJ, 66.9 mW).
    #[must_use]
    pub fn paper_l2() -> Self {
        CacheEnergyParams {
            read_pj: 47.2,
            write_pj: 47.2,
            leakage_mw: 66.9,
        }
    }

    /// One 8 KB, 2-way L-NUCA tile (Table I: 14 pJ, 2.2 mW).
    #[must_use]
    pub fn paper_lnuca_tile() -> Self {
        CacheEnergyParams {
            read_pj: 14.0,
            write_pj: 14.0,
            leakage_mw: 2.2,
        }
    }

    /// The 8 MB, 16-way L3 in low-operating-power transistors
    /// (Table I: 20.9 pJ, 600 mW).
    #[must_use]
    pub fn paper_l3() -> Self {
        CacheEnergyParams {
            read_pj: 20.9,
            write_pj: 20.9,
            leakage_mw: 600.0,
        }
    }

    /// One 256 KB, 2-way D-NUCA bank (Table I: 131.2 pJ, 33.5 mW).
    #[must_use]
    pub fn paper_dnuca_bank() -> Self {
        CacheEnergyParams {
            read_pj: 131.2,
            write_pj: 131.2,
            leakage_mw: 33.5,
        }
    }

    /// Static (leakage) energy accumulated over `cycles` processor cycles,
    /// in picojoules: `P_leak × t` with the 19 FO4 / 0.3 ns cycle.
    #[must_use]
    pub fn static_energy_pj(&self, cycles: u64) -> f64 {
        // 1 mW × 1 ns = 1 pJ.
        self.leakage_mw * cycle_time_ns() * cycles as f64
    }
}

/// Energy per network event, estimated in the style of Orion.
///
/// The paper states that the area and energy of the routers were estimated
/// with Orion but does not publish the per-event numbers, only the outcome
/// that L-NUCA's simple, headerless, message-wide networking costs far less
/// per transaction than the D-NUCA virtual-channel mesh. The constants below
/// encode that relationship: an L-NUCA link traversal moves one 32-byte
/// message through a short link and a cut-through crossbar, while a D-NUCA
/// flit-hop traverses a 256-bit link plus a 4-VC wormhole router pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkEnergyParams {
    /// Energy of moving one message across one L-NUCA link (link + buffer +
    /// cut-through crossbar), in picojoules.
    pub lnuca_link_pj: f64,
    /// Energy of one flit traversing one D-NUCA mesh hop (link + VC router),
    /// in picojoules.
    pub dnuca_flit_hop_pj: f64,
    /// Leakage power of the whole L-NUCA interconnect per tile, in mW.
    pub lnuca_network_leakage_mw_per_tile: f64,
    /// Leakage power of one D-NUCA router, in mW.
    pub dnuca_router_leakage_mw: f64,
}

impl NetworkEnergyParams {
    /// The default Orion-style estimates used throughout the evaluation.
    #[must_use]
    pub fn paper() -> Self {
        NetworkEnergyParams {
            lnuca_link_pj: 1.1,
            dnuca_flit_hop_pj: 4.8,
            lnuca_network_leakage_mw_per_tile: 0.25,
            dnuca_router_leakage_mw: 1.8,
        }
    }
}

impl Default for NetworkEnergyParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_are_reproduced() {
        assert_eq!(CacheEnergyParams::paper_l1().read_pj, 21.2);
        assert_eq!(CacheEnergyParams::paper_l2().read_pj, 47.2);
        assert_eq!(CacheEnergyParams::paper_lnuca_tile().read_pj, 14.0);
        assert_eq!(CacheEnergyParams::paper_l3().leakage_mw, 600.0);
        assert_eq!(CacheEnergyParams::paper_dnuca_bank().read_pj, 131.2);
    }

    #[test]
    fn static_energy_scales_linearly_with_time() {
        let l3 = CacheEnergyParams::paper_l3();
        let one = l3.static_energy_pj(1_000);
        let ten = l3.static_energy_pj(10_000);
        assert!((ten / one - 10.0).abs() < 1e-9);
        // 600 mW for 1000 cycles of 0.3 ns = 600 * 300 pJ.
        assert!((one - 600.0 * 300.0).abs() < 1e-6);
    }

    #[test]
    fn tile_energy_is_cheaper_than_l2_energy() {
        // The core of the paper's dynamic-energy argument: an 8 KB tile
        // access plus some link traversals is cheaper than a 256 KB L2
        // access, and far cheaper than a 256 KB D-NUCA bank access.
        let tile = CacheEnergyParams::paper_lnuca_tile();
        let net = NetworkEnergyParams::paper();
        let l2 = CacheEnergyParams::paper_l2();
        let bank = CacheEnergyParams::paper_dnuca_bank();
        assert!(tile.read_pj + 3.0 * net.lnuca_link_pj < l2.read_pj);
        assert!(l2.read_pj < bank.read_pj);
    }

    #[test]
    fn cycle_time_matches_a_3_33_ghz_clock() {
        assert!((cycle_time_ns() - 0.3).abs() < 1e-12);
    }
}
