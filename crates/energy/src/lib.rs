//! Energy, leakage and area models for the Light NUCA reproduction.
//!
//! The paper derives per-access energies, leakage powers and areas from
//! Cacti 5.3 (caches), Orion (routers) and HSPICE (the transport crossbar),
//! at 32 nm with a 19 FO4 cycle. Those tools are external C/SPICE programs,
//! so this crate substitutes them with:
//!
//! * the **exact scalar values the paper publishes** (Table I per-access
//!   energies and leakage powers, Table II areas), which is all the paper
//!   itself feeds into its evaluation, and
//! * a small **analytical model** (linear in capacity, with port and router
//!   overheads) calibrated against those published points, used for
//!   configurations the paper does not tabulate (the design-space example
//!   and the ablation benches).
//!
//! The split between *dynamic* energy (per access / per link traversal) and
//! *static* energy (leakage power × execution time) is what produces the
//! stacked bars of Figs. 4(b) and 5(b): static L3 energy dominates, so any
//! IPC improvement directly shrinks total energy.
//!
//! # Example
//!
//! ```
//! use lnuca_energy::{CacheEnergyParams, EnergyAccount, cycle_time_ns};
//!
//! let tile = CacheEnergyParams::paper_lnuca_tile();
//! let mut account = EnergyAccount::new();
//! account.add_dynamic("tiles", tile.read_pj * 1_000.0);        // 1000 tile reads
//! account.add_static("tiles", tile.static_energy_pj(1_000_000)); // over 1M cycles
//! assert!(account.total_pj() > 0.0);
//! assert!(cycle_time_ns() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod area;
pub mod params;

pub use account::EnergyAccount;
pub use area::{AreaModel, PAPER_TABLE2};
pub use params::{cycle_time_ns, CacheEnergyParams, NetworkEnergyParams};
