//! A probe sink that records the whole event stream.

use lnuca_mem::{ProbeEvent, ProbeSink};

/// Records every [`ProbeEvent`] in order.
///
/// Verification-only: pushing into the `Vec` allocates, so this sink must
/// never be used inside the zero-allocation counting tests (those run with
/// the default `NoProbe`).
#[derive(Debug, Clone, Default)]
pub struct RecordingProbe {
    /// The recorded stream, in functional order.
    pub events: Vec<ProbeEvent>,
}

impl ProbeSink for RecordingProbe {
    fn record(&mut self, event: ProbeEvent) {
        self.events.push(event);
    }
}
