//! The reference hierarchy: composes the [`crate::reference`] pieces into
//! one of the paper's four organisations and replays a recorded
//! [`ProbeEvent`] stream through it, cross-checking every functional
//! decision the detailed simulator made.

use crate::reference::{RefBacking, RefCache, RefOuter};
use lnuca_mem::{AccessClass, EvictedLine, ProbeEvent};
use lnuca_sim::configs::HierarchyKind;
use lnuca_sim::hierarchy::HierarchyStats;
use lnuca_sim::spec::HierarchySpec;
use lnuca_types::{Addr, ConfigError, ServiceLevel};
use std::collections::BTreeMap;

/// The reference L-NUCA fabric: a pure content-exclusion set.
///
/// The detailed fabric's *placement* (which tile of a level holds a block)
/// depends on the seeded random distributed routing, so a timing-free model
/// cannot reproduce the per-tile layout. What it can reproduce exactly —
/// because the Search network broadcasts to every tile of a level and the
/// U-buffer comparators catch blocks in flight — is *custody*: a search
/// hits if and only if the block is anywhere in the fabric. The reference
/// therefore tracks the fabric as a set of blocks entering through root
/// evictions and leaving through hits and spills, and the harness checks
/// hit/miss totals, the spill/eviction ledger and the final custody set;
/// the per-level hit split is validated structurally (levels in range,
/// split summing to the custody-predicted total).
#[derive(Debug, Default)]
pub struct RefFabric {
    /// Block base address → dirty flag, for every block the fabric owns.
    blocks: BTreeMap<u64, bool>,
    /// Block base address → `is_write`, for every launched-but-unresolved
    /// search (mirrors the MSHR pending set).
    pending: BTreeMap<u64, bool>,
    /// Searches launched (== primary root-tile misses).
    pub searches: u64,
    /// Read hits serviced by the fabric (all levels).
    pub read_hits: u64,
    /// Write hits serviced by the fabric (all levels).
    pub write_hits: u64,
    /// Searches that missed every tile.
    pub global_misses: u64,
    /// Victims accepted from the root tile.
    pub root_evictions: u64,
    /// Blocks spilled to the next cache level.
    pub spills: u64,
}

/// The timing-free reference hierarchy the harness replays a probed run
/// through. Build one with [`RefHierarchy::new`] from the same
/// [`HierarchyKind`] the detailed run used, [`RefHierarchy::apply`] every
/// recorded event in order, then compare with
/// [`RefHierarchy::check_stats`].
#[derive(Debug)]
pub struct RefHierarchy {
    /// First level (L1 / root tile).
    pub l1: RefCache,
    /// The level(s) behind the first level (and behind the fabric, if any).
    pub outer: RefOuter,
    /// The fabric custody set, for the two L-NUCA organisations.
    pub fabric: Option<RefFabric>,
    /// Fabric levels (for range-checking reported hit levels).
    levels: u8,
    /// First-level block size (for address normalisation).
    block_size: u64,
    /// Block fetches that fell through to DRAM.
    pub memory_accesses: u64,
    /// Write-buffer drains applied.
    pub write_drains: u64,
    /// Accesses merged into in-flight fetches (no state change).
    pub merged: u64,
    /// A root-tile victim the reference just produced, awaiting the
    /// matching [`ProbeEvent::RootVictim`].
    expected_victim: Option<EvictedLine>,
}

impl RefHierarchy {
    /// Builds the reference model of `kind` (lowered to its spec).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid or non-LRU configurations.
    pub fn new(kind: &HierarchyKind) -> Result<Self, ConfigError> {
        Self::from_spec(&kind.to_spec())
    }

    /// Builds the reference model of any composed [`HierarchySpec`] — the
    /// oracle is not limited to the paper's four shapes.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid or non-LRU configurations.
    pub fn from_spec(spec: &HierarchySpec) -> Result<Self, ConfigError> {
        Ok(RefHierarchy {
            l1: RefCache::new(&spec.root)?,
            outer: RefOuter::from_spec(spec)?,
            fabric: spec.fabric.as_ref().map(|_| RefFabric::default()),
            levels: spec.fabric.as_ref().map_or(0, |f| f.levels),
            block_size: spec.root.block_size,
            memory_accesses: 0,
            write_drains: 0,
            merged: 0,
            expected_victim: None,
        })
    }

    fn base(&self, addr: Addr) -> u64 {
        addr.block_base(self.block_size).0
    }

    /// Replays one recorded event, recomputing and cross-checking the
    /// functional decision it encodes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence between the reference
    /// model and the detailed simulator.
    pub fn apply(&mut self, event: ProbeEvent) -> Result<(), String> {
        // A root-tile fill that displaced a victim must be followed
        // immediately by the matching RootVictim event.
        if let Some(v) = self.expected_victim {
            if !matches!(event, ProbeEvent::RootVictim { .. }) {
                return Err(format!(
                    "reference displaced root victim {:?} but the next event is {event:?}, \
                     not RootVictim",
                    v
                ));
            }
        }
        match event {
            ProbeEvent::Access { addr, is_write, class } => {
                self.apply_access(addr, is_write, class)
            }
            ProbeEvent::FabricHit { addr, level, dirty } => {
                self.apply_fabric_hit(addr, level, dirty)
            }
            ProbeEvent::OuterFetch { addr, is_write, served } => {
                self.apply_outer_fetch(addr, is_write, served)
            }
            ProbeEvent::RootVictim { addr, dirty } => self.apply_root_victim(addr, dirty),
            ProbeEvent::Spill { addr, dirty } => self.apply_spill(addr, dirty),
            ProbeEvent::CoherentAccess { .. }
            | ProbeEvent::CoherentEvict { .. }
            | ProbeEvent::CoherentRecall { .. } => Err(
                "coherence events cannot occur in a single-core run; \
                 CMP streams are checked by the coherence oracle instead"
                    .to_owned(),
            ),
            ProbeEvent::WriteDrain { addr } => {
                self.outer.write_through(addr);
                self.write_drains += 1;
                Ok(())
            }
        }
    }

    fn apply_access(&mut self, addr: Addr, is_write: bool, class: AccessClass) -> Result<(), String> {
        match class {
            AccessClass::Merged => {
                // Scheduling input: the detailed MSHRs merged this access
                // into an in-flight fetch; no cache state changes.
                self.merged += 1;
                Ok(())
            }
            AccessClass::Hit => {
                if !self.l1.access(addr, is_write) {
                    return Err(format!(
                        "detailed L1 hit at {addr} but the reference says miss"
                    ));
                }
                Ok(())
            }
            AccessClass::Miss(served) => {
                if self.fabric.is_some() {
                    return Err(format!(
                        "synchronous miss resolution at {addr} on a fabric hierarchy"
                    ));
                }
                if self.l1.access(addr, is_write) {
                    return Err(format!(
                        "detailed L1 miss at {addr} but the reference says hit"
                    ));
                }
                let served_ref = self.outer.fetch(addr, is_write, &mut self.memory_accesses);
                if served_ref != served {
                    return Err(format!(
                        "miss at {addr} served by {served} in the detailed run, \
                         by {served_ref} in the reference"
                    ));
                }
                // Write-allocate into the L1; the victim is clean and (with
                // no fabric behind the L1) silently discarded.
                let _ = self.l1.fill(addr, false);
                Ok(())
            }
            AccessClass::MissLaunched => {
                let Some(fabric) = self.fabric.as_mut() else {
                    return Err(format!("search launched at {addr} without a fabric"));
                };
                if self.l1.access(addr, is_write) {
                    return Err(format!(
                        "detailed root-tile miss at {addr} but the reference says hit"
                    ));
                }
                let base = addr.block_base(self.block_size).0;
                if fabric.pending.insert(base, is_write).is_some() {
                    return Err(format!(
                        "second search launched for {addr} while one is in flight"
                    ));
                }
                fabric.searches += 1;
                Ok(())
            }
        }
    }

    fn apply_fabric_hit(&mut self, addr: Addr, level: u8, dirty: bool) -> Result<(), String> {
        let base = self.base(addr);
        let levels = self.levels;
        let Some(fabric) = self.fabric.as_mut() else {
            return Err(format!("fabric hit at {addr} without a fabric"));
        };
        let Some(is_write) = fabric.pending.remove(&base) else {
            return Err(format!("fabric hit at {addr} with no search in flight"));
        };
        match fabric.blocks.remove(&base) {
            None => {
                return Err(format!(
                    "fabric hit at {addr} but the reference custody set does not hold the block"
                ))
            }
            Some(ref_dirty) if ref_dirty != dirty => {
                return Err(format!(
                    "fabric hit at {addr} delivered dirty={dirty}, reference tracked {ref_dirty}"
                ))
            }
            Some(_) => {}
        }
        if !(2..=levels).contains(&level) {
            return Err(format!(
                "fabric hit at {addr} reports level {level}, outside 2..={levels}"
            ));
        }
        if is_write {
            fabric.write_hits += 1;
        } else {
            fabric.read_hits += 1;
        }
        self.expected_victim = self.l1.fill(addr, false);
        Ok(())
    }

    fn apply_outer_fetch(
        &mut self,
        addr: Addr,
        is_write: bool,
        served: ServiceLevel,
    ) -> Result<(), String> {
        let base = self.base(addr);
        let Some(fabric) = self.fabric.as_mut() else {
            return Err(format!("outer fetch at {addr} without a fabric"));
        };
        match fabric.pending.remove(&base) {
            None => return Err(format!("outer fetch at {addr} with no search in flight")),
            Some(w) if w != is_write => {
                return Err(format!(
                    "outer fetch at {addr} reports is_write={is_write}, search was {w}"
                ))
            }
            Some(_) => {}
        }
        if fabric.blocks.contains_key(&base) {
            return Err(format!(
                "false global miss: the fabric owns {addr} but the search missed it"
            ));
        }
        fabric.global_misses += 1;
        let served_ref = self.outer.fetch(addr, is_write, &mut self.memory_accesses);
        if served_ref != served {
            return Err(format!(
                "global miss at {addr} served by {served} in the detailed run, \
                 by {served_ref} in the reference"
            ));
        }
        self.expected_victim = self.l1.fill(addr, false);
        Ok(())
    }

    fn apply_root_victim(&mut self, addr: Addr, dirty: bool) -> Result<(), String> {
        let base = self.base(addr);
        let Some(expected) = self.expected_victim.take() else {
            return Err(format!(
                "RootVictim {addr} reported but the reference root tile displaced nothing"
            ));
        };
        if expected.addr.0 != base || expected.dirty != dirty {
            return Err(format!(
                "root victim mismatch: detailed evicted {addr} (dirty={dirty}), \
                 reference evicted {} (dirty={})",
                expected.addr, expected.dirty
            ));
        }
        let Some(fabric) = self.fabric.as_mut() else {
            return Err(format!("root victim at {addr} without a fabric"));
        };
        if fabric.blocks.insert(base, dirty).is_some() {
            return Err(format!(
                "exclusion violated: {addr} entered the fabric while already owned by it"
            ));
        }
        fabric.root_evictions += 1;
        Ok(())
    }

    fn apply_spill(&mut self, addr: Addr, dirty: bool) -> Result<(), String> {
        let base = self.base(addr);
        let Some(fabric) = self.fabric.as_mut() else {
            return Err(format!("spill at {addr} without a fabric"));
        };
        match fabric.blocks.remove(&base) {
            None => Err(format!(
                "spill of {addr} which the reference custody set does not hold"
            )),
            Some(ref_dirty) if ref_dirty != dirty => Err(format!(
                "spill of {addr} reported dirty={dirty}, reference tracked {ref_dirty}"
            )),
            Some(_) => {
                fabric.spills += 1;
                Ok(())
            }
        }
    }

    /// Compares every functional counter the reference recomputed against
    /// the detailed run's [`HierarchyStats`]. Returns all mismatches.
    ///
    /// # Errors
    ///
    /// Returns one description per diverging counter group.
    pub fn check_stats(&self, stats: &HierarchyStats) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        fn check(errors: &mut Vec<String>, name: &str, ok: bool, detail: String) {
            if !ok {
                errors.push(format!("{name}: {detail}"));
            }
        }

        check(
            &mut errors,
            "L1 stats",
            stats.l1 == self.l1.stats,
            format!("detailed {:?} != reference {:?}", stats.l1, self.l1.stats),
        );
        // Intermediate chain: the first level sits in `stats.l2`, deeper
        // ones in `stats.deeper_levels`.
        let detailed_intermediates: Vec<&lnuca_mem::CacheStats> = stats
            .l2
            .iter()
            .chain(stats.deeper_levels.iter())
            .collect();
        if detailed_intermediates.len() != self.outer.intermediates.len() {
            errors.push(format!(
                "intermediate chain length differs: detailed {} != reference {}",
                detailed_intermediates.len(),
                self.outer.intermediates.len()
            ));
        } else {
            for (i, (detailed, reference)) in detailed_intermediates
                .iter()
                .zip(&self.outer.intermediates)
                .enumerate()
            {
                check(
                    &mut errors,
                    if i == 0 { "L2 stats" } else { "deeper intermediate stats" },
                    **detailed == reference.stats,
                    format!("level {i}: detailed {detailed:?} != reference {:?}", reference.stats),
                );
            }
        }
        match (&self.outer.backing, &stats.l3, &stats.dnuca) {
            (RefBacking::Cache(l3), Some(d3), None) => {
                check(
                    &mut errors,
                    "L3 stats",
                    *d3 == l3.stats,
                    format!("detailed {d3:?} != reference {:?}", l3.stats),
                );
            }
            (RefBacking::DNuca(dnuca), None, Some(dd)) => {
                let c = &dnuca.counters;
                let functional = (
                    dd.accesses,
                    &dd.hits_per_row,
                    dd.bank_lookups,
                    dd.bank_fills,
                    dd.migrations,
                    dd.dirty_evictions,
                );
                let reference = (
                    c.accesses,
                    &c.hits_per_row,
                    c.bank_lookups,
                    c.bank_fills,
                    c.migrations,
                    c.dirty_evictions,
                );
                check(
                    &mut errors,
                    "D-NUCA stats",
                    functional == reference,
                    format!("detailed {functional:?} != reference {reference:?}"),
                );
            }
            (RefBacking::Memory, None, None) => {}
            _ => errors.push("backing shape does not match the detailed stats".to_owned()),
        }
        if let Some(fabric) = &self.fabric {
            match &stats.lnuca {
                None => errors.push("detailed stats carry no fabric counters".to_owned()),
                Some(ln) => {
                    // The harness quiesces the hierarchy before comparing,
                    // so every launched search has been injected and
                    // resolved: the ledgers must close exactly.
                    check(
                        &mut errors,
                        "unresolved searches after quiescing",
                        fabric.pending.is_empty(),
                        format!("{} searches never resolved", fabric.pending.len()),
                    );
                    check(
                        &mut errors,
                        "fabric searches",
                        ln.searches == fabric.searches,
                        format!("detailed {} != reference {}", ln.searches, fabric.searches),
                    );
                    check(
                        &mut errors,
                        "fabric read hits",
                        ln.read_hits() == fabric.read_hits,
                        format!("detailed {} != reference {}", ln.read_hits(), fabric.read_hits),
                    );
                    let detailed_writes: u64 = ln.write_hits_per_level.iter().sum();
                    check(
                        &mut errors,
                        "fabric write hits",
                        detailed_writes == fabric.write_hits,
                        format!("detailed {detailed_writes} != reference {}", fabric.write_hits),
                    );
                    check(
                        &mut errors,
                        "fabric global misses",
                        ln.global_misses == fabric.global_misses,
                        format!(
                            "detailed {} != reference {}",
                            ln.global_misses, fabric.global_misses
                        ),
                    );
                    check(
                        &mut errors,
                        "fabric root evictions",
                        ln.root_evictions == fabric.root_evictions,
                        format!(
                            "detailed {} != reference {}",
                            ln.root_evictions, fabric.root_evictions
                        ),
                    );
                    check(
                        &mut errors,
                        "fabric spills",
                        ln.spills == fabric.spills,
                        format!("detailed {} != reference {}", ln.spills, fabric.spills),
                    );
                }
            }
        } else if stats.lnuca.is_some() {
            errors.push("detailed stats carry fabric counters but the reference has no fabric".to_owned());
        }
        check(
            &mut errors,
            "memory accesses",
            stats.memory_accesses == self.memory_accesses,
            format!(
                "detailed {} != reference {}",
                stats.memory_accesses, self.memory_accesses
            ),
        );
        check(
            &mut errors,
            "write drains",
            stats.write_drains == self.write_drains,
            format!("detailed {} != reference {}", stats.write_drains, self.write_drains),
        );
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// The fabric custody set as sorted `(block base, dirty)` pairs.
    #[must_use]
    pub fn fabric_blocks(&self) -> Vec<(u64, bool)> {
        self.fabric
            .as_ref()
            .map(|f| f.blocks.iter().map(|(&a, &d)| (a, d)).collect())
            .unwrap_or_default()
    }
}
