//! The coherence oracle (DESIGN.md §17): a timing-free, map-based MSI
//! reference directory that replays the coherence event stream of a CMP
//! run and cross-checks it against the detailed machine.
//!
//! The detailed side uses the fixed-slot [`lnuca_coherence::Directory`];
//! the oracle deliberately does **not** share that code. It keeps an
//! unbounded `BTreeMap` of line states and applies the MSI transition
//! rules from first principles, so a bookkeeping bug in the fixed-slot
//! implementation cannot hide in both models at once. Capacity recalls
//! are the one thing an unbounded map cannot predict, so those arrive as
//! explicit [`ProbeEvent::CoherentRecall`] events and the oracle checks
//! they are *legal* (the line was tracked) rather than *necessary*.
//!
//! Checked per run:
//!
//! * **transition legality** — every claimed private-domain hit had the
//!   required permission (read: any copy; write: owned Modified), every
//!   eviction notice came from a holder, every recall hit a tracked
//!   line, and Modified lines never have co-sharers;
//! * **per-core counters** — hits, misses and invalidations received per
//!   core match the [`CoreRow`](lnuca_sim::CoreRow)s of the result;
//! * **directory counters** — every [`DirectoryCounters`] field,
//!   including the per-core invalidation vector, matches the replay;
//! * **writeback totals** — the model's writeback count matches the
//!   hierarchy's drain counter;
//! * **final owner/sharer sets** — the lines the fixed-slot directory
//!   still tracks at the end of the run, with their exact state, sharer
//!   mask and owner, equal the oracle's surviving map entries.

use crate::recorder::RecordingProbe;
use lnuca_coherence::{DirectoryCounters, MsiState};
use lnuca_mem::ProbeEvent;
use lnuca_sim::spec::HierarchySpec;
use lnuca_sim::system::{Engine, RunResult, System};
use lnuca_sim::CmpMemory;
use lnuca_workloads::WorkloadProfile;
use std::collections::BTreeMap;
use std::fmt;

/// A divergence between the detailed CMP machine and the reference MSI
/// model (or an invalid configuration / a non-CMP spec).
#[derive(Debug)]
pub struct CoherenceError {
    /// Which run diverged.
    pub context: String,
    /// What diverged.
    pub details: Vec<String>,
}

impl fmt::Display for CoherenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "coherence oracle failed for {}", self.context)?;
        for d in &self.details {
            writeln!(f, "  - {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CoherenceError {}

/// Summary of one verified CMP run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoherenceReport {
    /// Hierarchy label (e.g. `4x LN2-72KB`).
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Seed of the synthetic trace.
    pub seed: u64,
    /// Cores in the machine.
    pub cores: usize,
    /// Coherence events replayed.
    pub events: usize,
    /// Demand accesses observed (hits + misses over all cores).
    pub accesses: u64,
    /// Directory read/write transactions.
    pub transactions: u64,
    /// Capacity recalls the fixed-slot directory performed.
    pub recalls: u64,
    /// Dirty lines drained to the shared level.
    pub writebacks: u64,
    /// Lines the directory still tracked when the run ended.
    pub live_lines: usize,
}

/// One tracked line of the reference model. `owner == Some(c)` means
/// Modified (and then `sharers` must be exactly core `c`'s bit);
/// `owner == None` means Shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ModelLine {
    sharers: u64,
    owner: Option<usize>,
}

/// The timing-free reference directory: unbounded line map plus every
/// counter the fixed-slot implementation keeps.
#[derive(Debug)]
struct Model {
    cores: usize,
    block_size: u64,
    lines: BTreeMap<u64, ModelLine>,
    // Per-core demand counters (mirroring the lanes).
    hits: Vec<u64>,
    misses: Vec<u64>,
    // Mirrors of `DirectoryCounters`.
    reads: u64,
    writes: u64,
    evictions: u64,
    dir_hits: u64,
    dir_misses: u64,
    invalidations_sent: u64,
    downgrades: u64,
    writebacks: u64,
    recalls: u64,
    per_core_invalidations: Vec<u64>,
    errors: Vec<String>,
}

impl Model {
    fn new(cores: usize, block_size: u64) -> Self {
        Model {
            cores,
            block_size,
            lines: BTreeMap::new(),
            hits: vec![0; cores],
            misses: vec![0; cores],
            reads: 0,
            writes: 0,
            evictions: 0,
            dir_hits: 0,
            dir_misses: 0,
            invalidations_sent: 0,
            downgrades: 0,
            writebacks: 0,
            recalls: 0,
            per_core_invalidations: vec![0; cores],
            errors: Vec::new(),
        }
    }

    fn fail(&mut self, msg: String) {
        // Keep the first few divergences; a broken run floods otherwise.
        if self.errors.len() < 8 {
            self.errors.push(msg);
        }
    }

    fn send_invalidations(&mut self, mask: u64) {
        for c in 0..self.cores {
            if mask & (1u64 << c) != 0 {
                self.invalidations_sent += 1;
                self.per_core_invalidations[c] += 1;
            }
        }
    }

    fn apply(&mut self, index: usize, event: &ProbeEvent) {
        match *event {
            ProbeEvent::CoherentAccess {
                core,
                addr,
                is_write,
                hit,
            } => {
                let core = core as usize;
                if core >= self.cores {
                    self.fail(format!("event {index}: core {core} out of range"));
                    return;
                }
                let line = addr.0 / self.block_size;
                let bit = 1u64 << core;
                if hit {
                    self.hits[core] += 1;
                    let held = self.lines.get(&line);
                    let legal = match held {
                        Some(l) if is_write => l.owner == Some(core),
                        Some(l) => l.sharers & bit != 0,
                        None => false,
                    };
                    if !legal {
                        self.fail(format!(
                            "event {index}: core {core} claims a {} hit on line {line:#x} \
                             without permission ({held:?})",
                            if is_write { "write" } else { "read" },
                        ));
                    }
                    return;
                }
                self.misses[core] += 1;
                if is_write {
                    self.writes += 1;
                    match self.lines.get(&line).copied() {
                        Some(l) => {
                            self.dir_hits += 1;
                            if l.owner.is_some() && l.sharers != bit {
                                self.writebacks += 1;
                            }
                            self.send_invalidations(l.sharers & !bit);
                            self.lines.insert(
                                line,
                                ModelLine {
                                    sharers: bit,
                                    owner: Some(core),
                                },
                            );
                        }
                        None => {
                            self.dir_misses += 1;
                            self.lines.insert(
                                line,
                                ModelLine {
                                    sharers: bit,
                                    owner: Some(core),
                                },
                            );
                        }
                    }
                } else {
                    self.reads += 1;
                    match self.lines.get(&line).copied() {
                        Some(mut l) => {
                            self.dir_hits += 1;
                            if l.owner.is_some() && l.sharers != bit {
                                // Remote owner downgrades, staying a sharer.
                                self.downgrades += 1;
                                self.writebacks += 1;
                                l.owner = None;
                            }
                            if l.owner.is_none() {
                                l.sharers |= bit;
                            }
                            self.lines.insert(line, l);
                        }
                        None => {
                            self.dir_misses += 1;
                            self.lines.insert(
                                line,
                                ModelLine {
                                    sharers: bit,
                                    owner: None,
                                },
                            );
                        }
                    }
                }
            }
            ProbeEvent::CoherentEvict { core, addr } => {
                let core = core as usize;
                self.evictions += 1;
                let line = addr.0 / self.block_size;
                let bit = 1u64 << core;
                let Some(mut l) = self.lines.get(&line).copied() else {
                    self.fail(format!(
                        "event {index}: core {core} evicts untracked line {line:#x}"
                    ));
                    return;
                };
                if l.sharers & bit == 0 {
                    self.fail(format!(
                        "event {index}: core {core} evicts line {line:#x} it does not hold"
                    ));
                    return;
                }
                if l.owner == Some(core) {
                    self.writebacks += 1;
                }
                l.sharers &= !bit;
                l.owner = None;
                if l.sharers == 0 {
                    self.lines.remove(&line);
                } else {
                    self.lines.insert(line, l);
                }
            }
            ProbeEvent::CoherentRecall { addr } => {
                self.recalls += 1;
                let line = addr.0 / self.block_size;
                let Some(l) = self.lines.remove(&line) else {
                    self.fail(format!("event {index}: recall of untracked line {line:#x}"));
                    return;
                };
                if l.owner.is_some() {
                    self.writebacks += 1;
                }
                self.send_invalidations(l.sharers);
            }
            ref other => {
                self.fail(format!(
                    "event {index}: non-coherence event in a CMP stream: {other:?}"
                ));
            }
        }
        // MSI invariant after every transition: Modified is exclusive.
        if let ProbeEvent::CoherentAccess { addr, .. } = *event {
            let line = addr.0 / self.block_size;
            if let Some(l) = self.lines.get(&line) {
                if let Some(owner) = l.owner {
                    if l.sharers != 1u64 << owner {
                        self.fail(format!(
                            "event {index}: line {line:#x} Modified by core {owner} with \
                             sharer mask {:#x}",
                            l.sharers
                        ));
                    }
                }
            }
        }
    }

    fn check_counters(&mut self, counters: &DirectoryCounters) {
        let pairs = [
            ("reads", self.reads, counters.reads),
            ("writes", self.writes, counters.writes),
            ("evictions", self.evictions, counters.evictions),
            ("hits", self.dir_hits, counters.hits),
            ("misses", self.dir_misses, counters.misses),
            (
                "invalidations_sent",
                self.invalidations_sent,
                counters.invalidations_sent,
            ),
            ("downgrades", self.downgrades, counters.downgrades),
            ("writebacks", self.writebacks, counters.writebacks),
            ("recalls", self.recalls, counters.recalls),
        ];
        for (name, model, detailed) in pairs {
            if model != detailed {
                self.fail(format!(
                    "directory counter {name}: {detailed} detailed vs {model} reference"
                ));
            }
        }
        if self.per_core_invalidations != counters.per_core_invalidations {
            self.fail(format!(
                "per-core invalidations: {:?} detailed vs {:?} reference",
                counters.per_core_invalidations, self.per_core_invalidations
            ));
        }
    }

    fn check_rows(&mut self, result: &RunResult) {
        if result.per_core.len() != self.cores {
            self.fail(format!(
                "result has {} per-core rows for {} cores",
                result.per_core.len(),
                self.cores
            ));
            return;
        }
        for row in &result.per_core {
            let c = row.core;
            if row.coherence_hits != self.hits[c] || row.coherence_misses != self.misses[c] {
                self.fail(format!(
                    "core {c} demand counters: {}/{} detailed vs {}/{} reference (hits/misses)",
                    row.coherence_hits, row.coherence_misses, self.hits[c], self.misses[c]
                ));
            }
            if row.invalidations_received != self.per_core_invalidations[c] {
                self.fail(format!(
                    "core {c} invalidations received: {} detailed vs {} reference",
                    row.invalidations_received, self.per_core_invalidations[c]
                ));
            }
        }
        if result.hierarchy.write_drains != self.writebacks {
            self.fail(format!(
                "write drains: {} detailed vs {} reference",
                result.hierarchy.write_drains, self.writebacks
            ));
        }
        match &result.coherence {
            Some(stats) => {
                if stats.writebacks != self.writebacks || stats.recalls != self.recalls {
                    self.fail(format!(
                        "result coherence block disagrees with the replay: {stats:?}"
                    ));
                }
            }
            None => self.fail("CMP result is missing its coherence block".to_owned()),
        }
    }

    fn check_final_lines(&mut self, mem: &CmpMemory<RecordingProbe>) {
        let detailed: BTreeMap<u64, (MsiState, u64, Option<usize>)> = mem
            .tracked_lines()
            .map(|(line, state, sharers, owner)| (line, (state, sharers, owner)))
            .collect();
        let modelled: BTreeMap<u64, (MsiState, u64, Option<usize>)> = self
            .lines
            .iter()
            .map(|(&line, l)| {
                let state = match l.owner {
                    Some(_) => MsiState::Modified,
                    None => MsiState::Shared,
                };
                (line, (state, l.sharers, l.owner))
            })
            .collect();
        if detailed != modelled {
            let only_detailed: Vec<_> = detailed
                .iter()
                .filter(|(k, v)| modelled.get(k) != Some(v))
                .take(4)
                .collect();
            let only_model: Vec<_> = modelled
                .iter()
                .filter(|(k, v)| detailed.get(k) != Some(v))
                .take(4)
                .collect();
            self.fail(format!(
                "final owner/sharer sets differ: {} detailed vs {} reference lines; \
                 detailed-only (first 4): {only_detailed:x?}; \
                 reference-only (first 4): {only_model:x?}",
                detailed.len(),
                modelled.len()
            ));
        }
    }
}

/// Runs `profile` on the CMP hierarchy described by `spec` (which must
/// have `cores > 1`... or 1 — the degenerate machine verifies too, it
/// must simply never produce coherence traffic beyond its own misses),
/// records the coherence event stream and replays it through the
/// reference MSI model described in the [module docs](self).
///
/// `instructions` is the per-core budget, as everywhere in the CMP path.
///
/// # Errors
///
/// Returns a [`CoherenceError`] describing the first divergences (or an
/// invalid configuration).
pub fn run_coherence(
    spec: &HierarchySpec,
    profile: &WorkloadProfile,
    instructions: u64,
    seed: u64,
    engine: Engine,
) -> Result<CoherenceReport, CoherenceError> {
    let context = format!(
        "{} / {} / seed {} / {} / {} instructions x {} cores",
        spec.label(),
        profile.name,
        seed,
        engine.label(),
        instructions,
        spec.cores
    );
    let fail = |details: Vec<String>| CoherenceError {
        context: context.clone(),
        details,
    };

    let (result, hierarchy) = System::run_spec_probed(
        engine,
        spec,
        profile,
        instructions,
        seed,
        RecordingProbe::default(),
    )
    .map_err(|e| fail(vec![format!("configuration error: {e}")]))?;
    let lnuca_sim::hierarchy::AnyHierarchy::Cmp(mem) = hierarchy else {
        return Err(fail(vec![format!(
            "spec with {} cores did not build a CMP machine",
            spec.cores
        )]));
    };

    let mut model = Model::new(mem.cores(), mem.block_size());
    for (index, event) in mem.probe().events.iter().enumerate() {
        model.apply(index, event);
    }
    model.check_counters(mem.directory_counters());
    model.check_rows(&result);
    model.check_final_lines(&mem);
    if !model.errors.is_empty() {
        return Err(fail(std::mem::take(&mut model.errors)));
    }
    Ok(CoherenceReport {
        label: result.label.clone(),
        workload: profile.name.clone(),
        seed,
        cores: mem.cores(),
        events: mem.probe().events.len(),
        accesses: model.hits.iter().sum::<u64>() + model.misses.iter().sum::<u64>(),
        transactions: model.reads + model.writes,
        recalls: model.recalls,
        writebacks: model.writebacks,
        live_lines: model.lines.len(),
    })
}

/// [`run_coherence`] under both engines, additionally asserting the two
/// reports (and hence the two runs' coherence behaviour) are identical.
///
/// # Errors
///
/// Returns a [`CoherenceError`] from either engine's run, or one
/// describing the cross-engine divergence.
pub fn run_coherence_both_engines(
    spec: &HierarchySpec,
    profile: &WorkloadProfile,
    instructions: u64,
    seed: u64,
) -> Result<CoherenceReport, CoherenceError> {
    let horizon = run_coherence(spec, profile, instructions, seed, Engine::EventHorizon)?;
    let step = run_coherence(spec, profile, instructions, seed, Engine::CycleStep)?;
    if horizon != step {
        return Err(CoherenceError {
            context: format!("{} / {} / seed {seed}", spec.label(), profile.name),
            details: vec![format!(
                "engines diverged: event-horizon {horizon:?} vs cycle-step {step:?}"
            )],
        });
    }
    Ok(horizon)
}
