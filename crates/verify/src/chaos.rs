//! Deterministic chaos harness for the supervised experiment engine
//! (DESIGN.md §14).
//!
//! The supervision layer's claims — a panic in one batch member leaves its
//! siblings bit-identical to their solo baselines, watchdogs trip at
//! reproducible cycles, a killed study resumes to a byte-identical report —
//! are only worth anything if something hostile exercises them. This module
//! is that something: a declarative [`ChaosPlan`] of [`ScheduledFault`]s is
//! compiled into the process-global fault hook of
//! [`lnuca_sim::supervise`], so panics and watchdog trips fire at **exact
//! simulated cycles** of **exact runs** — no timing, no randomness, every
//! chaos test replays identically.
//!
//! Faults target runs by [`RunKey`] fields (configuration label, workload
//! name, trace seed — `None` matches anything) and fire the first time the
//! guarded loop observes a cycle at or past `at_cycle`. A fault may be
//! limited to the first attempt ([`ScheduledFault::first_attempt_only`]) to
//! model transient failures that a retry survives, or fire on every attempt
//! to model deterministic poison.
//!
//! The hook is process-global, so concurrent chaos scopes would trample
//! each other; [`ChaosPlan::with_chaos`] serialises all chaos scopes behind one mutex
//! and guarantees the hook is disarmed again even if the scope's body
//! panics.
//!
//! # Example
//!
//! ```
//! use lnuca_sim::configs::{self, HierarchyKind};
//! use lnuca_sim::experiments::ExperimentOptions;
//! use lnuca_sim::supervise::{run_job_supervised, Supervisor};
//! use lnuca_sim::system::Engine;
//! use lnuca_verify::chaos::{ChaosPlan, FaultKind, ScheduledFault};
//! use lnuca_workloads::suites;
//!
//! let spec = HierarchyKind::Conventional(configs::conventional()).to_spec();
//! let profile = suites::by_name("int.compress")?;
//! let plan = ChaosPlan::new().fault(ScheduledFault {
//!     at_cycle: 50,
//!     first_attempt_only: true, // transient: the retry runs clean
//!     kind: FaultKind::Panic,
//!     ..ScheduledFault::any()
//! });
//! let supervisor = Supervisor::from_options(&ExperimentOptions::default());
//! let outcome = plan.with_chaos(|| {
//!     run_job_supervised(Engine::EventHorizon, &spec, &profile, 1_000, 1, &supervisor)
//! });
//! assert_eq!(outcome.attempts, 2); // attempt 0 panicked, attempt 1 succeeded
//! assert!(outcome.outcome.is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use lnuca_sim::supervise::{clear_fault_hook, install_fault_hook, RunKey};
use lnuca_types::RunError;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// What an armed [`ScheduledFault`] does when it fires.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// Panic inside the guarded run loop — the hard-crash model. Under a
    /// batch this unwinds the whole batch (poisoning its shared heap), which
    /// is exactly the quarantine path the harness wants to exercise.
    Panic,
    /// Return this structured failure from the guard — the clean-trip model
    /// (a member quarantines without taking its batch down). The injected
    /// error's retry semantics follow [`RunError::is_transient`], just as a
    /// genuine watchdog trip would.
    Trip(RunError),
}

/// One scheduled fault: a [`RunKey`] filter plus a trigger cycle and a
/// [`FaultKind`]. `None` filter fields match every run.
#[derive(Debug, Clone)]
pub struct ScheduledFault {
    /// Fire only on runs of this configuration label (`None` = any).
    pub label: Option<String>,
    /// Fire only on runs of this workload (`None` = any).
    pub workload: Option<String>,
    /// Fire only on runs with this trace seed (`None` = any).
    pub seed: Option<u64>,
    /// Fire at the first observation whose cycle is `>= at_cycle`.
    pub at_cycle: u64,
    /// Fire only on attempt 0 (a transient fault the bounded retry
    /// survives); `false` re-fires on every attempt (deterministic poison).
    pub first_attempt_only: bool,
    /// What happens when the fault fires.
    pub kind: FaultKind,
}

impl ScheduledFault {
    /// A wildcard fault template: matches every run, fires at cycle 0,
    /// fires on every attempt, panics. Meant for struct-update syntax —
    /// `ScheduledFault { workload: Some(...), ..ScheduledFault::any() }`.
    #[must_use]
    pub fn any() -> Self {
        ScheduledFault {
            label: None,
            workload: None,
            seed: None,
            at_cycle: 0,
            first_attempt_only: false,
            kind: FaultKind::Panic,
        }
    }

    /// Whether this fault fires for `key` at `cycle`.
    fn matches(&self, key: &RunKey, cycle: u64) -> bool {
        cycle >= self.at_cycle
            && (!self.first_attempt_only || key.attempt == 0)
            && self.label.as_deref().is_none_or(|l| l == key.label)
            && self.workload.as_deref().is_none_or(|w| w == key.workload)
            && self.seed.is_none_or(|s| s == key.seed)
    }
}

/// A set of [`ScheduledFault`]s plus the scope machinery to arm them. The
/// first fault (in insertion order) matching an observation fires.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    faults: Vec<ScheduledFault>,
}

/// Serialises chaos scopes: the fault hook is process-global state, so two
/// concurrent [`ChaosPlan::with_chaos`] bodies would observe each other's faults.
static CHAOS_SCOPE: Mutex<()> = Mutex::new(());

/// Disarms the hook when a chaos scope ends — including by panic, so one
/// failing chaos test cannot leave the hook armed for unrelated tests.
struct Disarm<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

impl Drop for Disarm<'_> {
    fn drop(&mut self) {
        clear_fault_hook();
    }
}

impl ChaosPlan {
    /// An empty plan (no faults; [`ChaosPlan::with_chaos`] still serialises the scope).
    #[must_use]
    pub fn new() -> Self {
        ChaosPlan::default()
    }

    /// Adds a fault to the plan.
    #[must_use]
    pub fn fault(mut self, fault: ScheduledFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Runs `body` with this plan's faults armed: takes the global chaos
    /// scope, installs the compiled fault hook, runs `body`, and disarms
    /// the hook again (even if `body` panics).
    pub fn with_chaos<R>(&self, body: impl FnOnce() -> R) -> R {
        // A previous scope whose body panicked poisoned nothing real — the
        // lock guards no data — so recover the guard and continue.
        let scope = CHAOS_SCOPE.lock().unwrap_or_else(PoisonError::into_inner);
        let _disarm = Disarm(scope);
        let faults = self.faults.clone();
        install_fault_hook(Arc::new(move |key: &RunKey, cycle: u64, _committed: u64| {
            let fault = faults.iter().find(|f| f.matches(key, cycle))?;
            match &fault.kind {
                FaultKind::Panic => panic!(
                    "chaos: injected panic in {}/{} (seed {}, attempt {}) at cycle {cycle}",
                    key.label, key.workload, key.seed, key.attempt
                ),
                FaultKind::Trip(error) => Some(error.clone()),
            }
        }));
        body()
    }
}

/// Convenience: [`ChaosPlan::with_chaos`] with a single fault.
pub fn with_fault<R>(fault: ScheduledFault, body: impl FnOnce() -> R) -> R {
    ChaosPlan::new().fault(fault).with_chaos(body)
}
