//! The batch-equivalence layer over the differential oracle
//! (DESIGN.md §13).
//!
//! The batched engine's contract is stronger than "same final counters":
//! every member of a [`BatchRunner`] must be **bit-identical** to its solo
//! run — the full [`lnuca_sim::system::RunResult`] *and* the complete
//! probe event stream, so batch composition can never leak between
//! members even in ways the counters would not show.
//!
//! The layer reuses the PR 4 plumbing end to end: a
//! [`SequentialBaseline`] first runs every case through the sequential
//! differential oracle (recording probe → reference-model replay →
//! counter/residency cross-check), keeping each run's result and live
//! event stream. [`SequentialBaseline::check_batched`] then replays the
//! same cases through a [`BatchRunner`] at any batch size and asserts
//! both artefacts match run for run. A batched run therefore inherits the
//! oracle's functional guarantees by transitivity: identical stream ⇒
//! identical replay.
//!
//! # Example
//!
//! ```
//! use lnuca_sim::configs::{self, HierarchyKind};
//! use lnuca_sim::system::Engine;
//! use lnuca_verify::batch::{BatchCase, SequentialBaseline};
//! use lnuca_workloads::suites;
//!
//! let spec = HierarchyKind::LNucaL3(configs::lnuca_hierarchy(2)).to_spec();
//! let cases: Vec<BatchCase> = suites::spec_int_like()[..2]
//!     .iter()
//!     .map(|profile| BatchCase {
//!         spec: spec.clone(),
//!         profile: profile.clone(),
//!         instructions: 1_000,
//!         seed: 1,
//!     })
//!     .collect();
//! let baseline = SequentialBaseline::capture(Engine::EventHorizon, cases)?;
//! let report = baseline.check_batched(2)?;
//! assert_eq!(report.runs, 2);
//! assert_eq!(report.batches, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::harness::{run_differential_impl, DifferentialError, DifferentialReport, LiveRun};
use crate::recorder::RecordingProbe;
use lnuca_sim::batch::{BatchJob, BatchRunner};
use lnuca_sim::spec::HierarchySpec;
use lnuca_sim::system::Engine;
use lnuca_workloads::WorkloadProfile;

/// One run of the equivalence matrix (the owned form of
/// [`lnuca_sim::batch::BatchJob`]).
#[derive(Debug, Clone)]
pub struct BatchCase {
    /// Hierarchy to simulate.
    pub spec: HierarchySpec,
    /// Synthetic workload profile.
    pub profile: WorkloadProfile,
    /// Instruction budget.
    pub instructions: u64,
    /// Trace seed.
    pub seed: u64,
}

/// Summary of one batched pass over a verified baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEquivalenceReport {
    /// Batch size the pass ran at.
    pub batch_size: usize,
    /// Batches the cases were cut into.
    pub batches: usize,
    /// Runs compared bit-for-bit (all of them, or the pass failed).
    pub runs: usize,
}

/// The sequential side of the equivalence check: every case run through
/// the full differential oracle once, with its result and live event
/// stream retained for any number of batched passes to compare against.
pub struct SequentialBaseline {
    engine: Engine,
    cases: Vec<BatchCase>,
    runs: Vec<LiveRun>,
    /// The oracle reports of the sequential runs, case for case.
    pub reports: Vec<DifferentialReport>,
}

impl SequentialBaseline {
    /// Runs every case through the sequential differential oracle
    /// ([`crate::harness::run_differential_spec`] semantics), retaining the
    /// per-case results and live event streams.
    ///
    /// # Errors
    ///
    /// Returns the oracle's [`DifferentialError`] for the first case that
    /// diverges from the reference model (or fails to build).
    pub fn capture(engine: Engine, cases: Vec<BatchCase>) -> Result<Self, DifferentialError> {
        let mut runs = Vec::with_capacity(cases.len());
        let mut reports = Vec::with_capacity(cases.len());
        for case in &cases {
            let (report, live) = run_differential_impl(
                &case.spec,
                &case.profile,
                case.instructions,
                case.seed,
                engine,
            )?;
            runs.push(live);
            reports.push(report);
        }
        Ok(SequentialBaseline {
            engine,
            cases,
            runs,
            reports,
        })
    }

    /// Number of cases in the baseline.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// `true` when the baseline holds no cases.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// Cuts the cases into contiguous batches of `batch_size` (`0` means
    /// one full-width batch), runs each through a probed [`BatchRunner`],
    /// and asserts every member's [`lnuca_sim::system::RunResult`] and
    /// probe event stream are bit-identical to its sequential baseline
    /// run.
    ///
    /// # Errors
    ///
    /// Returns a [`DifferentialError`] naming the diverging run, or the
    /// member configuration that failed to build.
    pub fn check_batched(&self, batch_size: usize) -> Result<BatchEquivalenceReport, DifferentialError> {
        let width = if batch_size == 0 {
            self.cases.len().max(1)
        } else {
            batch_size
        };
        let mut batches = 0;
        let mut runs = 0;
        for (batch_index, (cases, expected)) in self
            .cases
            .chunks(width)
            .zip(self.runs.chunks(width))
            .enumerate()
        {
            let jobs: Vec<BatchJob<'_>> = cases
                .iter()
                .map(|case| BatchJob {
                    spec: &case.spec,
                    profile: &case.profile,
                    instructions: case.instructions,
                    seed: case.seed,
                })
                .collect();
            let runner =
                BatchRunner::with_probes(self.engine, &jobs, RecordingProbe::default).map_err(
                    |e| DifferentialError {
                        context: format!("batch #{batch_index} of width {width}"),
                        details: vec![format!("configuration error: {e}")],
                    },
                )?;
            batches += 1;
            for ((case, expect), (result, hierarchy)) in
                cases.iter().zip(expected).zip(runner.run())
            {
                let context = format!(
                    "{} / {} / seed {} / {} / {} instructions / batch #{batch_index} width {width}",
                    case.spec.label(),
                    case.profile.name,
                    case.seed,
                    self.engine.label(),
                    case.instructions
                );
                if result != expect.result {
                    return Err(DifferentialError {
                        context,
                        details: vec![
                            "batched RunResult differs from the sequential run".to_owned(),
                        ],
                    });
                }
                // The batched run stops exactly where the solo run loop
                // does (no quiescing walk), so its whole stream must equal
                // the baseline's pre-quiescing prefix.
                let events = &hierarchy.probe().events;
                if events != &expect.live_events {
                    let first = events
                        .iter()
                        .zip(&expect.live_events)
                        .position(|(a, b)| a != b)
                        .unwrap_or(events.len().min(expect.live_events.len()));
                    return Err(DifferentialError {
                        context,
                        details: vec![format!(
                            "probe streams diverge at event #{first} \
                             ({} batched vs {} sequential events)",
                            events.len(),
                            expect.live_events.len()
                        )],
                    });
                }
                runs += 1;
            }
        }
        Ok(BatchEquivalenceReport {
            batch_size: width,
            batches,
            runs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnuca_sim::configs::{self, HierarchyKind};
    use lnuca_workloads::suites;

    fn small_cases() -> Vec<BatchCase> {
        let specs = [
            HierarchyKind::Conventional(configs::conventional()).to_spec(),
            HierarchyKind::LNucaL3(configs::lnuca_hierarchy(2)).to_spec(),
        ];
        let profiles = suites::spec_int_like();
        specs
            .iter()
            .flat_map(|spec| {
                profiles[..2].iter().map(|profile| BatchCase {
                    spec: spec.clone(),
                    profile: profile.clone(),
                    instructions: 800,
                    seed: 5,
                })
            })
            .collect()
    }

    #[test]
    fn every_cut_of_the_case_list_is_equivalent() {
        let baseline = SequentialBaseline::capture(Engine::EventHorizon, small_cases()).unwrap();
        assert_eq!(baseline.len(), 4);
        for (batch_size, batches) in [(1, 4), (3, 2), (0, 1)] {
            let report = baseline.check_batched(batch_size).unwrap();
            assert_eq!(report.runs, 4, "batch size {batch_size}");
            assert_eq!(report.batches, batches, "batch size {batch_size}");
        }
    }

    #[test]
    fn the_reports_carry_real_oracle_traffic() {
        let baseline = SequentialBaseline::capture(Engine::CycleStep, small_cases()).unwrap();
        assert!(baseline.reports.iter().all(|r| r.accesses > 0 && r.events as u64 >= r.accesses));
        baseline.check_batched(2).unwrap();
    }
}
