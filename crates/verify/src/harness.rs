//! The differential harness: run the detailed simulator with a recording
//! probe, replay the event stream through the reference model, and assert
//! that per-level hit/miss counts, final resident line sets and writeback
//! totals agree — for any hierarchy kind, workload, seed and engine.

use crate::hierarchy::RefHierarchy;
use crate::reference::RefBacking;
use crate::recorder::RecordingProbe;
use lnuca_cpu::DataMemory;
use lnuca_mem::{Line, ProbeEvent};
use lnuca_sim::configs::HierarchyKind;
use lnuca_sim::hierarchy::{AnyHierarchy, Backing, HierarchyStats};
use lnuca_sim::spec::HierarchySpec;
use lnuca_sim::system::{Engine, System};
use lnuca_types::Cycle;
use lnuca_workloads::{TraceGenerator, WorkloadProfile};
use std::fmt;

/// A divergence between the detailed simulator and the reference model (or
/// an invalid configuration).
#[derive(Debug)]
pub struct DifferentialError {
    /// Which run diverged.
    pub context: String,
    /// What diverged.
    pub details: Vec<String>,
}

impl fmt::Display for DifferentialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "differential oracle failed for {}", self.context)?;
        for d in &self.details {
            writeln!(f, "  - {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for DifferentialError {}

/// Summary of one verified run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DifferentialReport {
    /// Hierarchy label (e.g. `LN3-144KB`).
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Seed of the synthetic trace.
    pub seed: u64,
    /// Instructions simulated.
    pub instructions: u64,
    /// Probe events replayed.
    pub events: usize,
    /// Demand accesses (hits + misses + merges).
    pub accesses: u64,
    /// Accesses merged into in-flight fetches.
    pub merged: u64,
    /// Block fetches that reached DRAM.
    pub memory_accesses: u64,
    /// Write-buffer drains.
    pub write_drains: u64,
}

/// Runs `profile` on `kind` with the given `engine`, records every
/// functional transition, replays the stream through the timing-free
/// reference model and cross-checks per-level counters, writeback totals
/// and final resident line sets.
///
/// # Errors
///
/// Returns a [`DifferentialError`] describing the first divergence (or an
/// invalid configuration).
pub fn run_differential(
    kind: &HierarchyKind,
    profile: &WorkloadProfile,
    instructions: u64,
    seed: u64,
    engine: Engine,
) -> Result<DifferentialReport, DifferentialError> {
    run_differential_spec(&kind.to_spec(), profile, instructions, seed, engine)
}

/// Spec-level form of [`run_differential`]: verifies **any** hierarchy a
/// [`HierarchySpec`] composes — fabric over bare memory, deep conventional
/// stacks, non-paper tile sizes — not just the four paper kinds.
///
/// # Errors
///
/// Returns a [`DifferentialError`] describing the first divergence (or an
/// invalid configuration).
pub fn run_differential_spec(
    spec: &HierarchySpec,
    profile: &WorkloadProfile,
    instructions: u64,
    seed: u64,
    engine: Engine,
) -> Result<DifferentialReport, DifferentialError> {
    run_differential_impl(spec, profile, instructions, seed, engine).map(|(report, _)| report)
}

/// The probed run as the engine and batch comparisons need it: the
/// [`lnuca_sim::system::RunResult`] and the pre-quiescing prefix of the
/// event stream.
pub(crate) struct LiveRun {
    pub(crate) result: lnuca_sim::system::RunResult,
    pub(crate) live_events: Vec<ProbeEvent>,
}

pub(crate) fn run_differential_impl(
    spec: &HierarchySpec,
    profile: &WorkloadProfile,
    instructions: u64,
    seed: u64,
    engine: Engine,
) -> Result<(DifferentialReport, LiveRun), DifferentialError> {
    let context = format!(
        "{} / {} / seed {} / {} / {} instructions",
        spec.label(),
        profile.name,
        seed,
        engine.label(),
        instructions
    );
    let fail = |details: Vec<String>| DifferentialError {
        context: context.clone(),
        details,
    };

    let (result, mut hierarchy) = System::run_spec_probed(
        engine,
        spec,
        profile,
        instructions,
        seed,
        RecordingProbe::default(),
    )
    .map_err(|e| fail(vec![format!("configuration error: {e}")]))?;

    // Drive the hierarchy to quiescence so the run does not end with
    // searches queued at the injection port, arrivals/misses/spills sitting
    // in output queues or writes parked in the write buffer: with every
    // in-flight transaction resolved, all ledgers must close *exactly*.
    let live_event_count = hierarchy.probe().events.len();
    let final_stats = quiesce(&mut hierarchy, Cycle(result.cycles))
        .map_err(|e| fail(vec![e]))?;

    let events: &[ProbeEvent] = &hierarchy.probe().events;

    // 1. The probed access stream is exactly the trace's memory operations:
    //    same multiset of (address, is_write), one successful issue per
    //    committed memory instruction — ties the oracle back to the input
    //    trace independently of the core's issue order.
    let mut trace_ops: Vec<(u64, bool)> = TraceGenerator::new(profile.clone(), seed)
        .take(usize::try_from(instructions).unwrap_or(usize::MAX))
        .filter(|i| i.kind.is_memory())
        .map(|i| (i.addr.expect("memory ops carry addresses").0, i.kind.is_store()))
        .collect();
    let mut probed_ops: Vec<(u64, bool)> = events
        .iter()
        .filter_map(|e| match *e {
            ProbeEvent::Access { addr, is_write, .. } => Some((addr.0, is_write)),
            _ => None,
        })
        .collect();
    trace_ops.sort_unstable();
    probed_ops.sort_unstable();
    if trace_ops != probed_ops {
        return Err(fail(vec![format!(
            "probed access stream does not match the trace: {} trace memory ops, \
             {} probed accesses",
            trace_ops.len(),
            probed_ops.len()
        )]));
    }

    // 2. Replay the event stream through the reference model.
    let mut reference =
        RefHierarchy::from_spec(spec).map_err(|e| fail(vec![format!("reference build: {e}")]))?;
    for (index, &event) in events.iter().enumerate() {
        reference
            .apply(event)
            .map_err(|e| fail(vec![format!("event #{index} {event:?}: {e}")]))?;
    }

    // 3. Per-level hit/miss counters, writeback totals, memory traffic
    //    (against the post-quiescing snapshot, so in-flight truncation
    //    cannot mask a divergence).
    reference
        .check_stats(&final_stats)
        .map_err(|details| fail(details))?;

    // 4. Final resident line sets, level by level.
    check_residency(&reference, &hierarchy).map_err(|details| fail(details))?;

    let report = DifferentialReport {
        label: result.label.clone(),
        workload: result.workload.clone(),
        seed,
        instructions,
        events: events.len(),
        accesses: probed_ops.len() as u64,
        merged: reference.merged,
        memory_accesses: reference.memory_accesses,
        write_drains: reference.write_drains,
    };
    let live_events = hierarchy.probe().events[..live_event_count].to_vec();
    Ok((report, LiveRun { result, live_events }))
}

/// Runs the differential oracle under the event-horizon engine and
/// additionally asserts that the cycle-step engine produces the identical
/// event stream and results (the two engines must be functionally
/// indistinguishable, not just equal in final counters).
///
/// # Errors
///
/// Returns a [`DifferentialError`] on any divergence.
pub fn run_differential_both_engines(
    kind: &HierarchyKind,
    profile: &WorkloadProfile,
    instructions: u64,
    seed: u64,
) -> Result<DifferentialReport, DifferentialError> {
    run_differential_spec_both_engines(&kind.to_spec(), profile, instructions, seed)
}

/// Spec-level form of [`run_differential_both_engines`].
///
/// # Errors
///
/// Returns a [`DifferentialError`] on any divergence.
pub fn run_differential_spec_both_engines(
    spec: &HierarchySpec,
    profile: &WorkloadProfile,
    instructions: u64,
    seed: u64,
) -> Result<DifferentialReport, DifferentialError> {
    let (report, eh) =
        run_differential_impl(spec, profile, instructions, seed, Engine::EventHorizon)?;

    let context = format!(
        "{} / {} / seed {} / engine comparison",
        spec.label(),
        profile.name,
        seed
    );
    let fail = |details: Vec<String>| DifferentialError {
        context: context.clone(),
        details,
    };
    let (result_cs, h_cs) = System::run_spec_probed(
        Engine::CycleStep,
        spec,
        profile,
        instructions,
        seed,
        RecordingProbe::default(),
    )
    .map_err(|e| fail(vec![e.to_string()]))?;
    if eh.result != result_cs {
        return Err(fail(vec!["RunResult differs between the engines".to_owned()]));
    }
    let (a, b) = (&eh.live_events, &h_cs.probe().events);
    if a != b {
        let first = a
            .iter()
            .zip(b.iter())
            .position(|(x, y)| x != y)
            .unwrap_or(a.len().min(b.len()));
        return Err(fail(vec![format!(
            "probe streams diverge at event #{first} ({} vs {} events)",
            a.len(),
            b.len()
        )]));
    }
    Ok(report)
}

/// Ticks the hierarchy along its own event horizons until it reports
/// quiescence, draining completions as they mature. Returns the final
/// statistics snapshot.
fn quiesce(
    hierarchy: &mut AnyHierarchy<RecordingProbe>,
    from: Cycle,
) -> Result<HierarchyStats, String> {
    let mut now = from;
    let mut scratch = Vec::new();
    // The run loop exits with its final clock value un-ticked; anything
    // scheduled for exactly that cycle (e.g. a search level lookup, which
    // fires only when `process_at == now`) must see its tick before the
    // horizon walk starts, or it strands forever.
    hierarchy.tick(now);
    hierarchy.drain_completions(now, &mut scratch);
    // Generous bound: any in-flight transaction resolves within a DRAM
    // round trip plus queue drains; hitting the cap means the hierarchy
    // never goes quiet, which is itself a bug worth failing on.
    let cap = Cycle(from.0 + 1_000_000);
    while let Some(next) = hierarchy.next_event(now) {
        if next > cap {
            return Err(format!(
                "hierarchy still busy {} cycles after the run ended",
                cap.0 - from.0
            ));
        }
        now = next;
        hierarchy.tick(now);
        scratch.clear();
        hierarchy.drain_completions(now, &mut scratch);
    }
    Ok(hierarchy.stats())
}

fn sorted_lines(lines: impl Iterator<Item = Line>) -> Vec<(u64, bool)> {
    let mut v: Vec<(u64, bool)> = lines.map(|l| (l.addr.0, l.dirty)).collect();
    v.sort_unstable();
    v
}

fn check_residency(
    reference: &RefHierarchy,
    hierarchy: &AnyHierarchy<RecordingProbe>,
) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    fn compare(
        errors: &mut Vec<String>,
        name: &str,
        detailed: Vec<(u64, bool)>,
        modelled: Vec<(u64, bool)>,
    ) {
        if detailed != modelled {
            let only_detailed: Vec<_> =
                detailed.iter().filter(|x| !modelled.contains(x)).take(4).collect();
            let only_model: Vec<_> =
                modelled.iter().filter(|x| !detailed.contains(x)).take(4).collect();
            errors.push(format!(
                "{name} residency differs: {} detailed vs {} reference lines; \
                 only-detailed (first 4): {only_detailed:x?}; \
                 only-reference (first 4): {only_model:x?}",
                detailed.len(),
                modelled.len()
            ));
        }
    }

    let (l1, outer) = match hierarchy {
        AnyHierarchy::Classic(h) => (h.l1(), h.outer()),
        AnyHierarchy::LNuca(h) => (h.l1(), h.outer()),
        AnyHierarchy::Cmp(_) => {
            // Multicore runs are checked by the coherence oracle
            // (`crate::coherence`), not the single-core residency model.
            return Err(vec![
                "residency checking does not apply to multicore hierarchies; \
                 use the coherence oracle instead"
                    .to_owned(),
            ]);
        }
    };
    compare(
        &mut errors,
        "L1",
        sorted_lines(l1.lines()),
        sorted_lines(reference.l1.lines()),
    );
    let detailed_intermediates: Vec<_> = outer.intermediate_caches().collect();
    if detailed_intermediates.len() != reference.outer.intermediates.len() {
        errors.push(format!(
            "intermediate chain length differs: {} detailed vs {} reference",
            detailed_intermediates.len(),
            reference.outer.intermediates.len()
        ));
    } else {
        for (i, (detailed, modelled)) in detailed_intermediates
            .iter()
            .zip(&reference.outer.intermediates)
            .enumerate()
        {
            compare(
                &mut errors,
                &format!("intermediate[{i}]"),
                sorted_lines(detailed.lines()),
                sorted_lines(modelled.lines()),
            );
        }
    }
    match (outer.backing(), &reference.outer.backing) {
        (Backing::Cache(l3), RefBacking::Cache(r3)) => {
            compare(&mut errors, "L3", sorted_lines(l3.lines()), sorted_lines(r3.lines()));
        }
        (Backing::Memory { .. }, RefBacking::Memory) => {}
        (Backing::DNuca(dnuca), RefBacking::DNuca(rd)) => {
            let mut detailed = dnuca.resident_lines();
            let mut modelled = rd.resident_lines();
            let key = |&(c, r, l): &(usize, usize, Line)| (c, r, l.addr.0, l.dirty);
            detailed.sort_by_key(key);
            modelled.sort_by_key(key);
            let detailed: Vec<_> = detailed.iter().map(key).collect();
            let modelled: Vec<_> = modelled.iter().map(key).collect();
            if detailed != modelled {
                errors.push(format!(
                    "D-NUCA bank residency differs: {} detailed vs {} reference lines",
                    detailed.len(),
                    modelled.len()
                ));
            }
        }
        _ => errors.push("backing shapes differ between detailed and reference".to_owned()),
    }
    if let AnyHierarchy::LNuca(h) = hierarchy {
        compare(
            &mut errors,
            "fabric custody",
            sorted_lines(h.fabric().resident_lines().into_iter()),
            reference.fabric_blocks(),
        );
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}
