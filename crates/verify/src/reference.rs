//! The timing-free reference model: obviously-correct set-associative LRU
//! caches and the functional composition rules of the paper's hierarchies.
//!
//! Nothing in this module knows about cycles, ports, networks or MSHRs. The
//! model advances only when the harness replays a recorded
//! [`lnuca_mem::ProbeEvent`] stream through it (see
//! [`crate::hierarchy::RefHierarchy`]): scheduling decisions (which access
//! merged, when a write drained) are inputs, every *cache-content* decision
//! — hit/miss, victim choice, dirty propagation, writeback — is recomputed
//! here and cross-checked against what the detailed simulator did.

use lnuca_mem::{CacheConfig, CacheGeometry, CacheStats, EvictedLine, Line, ReplacementPolicy, WritePolicy};
use lnuca_dnuca::DNucaConfig;
use lnuca_types::{Addr, ConfigError, ServiceLevel};

/// A nested-`Vec`, `Option`-per-way set-associative array with explicit LRU
/// stamps — deliberately the most straightforward implementation possible
/// (the same shape `crates/mem/tests/flat_array_model.rs` uses to verify
/// the flat `CacheArray`).
///
/// The stamp discipline mirrors `CacheArray` exactly: `lookup` and `fill`
/// each advance the local tick (even when they miss), `mark_dirty` and
/// `invalidate` do not, and the LRU victim is the way with the smallest
/// `last_use` (first such way on the impossible tie).
#[derive(Debug, Clone)]
pub struct RefArray {
    geometry: CacheGeometry,
    sets: Vec<Vec<RefWay>>,
    tick: u64,
}

#[derive(Debug, Clone, Copy)]
struct RefWay {
    line: Option<Line>,
    last_use: u64,
}

impl RefArray {
    /// Creates an empty array. Only LRU replacement is supported — the
    /// paper's configurations use LRU everywhere, and an obviously-correct
    /// oracle should not share victim-choice code with the implementation
    /// under test.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for non-LRU policies.
    pub fn new(geometry: CacheGeometry, policy: ReplacementPolicy) -> Result<Self, ConfigError> {
        if policy != ReplacementPolicy::Lru {
            return Err(ConfigError::new(
                "replacement",
                "the reference model implements LRU only (the paper's policy)",
            ));
        }
        Ok(RefArray {
            geometry,
            sets: vec![
                vec![
                    RefWay {
                        line: None,
                        last_use: 0
                    };
                    geometry.ways()
                ];
                geometry.sets()
            ],
            tick: 0,
        })
    }

    fn base(&self, addr: Addr) -> Addr {
        addr.block_base(self.geometry.block_size())
    }

    /// Residency probe without recency side effects.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        let base = self.base(addr);
        self.sets[self.geometry.set_index(addr)]
            .iter()
            .any(|w| w.line.map(|l| l.addr) == Some(base))
    }

    /// Looks the block up, refreshing its recency on a hit.
    pub fn lookup(&mut self, addr: Addr) -> Option<Line> {
        self.tick += 1;
        let tick = self.tick;
        let base = self.base(addr);
        let set = &mut self.sets[self.geometry.set_index(addr)];
        for way in set.iter_mut() {
            if let Some(line) = way.line {
                if line.addr == base {
                    way.last_use = tick;
                    return Some(line);
                }
            }
        }
        None
    }

    /// Marks the block dirty if resident.
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        let base = self.base(addr);
        let set = &mut self.sets[self.geometry.set_index(addr)];
        for way in set.iter_mut() {
            if let Some(line) = way.line.as_mut() {
                if line.addr == base {
                    line.dirty = true;
                    return true;
                }
            }
        }
        false
    }

    /// Inserts the block, evicting the LRU line of a full set.
    pub fn fill(&mut self, addr: Addr, dirty: bool) -> Option<EvictedLine> {
        self.tick += 1;
        let tick = self.tick;
        let base = self.base(addr);
        let set = &mut self.sets[self.geometry.set_index(addr)];
        // Already resident: merge dirtiness, refresh.
        for way in set.iter_mut() {
            if let Some(line) = way.line.as_mut() {
                if line.addr == base {
                    line.dirty |= dirty;
                    way.last_use = tick;
                    return None;
                }
            }
        }
        // Free way.
        if let Some(way) = set.iter_mut().find(|w| w.line.is_none()) {
            way.line = Some(Line { addr: base, dirty });
            way.last_use = tick;
            return None;
        }
        // LRU victim: smallest last_use, lowest way index first.
        let victim_way = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.last_use)
            .map(|(i, _)| i)
            .expect("sets have at least one way");
        let way = &mut set[victim_way];
        let victim = way.line.expect("a full set has a line in every way");
        way.line = Some(Line { addr: base, dirty });
        way.last_use = tick;
        Some(EvictedLine {
            addr: victim.addr,
            dirty: victim.dirty,
        })
    }

    /// Removes the block, returning its metadata.
    pub fn invalidate(&mut self, addr: Addr) -> Option<Line> {
        let base = self.base(addr);
        let set = &mut self.sets[self.geometry.set_index(addr)];
        for way in set.iter_mut() {
            if let Some(line) = way.line {
                if line.addr == base {
                    way.line = None;
                    return Some(line);
                }
            }
        }
        None
    }

    /// Every resident line (in no particular order).
    pub fn lines(&self) -> impl Iterator<Item = Line> + '_ {
        self.sets.iter().flatten().filter_map(|w| w.line)
    }
}

/// A reference conventional cache: [`RefArray`] plus the exact counter
/// discipline of `lnuca_mem::ConventionalCache` (which is what the final
/// [`CacheStats`] equality check leans on).
#[derive(Debug, Clone)]
pub struct RefCache {
    array: RefArray,
    write_policy: WritePolicy,
    /// Counters accumulated with `ConventionalCache`'s bucketing rules.
    pub stats: CacheStats,
}

impl RefCache {
    /// Builds an empty reference cache from the same configuration the
    /// detailed cache was built from.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid geometry or non-LRU policies.
    pub fn new(config: &CacheConfig) -> Result<Self, ConfigError> {
        Ok(RefCache {
            array: RefArray::new(config.geometry()?, config.replacement)?,
            write_policy: config.write_policy,
            stats: CacheStats::default(),
        })
    }

    /// Performs a demand access; returns `true` on a hit.
    pub fn access(&mut self, addr: Addr, is_write: bool) -> bool {
        self.stats.accesses += 1;
        let hit = self.array.lookup(addr).is_some();
        match (hit, is_write) {
            (true, true) => {
                self.stats.write_hits += 1;
                if self.write_policy == WritePolicy::CopyBack {
                    self.array.mark_dirty(addr);
                }
            }
            (true, false) => self.stats.read_hits += 1,
            (false, true) => self.stats.write_misses += 1,
            (false, false) => self.stats.read_misses += 1,
        }
        hit
    }

    /// Fills the block, counting the eviction like the detailed cache does.
    pub fn fill(&mut self, addr: Addr, dirty: bool) -> Option<EvictedLine> {
        self.stats.fills += 1;
        let evicted = self.array.fill(addr, dirty);
        if let Some(e) = &evicted {
            if e.dirty {
                self.stats.dirty_evictions += 1;
            } else {
                self.stats.clean_evictions += 1;
            }
        }
        evicted
    }

    /// Marks the block dirty if resident.
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        self.array.mark_dirty(addr)
    }

    /// Residency probe without side effects.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        self.array.contains(addr)
    }

    /// Every resident line.
    pub fn lines(&self) -> impl Iterator<Item = Line> + '_ {
        self.array.lines()
    }
}

/// The functional subset of `lnuca_dnuca::DNucaStats` the reference model
/// recomputes (the timing fields — `hit_latency_sum` — and the unused
/// `misses` counter are excluded from comparison).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefDnucaCounters {
    /// Total accesses.
    pub accesses: u64,
    /// Hits per bank row (0 = closest to the controller).
    pub hits_per_row: Vec<u64>,
    /// Individual bank lookups.
    pub bank_lookups: u64,
    /// Bank writes caused by fills and migrations.
    pub bank_fills: u64,
    /// Promotions performed.
    pub migrations: u64,
    /// Dirty victims evicted by fills.
    pub dirty_evictions: u64,
}

/// Reference D-NUCA: per-bank [`RefArray`]s plus the exact functional rules
/// of `lnuca_dnuca::DNuca` — row-ordered probing, hit promotion by swap,
/// fills into the farthest row.
#[derive(Debug, Clone)]
pub struct RefDnuca {
    config: DNucaConfig,
    /// `banks[col][row]`, like the detailed cache.
    banks: Vec<Vec<RefArray>>,
    /// Functional counters.
    pub counters: RefDnucaCounters,
}

impl RefDnuca {
    /// Builds an empty reference D-NUCA.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid bank geometry.
    pub fn new(config: &DNucaConfig) -> Result<Self, ConfigError> {
        let geometry =
            CacheGeometry::new(config.bank_size_bytes, config.bank_ways, config.block_size)?;
        let banks = (0..config.cols)
            .map(|_| {
                (0..config.rows)
                    .map(|_| RefArray::new(geometry, ReplacementPolicy::Lru))
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RefDnuca {
            counters: RefDnucaCounters {
                hits_per_row: vec![0; config.rows],
                ..RefDnucaCounters::default()
            },
            config: config.clone(),
            banks,
        })
    }

    fn bank_set(&self, addr: Addr) -> usize {
        (addr.block_index(self.config.block_size) % self.config.cols as u64) as usize
    }

    /// Performs a demand access; returns the hit row, or `None` on a miss.
    ///
    /// Both search policies probe the rows in distance order and stop at the
    /// first hit, so they are functionally identical; only timing differs.
    pub fn access(&mut self, addr: Addr, is_write: bool) -> Option<u8> {
        self.counters.accesses += 1;
        let col = self.bank_set(addr);
        for row in 0..self.config.rows {
            self.counters.bank_lookups += 1;
            // The probe performs a real lookup (recency refresh on a hit),
            // exactly like `DNuca::probe_bank`.
            if self.banks[col][row].lookup(addr).is_some() {
                self.counters.hits_per_row[row] += 1;
                if is_write {
                    self.banks[col][row].mark_dirty(addr);
                }
                if self.config.promotion && row > 0 {
                    self.promote(addr, col, row);
                }
                return Some(row as u8);
            }
        }
        None
    }

    /// Swaps the hit block one row closer to the controller (mirrors
    /// `DNuca::promote`, including its silent drop of a secondary victim).
    fn promote(&mut self, addr: Addr, col: usize, row: usize) {
        let closer = row - 1;
        let line = self.banks[col][row]
            .invalidate(addr)
            .expect("promoted block is resident in the hitting bank");
        if let Some(displaced) = self.banks[col][closer].fill(line.addr, line.dirty) {
            let _ = self.banks[col][row].fill(displaced.addr, displaced.dirty);
            self.counters.bank_fills += 2;
        } else {
            self.counters.bank_fills += 1;
        }
        self.counters.migrations += 1;
    }

    /// Fills a block arriving from memory into the farthest row.
    pub fn fill(&mut self, addr: Addr, dirty: bool) -> Option<EvictedLine> {
        let col = self.bank_set(addr);
        let row = self.config.rows - 1;
        self.counters.bank_fills += 1;
        let evicted = self.banks[col][row].fill(addr, dirty);
        if let Some(e) = &evicted {
            if e.dirty {
                self.counters.dirty_evictions += 1;
            }
        }
        evicted
    }

    /// Marks the block dirty wherever it resides (closest row first).
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        let col = self.bank_set(addr);
        self.banks[col].iter_mut().any(|b| b.mark_dirty(addr))
    }

    /// Every resident line, tagged `(col, row, line)` like
    /// `DNuca::resident_lines`.
    #[must_use]
    pub fn resident_lines(&self) -> Vec<(usize, usize, Line)> {
        let mut out = Vec::new();
        for (col, rows) in self.banks.iter().enumerate() {
            for (row, bank) in rows.iter().enumerate() {
                out.extend(bank.lines().map(|line| (col, row, line)));
            }
        }
        out
    }
}

/// The reference backing store (mirrors
/// `lnuca_sim::hierarchy::Backing`, minus all timing).
#[derive(Debug)]
pub enum RefBacking {
    /// An L3-style conventional cache.
    Cache(RefCache),
    /// A D-NUCA.
    DNuca(RefDnuca),
    /// Nothing on chip: every fetch falls through to DRAM.
    Memory,
}

/// The reference outer level: the functional composition rules of
/// `lnuca_sim::hierarchy::OuterLevel` (fill-on-the-way-up, dirty victims
/// written back one level down, write-through marking resident blocks
/// dirty), minus all timing. Like the detailed struct it is a chain of
/// intermediate caches in front of a [`RefBacking`], so every shape a
/// `HierarchySpec` composes — not just the paper's three — replays here.
#[derive(Debug)]
pub struct RefOuter {
    /// Intermediate conventional caches, nearest first.
    pub intermediates: Vec<RefCache>,
    /// The backing store behind them.
    pub backing: RefBacking,
}

impl RefOuter {
    /// Builds the reference outer levels of `spec`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for invalid or non-LRU configurations.
    pub fn from_spec(spec: &lnuca_sim::spec::HierarchySpec) -> Result<Self, ConfigError> {
        let intermediates = spec
            .intermediate
            .iter()
            .map(|level| RefCache::new(&level.cache))
            .collect::<Result<Vec<_>, _>>()?;
        let backing = match &spec.backing {
            lnuca_sim::spec::BackingSpec::Cache(cache) => RefBacking::Cache(RefCache::new(cache)?),
            lnuca_sim::spec::BackingSpec::DNuca(dnuca) => RefBacking::DNuca(RefDnuca::new(dnuca)?),
            lnuca_sim::spec::BackingSpec::Memory => RefBacking::Memory,
            // `BackingSpec` is #[non_exhaustive]: a future backing kind must
            // teach the reference model its rules before it can be verified.
            other => {
                return Err(ConfigError::new(
                    "backing",
                    format!("the reference model does not implement {} backings yet", other.kind_name()),
                ))
            }
        };
        Ok(RefOuter {
            intermediates,
            backing,
        })
    }

    /// Resolves a miss coming from above, returning the level that provided
    /// the block; `memory_accesses` counts block fetches that fell through
    /// to DRAM (mirrors `MainMemory::accesses`).
    pub fn fetch(&mut self, addr: Addr, is_write: bool, memory_accesses: &mut u64) -> ServiceLevel {
        self.fetch_level(0, addr, is_write, memory_accesses)
    }

    fn fetch_level(
        &mut self,
        idx: usize,
        addr: Addr,
        is_write: bool,
        memory_accesses: &mut u64,
    ) -> ServiceLevel {
        if idx == self.intermediates.len() {
            return match &mut self.backing {
                // The backing cache is always accessed as a read (the fetch
                // of a block), like the detailed chain.
                RefBacking::Cache(l3) => {
                    if l3.access(addr, false) {
                        ServiceLevel::L3
                    } else {
                        *memory_accesses += 1;
                        let _ = l3.fill(addr, false);
                        ServiceLevel::Memory
                    }
                }
                RefBacking::DNuca(dnuca) => match dnuca.access(addr, is_write) {
                    Some(row) => ServiceLevel::DNucaRow(row),
                    None => {
                        *memory_accesses += 1;
                        let _ = dnuca.fill(addr, false);
                        ServiceLevel::Memory
                    }
                },
                RefBacking::Memory => {
                    *memory_accesses += 1;
                    ServiceLevel::Memory
                }
            };
        }
        if self.intermediates[idx].access(addr, is_write) {
            return if idx == 0 {
                ServiceLevel::L2
            } else {
                ServiceLevel::Intermediate(u8::try_from(idx).unwrap_or(u8::MAX))
            };
        }
        // `is_write` reaches only the first level below; deeper levels see
        // the fetch as a read (the detailed chain's rule).
        let served = self.fetch_level(idx + 1, addr, false, memory_accesses);
        if let Some(victim) = self.intermediates[idx].fill(addr, false) {
            if victim.dirty {
                self.writeback_below(idx + 1, victim.addr);
            }
        }
        served
    }

    /// Writes a dirty victim into the first level at or below `idx`
    /// (mark-dirty where resident, install dirty into a cache otherwise;
    /// D-NUCA and memory absorb absent blocks silently) — the detailed
    /// chain's rule.
    fn writeback_below(&mut self, idx: usize, addr: Addr) {
        if idx < self.intermediates.len() {
            if !self.intermediates[idx].mark_dirty(addr) {
                let _ = self.intermediates[idx].fill(addr, true);
            }
            return;
        }
        match &mut self.backing {
            RefBacking::Cache(l3) => {
                if !l3.mark_dirty(addr) {
                    let _ = l3.fill(addr, true);
                }
            }
            RefBacking::DNuca(dnuca) => {
                let _ = dnuca.mark_dirty(addr);
            }
            RefBacking::Memory => {}
        }
    }

    /// Applies one drained write: the block is marked dirty where it
    /// resides (nearest level first), like `OuterLevel::write_through`.
    pub fn write_through(&mut self, addr: Addr) {
        for level in &mut self.intermediates {
            if level.mark_dirty(addr) {
                return;
            }
        }
        match &mut self.backing {
            RefBacking::Cache(l3) => {
                let _ = l3.mark_dirty(addr);
            }
            RefBacking::DNuca(dnuca) => {
                let _ = dnuca.mark_dirty(addr);
            }
            RefBacking::Memory => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lnuca_mem::AccessMode;

    fn small_cache() -> RefCache {
        RefCache::new(
            &CacheConfig::builder("t")
                .size_bytes(1024)
                .ways(2)
                .block_size(32)
                .completion_cycles(1)
                .initiation_interval(1)
                .access_mode(AccessMode::Parallel)
                .write_policy(WritePolicy::CopyBack)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn lru_order_and_counters() {
        let mut c = small_cache();
        assert!(!c.access(Addr(0x000), false));
        c.fill(Addr(0x000), false);
        c.fill(Addr(0x400), false);
        assert!(c.access(Addr(0x000), false), "refreshes recency");
        let evicted = c.fill(Addr(0x800), false).expect("set of 2 ways is full");
        assert_eq!(evicted.addr, Addr(0x400), "LRU victim");
        assert_eq!(c.stats.read_hits, 1);
        assert_eq!(c.stats.read_misses, 1);
        assert_eq!(c.stats.fills, 3);
        assert_eq!(c.stats.clean_evictions, 1);
    }

    #[test]
    fn copy_back_write_hits_dirty_the_line() {
        let mut c = small_cache();
        c.fill(Addr(0x40), false);
        assert!(c.access(Addr(0x40), true));
        assert!(c.lines().any(|l| l.addr == Addr(0x40) && l.dirty));
        assert_eq!(c.stats.write_hits, 1);
    }

    #[test]
    fn non_lru_policies_are_rejected() {
        let cfg = CacheConfig::builder("t")
            .size_bytes(1024)
            .ways(2)
            .block_size(32)
            .replacement(ReplacementPolicy::Fifo)
            .build()
            .unwrap();
        assert!(RefCache::new(&cfg).is_err());
    }

    #[test]
    fn dnuca_promotes_on_hits_and_fills_far_row() {
        let mut d = RefDnuca::new(&DNucaConfig::paper()).unwrap();
        let addr = Addr(0x4_2000);
        d.fill(addr, false);
        let rows = d.config.rows as u8;
        assert_eq!(d.access(addr, false), Some(rows - 1));
        assert_eq!(d.access(addr, false), Some(rows - 2), "promotion moved it closer");
        assert_eq!(d.counters.migrations, 2);
        assert!(d.counters.bank_lookups >= u64::from(rows));
    }

    #[test]
    fn outer_l2l3_chain_fills_on_the_way_up() {
        let mut outer = RefOuter {
            intermediates: vec![small_cache()],
            backing: RefBacking::Cache(small_cache()),
        };
        let mut mem = 0u64;
        assert_eq!(outer.fetch(Addr(0x9000), false, &mut mem), ServiceLevel::Memory);
        assert_eq!(mem, 1);
        assert_eq!(outer.fetch(Addr(0x9000), false, &mut mem), ServiceLevel::L2);
        assert_eq!(mem, 1);
    }

    #[test]
    fn memory_backing_counts_every_fetch() {
        let mut outer = RefOuter {
            intermediates: Vec::new(),
            backing: RefBacking::Memory,
        };
        let mut mem = 0u64;
        for _ in 0..3 {
            assert_eq!(outer.fetch(Addr(0x40), false, &mut mem), ServiceLevel::Memory);
        }
        assert_eq!(mem, 3, "nothing on chip can absorb the fetches");
        outer.write_through(Addr(0x40)); // absorbed silently
    }
}
