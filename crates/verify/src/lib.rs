//! Differential oracle for the Light NUCA reproduction.
//!
//! Three PRs of aggressive hot-path rewrites (zero-allocation drains, flat
//! packed-tag arrays, event-horizon skipping) made the detailed simulator
//! fast — and made "is it still *correct*?" a question nothing answered
//! independently: the existing pins only check the simulator against
//! itself (engine vs engine, thread count vs thread count). This crate is
//! the missing correctness layer:
//!
//! * [`mod@reference`] — an obviously-correct, timing-free functional model:
//!   nested-`Vec` set-associative LRU arrays ([`reference::RefArray`]),
//!   the counter discipline of the conventional caches
//!   ([`reference::RefCache`]), the D-NUCA's probe/promote/fill rules
//!   ([`reference::RefDnuca`]) and the outer-level composition
//!   ([`reference::RefOuter`]). No cycles, no ports, no NoC.
//! * [`hierarchy`] — [`hierarchy::RefHierarchy`] assembles the reference
//!   pieces into any of the paper's four organisations and replays a
//!   recorded probe stream through them, cross-checking every functional
//!   decision (hit level, victim choice, dirty propagation, custody of the
//!   fabric's exclusion set).
//! * [`harness`] — [`harness::run_differential`] runs the detailed
//!   simulator with a [`recorder::RecordingProbe`], replays the stream,
//!   and asserts per-level hit/miss counts, final resident line sets and
//!   writeback totals agree; `run_differential_both_engines` additionally
//!   pins the two time-stepping engines to the identical event stream.
//! * [`mod@chaos`] — the deterministic fault-injection harness
//!   (DESIGN.md §14): [`chaos::ChaosPlan`] schedules panics and watchdog
//!   trips at exact cycles of exact runs through the supervision layer's
//!   fault hook, pinning quarantine, bounded retry and checkpoint/resume
//!   behaviour without any timing dependence.
//! * [`mod@batch`] — the batch-equivalence layer (DESIGN.md §13):
//!   [`batch::SequentialBaseline`] verifies every case through the oracle
//!   once, then [`batch::SequentialBaseline::check_batched`] pins a
//!   `lnuca_sim::batch::BatchRunner` pass at any batch size to the
//!   identical per-run results and probe streams.
//!
//! # What is an input and what is checked
//!
//! Timing-dependent *scheduling* — which accesses merged into in-flight
//! MSHRs, when the write buffer drained, which searches resolved in which
//! order — is taken from the recorded stream as an input. Every
//! *cache-content* decision is recomputed independently and compared:
//! set indexing, tag matching, LRU victim selection, write-allocate fills,
//! dirty propagation and writebacks, the L2→L3 victim chain, D-NUCA
//! promotion swaps, and the fabric's content exclusion. The one detailed
//! structure the reference deliberately does not reproduce is the fabric's
//! per-tile placement (decided by seeded random routing): custody, hit and
//! miss totals, the eviction/spill ledger and the final custody set are
//! exact; the per-level hit split is validated structurally
//! (DESIGN.md §11).
//!
//! # Example
//!
//! ```
//! use lnuca_sim::configs::{self, HierarchyKind};
//! use lnuca_sim::system::Engine;
//! use lnuca_verify::harness::run_differential;
//! use lnuca_workloads::suites;
//!
//! let kind = HierarchyKind::LNucaL3(configs::lnuca_hierarchy(3));
//! let profile = suites::by_name("int.compress")?;
//! let report = run_differential(&kind, &profile, 2_000, 1, Engine::EventHorizon)?;
//! assert!(report.events as u64 >= report.accesses);
//! assert!(report.accesses > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod chaos;
pub mod coherence;
pub mod harness;
pub mod hierarchy;
pub mod recorder;
pub mod reference;

pub use batch::{BatchCase, BatchEquivalenceReport, SequentialBaseline};
pub use coherence::{run_coherence, run_coherence_both_engines, CoherenceError, CoherenceReport};
pub use harness::{run_differential, run_differential_both_engines, DifferentialError, DifferentialReport};
pub use hierarchy::RefHierarchy;
pub use recorder::RecordingProbe;
