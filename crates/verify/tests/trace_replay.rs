//! Differential coverage for trace-driven workloads (`AccessPattern::Trace`):
//! the committed sample corpus must round-trip from the textual dump through
//! `lnuca ingest` encoding, replay bit-identically under both engines, and
//! survive the batch-equivalence check at batch sizes {1, full}.

use lnuca_sim::configs::{self, HierarchyKind};
use lnuca_sim::system::Engine;
use lnuca_verify::batch::{BatchCase, SequentialBaseline};
use lnuca_verify::harness::run_differential_spec_both_engines;
use lnuca_workloads::{trace, TraceData};

/// Absolute path of the committed sample dump / corpus, independent of the
/// test runner's working directory.
fn sample_path(file: &str) -> String {
    format!("{}/../../scenarios/traces/{file}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn committed_corpus_matches_its_textual_dump() {
    // The committed .lnt is exactly what `lnuca ingest` produces from the
    // committed .txt — byte for byte, so CI's re-ingestion can `cmp` them.
    let text = std::fs::read_to_string(sample_path("sample.txt")).expect("sample dump reads");
    let records = trace::ingest_text(&text).expect("the committed dump ingests");
    let encoded = trace::encode(&records).expect("ingested records encode");
    let committed = std::fs::read(sample_path("sample.lnt")).expect("sample corpus reads");
    assert_eq!(encoded, committed, "scenarios/traces/sample.lnt is stale; re-run `lnuca ingest`");

    // And the corpus decodes back to the very records the dump spells out.
    let data = TraceData::from_bytes(committed).expect("the committed corpus loads");
    assert_eq!(data.decode_all().expect("corpus decodes"), records);
}

#[test]
fn trace_replay_passes_the_differential_oracle_under_both_engines() {
    let profile = trace::trace_profile(&sample_path("sample.lnt"));
    for spec in [
        HierarchyKind::Conventional(configs::conventional()).to_spec(),
        HierarchyKind::LNucaL3(configs::lnuca_hierarchy(2)).to_spec(),
    ] {
        let report = run_differential_spec_both_engines(&spec, &profile, 6_000, 1)
            .expect("trace replay matches the reference model under both engines");
        assert!(report.accesses > 0, "the replay issued memory operations");
    }
}

#[test]
fn trace_replay_is_batch_equivalent_at_one_and_full_width() {
    let profile = trace::trace_profile(&sample_path("sample.lnt"));
    let specs = [
        HierarchyKind::Conventional(configs::conventional()).to_spec(),
        HierarchyKind::LNucaL3(configs::lnuca_hierarchy(2)).to_spec(),
        lnuca_sim::spec::HierarchySpec::builder()
            .fabric(lnuca_core::LNucaConfig::paper(3).expect("3 levels is in range"))
            .build()
            .expect("a fabric-over-memory spec builds"),
    ];
    let cases: Vec<BatchCase> = specs
        .iter()
        .flat_map(|spec| {
            [1u64, 2].map(|seed| BatchCase {
                spec: spec.clone(),
                profile: profile.clone(),
                instructions: 4_000,
                seed,
            })
        })
        .collect();
    let baseline = SequentialBaseline::capture(Engine::EventHorizon, cases)
        .expect("every trace-replay case passes the sequential oracle");
    for batch_size in [1, 0] {
        let report = baseline
            .check_batched(batch_size)
            .expect("batched trace replays are bit-identical to solo runs");
        assert_eq!(report.runs, baseline.len());
    }
}
