//! The chaos matrix: deterministic fault injection against the supervised
//! experiment engine (DESIGN.md §14).
//!
//! Every test schedules faults at exact cycles of exact runs through
//! [`lnuca_verify::chaos`] and asserts the supervision layer's contracts:
//! batch quarantine leaves survivors bit-identical to their solo baselines,
//! watchdog trips reproduce identically across engines and are never
//! retried, transient faults are retried to bit-identical results, and a
//! torn study journal resumes to a byte-identical report.
//! `LNUCA_VERIFY_INSTRUCTIONS` scales the per-run instruction budget
//! (default 1 500), matching the differential matrix.

use lnuca_sim::batch::BatchJob;
use lnuca_sim::configs::{self, HierarchyKind};
use lnuca_sim::experiments::{ExperimentOptions, ExperimentPlan, Study};
use lnuca_sim::scenario::report_value;
use lnuca_sim::spec::HierarchySpec;
use lnuca_sim::supervise::{run_batch_supervised, run_job_supervised, Supervisor};
use lnuca_sim::system::{Engine, System};
use lnuca_types::RunError;
use lnuca_verify::chaos::{with_fault, ChaosPlan, FaultKind, ScheduledFault};
use lnuca_workloads::suites;

fn instructions() -> u64 {
    std::env::var("LNUCA_VERIFY_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1_500)
}

fn fabric_spec() -> HierarchySpec {
    HierarchyKind::LNucaL3(configs::lnuca_hierarchy(2)).to_spec()
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("lnuca-chaos-{tag}-{}.jsonl", std::process::id()));
    path
}

/// A panic injected into one member of a batch unwinds the whole batch;
/// quarantine must re-run the survivors solo and hand back results
/// bit-identical to their solo baselines, with only the poisoned member
/// reporting a structured failure.
#[test]
fn batch_panic_quarantines_only_the_poisoned_member() {
    let instructions = instructions();
    let spec = fabric_spec();
    let profiles = suites::spec_int_like();
    assert!(profiles.len() >= 3, "need at least 3 workloads");
    let jobs: Vec<BatchJob<'_>> = profiles[..3]
        .iter()
        .map(|profile| BatchJob {
            spec: &spec,
            profile,
            instructions,
            seed: 1,
        })
        .collect();
    let poisoned = &profiles[1].name;

    // Solo baselines, unsupervised: what every member must equal.
    let baselines: Vec<_> = jobs
        .iter()
        .map(|job| {
            System::run_spec_with(Engine::EventHorizon, job.spec, job.profile, instructions, 1)
                .expect("baseline runs")
        })
        .collect();

    let supervisor = Supervisor::from_options(&ExperimentOptions::default());
    let outcomes = with_fault(
        ScheduledFault {
            workload: Some(poisoned.clone()),
            at_cycle: 40,
            ..ScheduledFault::any()
        },
        || run_batch_supervised(Engine::EventHorizon, &jobs, &supervisor),
    );

    assert_eq!(outcomes.len(), jobs.len());
    for (i, (outcome, baseline)) in outcomes.iter().zip(&baselines).enumerate() {
        if &profiles[i].name == poisoned {
            // Batch pass (attempt 0) + the default single retry (attempt 1),
            // both poisoned: the failure is final and structured.
            let err = outcome.outcome.as_ref().expect_err("poisoned member fails");
            assert_eq!(err.status(), "panic");
            assert!(matches!(err, RunError::Panic { .. }), "got {err:?}");
            assert_eq!(outcome.attempts, 2);
        } else {
            let (result, _) = outcome.outcome.as_ref().expect("survivor succeeds");
            assert_eq!(result, baseline, "survivor {i} drifted from its solo baseline");
            // One lost batch pass, one clean solo re-run.
            assert_eq!(outcome.attempts, 2);
        }
    }
}

/// Cycle-budget and livelock trips are deterministic: identical structured
/// errors from both engines (the horizon clamp guarantees the jumping
/// engine cannot skip the trip cycle), and never retried.
#[test]
fn watchdog_trips_are_deterministic_across_engines_and_never_retried() {
    let spec = fabric_spec();
    let profile = suites::by_name("int.compress").expect("workload exists");

    for (options, status) in [
        (
            ExperimentOptions::builder().cycle_budget(Some(64)).retries(3).build(),
            "cycle-budget",
        ),
        (
            ExperimentOptions::builder().livelock_window(Some(1)).retries(3).build(),
            "livelock",
        ),
    ] {
        let supervisor = Supervisor::from_options(&options);
        let trips: Vec<_> = [Engine::EventHorizon, Engine::CycleStep]
            .into_iter()
            .map(|engine| {
                let outcome =
                    run_job_supervised(engine, &spec, &profile, instructions(), 1, &supervisor);
                let err = outcome.outcome.expect_err("watchdog trips");
                assert_eq!(err.status(), status);
                // Deterministic trips reproduce identically: no retry is
                // ever spent on them, even with retries budgeted.
                assert_eq!(outcome.attempts, 1);
                err
            })
            .collect();
        assert_eq!(trips[0], trips[1], "{status} trip differs between engines");
    }
}

/// A zero wall-clock timeout trips on the first observation of every
/// attempt; as a transient failure it consumes the whole retry budget.
#[test]
fn zero_wall_clock_timeout_consumes_the_retry_budget() {
    let spec = fabric_spec();
    let profile = suites::by_name("int.compress").expect("workload exists");
    let options = ExperimentOptions::builder().run_timeout_ms(Some(0)).retries(2).build();
    let supervisor = Supervisor::from_options(&options);
    let outcome = run_job_supervised(
        Engine::EventHorizon,
        &spec,
        &profile,
        instructions(),
        1,
        &supervisor,
    );
    let err = outcome.outcome.expect_err("zero timeout always trips");
    assert_eq!(err.status(), "timeout");
    assert_eq!(outcome.attempts, 3, "attempt 0 plus retries = 2");
}

/// A first-attempt-only panic is transient: the bounded retry re-runs the
/// job clean, and the retried result is bit-identical to an unsupervised
/// run — supervision must never perturb simulation state.
#[test]
fn transient_panic_is_retried_to_a_bit_identical_result() {
    let instructions = instructions();
    let spec = fabric_spec();
    let profile = suites::by_name("fp.wave_solver").expect("workload exists");
    let baseline =
        System::run_spec_with(Engine::EventHorizon, &spec, &profile, instructions, 7)
            .expect("baseline runs");

    let supervisor = Supervisor::from_options(&ExperimentOptions::default());
    let outcome = with_fault(
        ScheduledFault {
            workload: Some(profile.name.clone()),
            at_cycle: 25,
            first_attempt_only: true,
            ..ScheduledFault::any()
        },
        || run_job_supervised(Engine::EventHorizon, &spec, &profile, instructions, 7, &supervisor),
    );
    assert_eq!(outcome.attempts, 2);
    let (result, _) = outcome.outcome.expect("retry succeeds");
    assert_eq!(result, baseline);
}

/// An injected clean trip (the fault returns a structured error instead of
/// panicking) quarantines exactly one batch member without unwinding the
/// batch: siblings finish their batched pass on attempt 0.
#[test]
fn injected_trip_quarantines_without_unwinding_the_batch() {
    let instructions = instructions();
    let spec = fabric_spec();
    let profiles = suites::spec_int_like();
    let jobs: Vec<BatchJob<'_>> = profiles[..3]
        .iter()
        .map(|profile| BatchJob {
            spec: &spec,
            profile,
            instructions,
            seed: 1,
        })
        .collect();

    let supervisor = Supervisor::from_options(&ExperimentOptions::default());
    let tripped = &profiles[2].name;
    let outcomes = with_fault(
        ScheduledFault {
            workload: Some(tripped.clone()),
            at_cycle: 10,
            kind: FaultKind::Trip(RunError::CycleBudgetExceeded { budget: 10, at_cycle: 10 }),
            ..ScheduledFault::any()
        },
        || run_batch_supervised(Engine::EventHorizon, &jobs, &supervisor),
    );
    for (i, outcome) in outcomes.iter().enumerate() {
        if &profiles[i].name == tripped {
            let err = outcome.outcome.as_ref().expect_err("tripped member fails");
            assert_eq!(err.status(), "cycle-budget");
            assert_eq!(outcome.attempts, 1, "deterministic trip is never retried");
        } else {
            assert!(outcome.outcome.is_ok(), "sibling {i} must survive in-batch");
            assert_eq!(outcome.attempts, 1, "siblings keep their batched pass");
        }
    }
}

/// A whole study with one deterministically poisoned workload, fanned over
/// worker threads: the study completes, the poisoned runs land in
/// `failures` with a structured status, and every healthy run is
/// bit-identical to the unfaulted study.
#[test]
fn threaded_study_survives_a_poisoned_workload() {
    let options = ExperimentOptions::builder()
        .instructions(instructions())
        .benchmarks_per_suite(Some(2))
        .threads(3)
        .build();
    let plan = ExperimentPlan::builder("chaos-threads")
        .config(fabric_spec())
        .options(options)
        .build()
        .expect("plan is valid");

    let clean = Study::run(&plan).expect("clean study runs");
    assert!(clean.failures.is_empty());
    let poisoned = clean.results[0].workload.clone();

    let study = ChaosPlan::new()
        .fault(ScheduledFault {
            workload: Some(poisoned.clone()),
            at_cycle: 30,
            ..ScheduledFault::any()
        })
        .with_chaos(|| Study::run(&plan).expect("poisoned study still completes"));

    assert_eq!(study.failures.len(), 1, "exactly the poisoned workload fails");
    let failure = &study.failures[0];
    assert_eq!(failure.workload, poisoned);
    assert_eq!(failure.error.status(), "panic");
    assert_eq!(failure.attempts, 2, "one retry was spent before giving up");

    let healthy: Vec<_> = clean
        .results
        .iter()
        .filter(|r| r.workload != poisoned)
        .collect();
    assert_eq!(study.results.len(), healthy.len());
    for (faulted, baseline) in study.results.iter().zip(healthy) {
        assert_eq!(faulted, baseline, "healthy run drifted under chaos");
    }
}

/// Kill-and-resume: a journaled study whose journal is torn mid-write
/// resumes to a **byte-identical** report — the checkpoint/resume
/// acceptance gate of DESIGN.md §14.
#[test]
fn torn_journal_resumes_to_a_byte_identical_report() {
    let options = ExperimentOptions::builder()
        .instructions(instructions())
        .benchmarks_per_suite(Some(1))
        .build();
    let plan = ExperimentPlan::builder("chaos-resume")
        .config(fabric_spec())
        .options(options)
        .build()
        .expect("plan is valid");

    let path = temp_path("resume");
    let full = Study::run_journaled(&plan, &path, false).expect("journaled run succeeds");
    let full_report = report_value(&plan, &full).to_pretty();

    // Tear the journal the way a kill mid-write would: keep the header and
    // the first record, then a truncated half-record.
    let text = std::fs::read_to_string(&path).expect("journal readable");
    let keep: Vec<&str> = text.lines().take(2).collect();
    std::fs::write(&path, format!("{}\n{{\"job\":1,\"result\":{{\"lab", keep.join("\n")))
        .expect("journal writable");

    let resumed = Study::run_journaled(&plan, &path, true).expect("resume succeeds");
    assert_eq!(
        report_value(&plan, &resumed).to_pretty(),
        full_report,
        "resumed report is not byte-identical"
    );
    std::fs::remove_file(&path).ok();
}
