//! The differential-oracle matrix: every hierarchy kind × both engines ×
//! every shipped workload profile (the paper's 22 plus the 4 adversarial
//! access-pattern classes) × 3 seeds.
//!
//! Split into one test per hierarchy kind so `cargo test` runs the four
//! quadrants in parallel. `LNUCA_VERIFY_INSTRUCTIONS` scales the per-run
//! instruction budget (default 1 500 — small runs are enough because every
//! functional decision is checked, not just final aggregates; the deep
//! tests below cover long-horizon behaviour like spill cascades).

use lnuca_sim::configs::{self, HierarchyKind};
use lnuca_verify::harness::run_differential_both_engines;
use lnuca_workloads::suites;

const SEEDS: [u64; 3] = [1, 2, 3];

fn instructions() -> u64 {
    std::env::var("LNUCA_VERIFY_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1_500)
}

fn verify_kind(kind: &HierarchyKind) {
    let instructions = instructions();
    for profile in suites::extended() {
        for seed in SEEDS {
            if let Err(e) = run_differential_both_engines(kind, &profile, instructions, seed) {
                panic!("{e}");
            }
        }
    }
}

#[test]
fn conventional_matches_the_reference_model() {
    verify_kind(&HierarchyKind::Conventional(configs::conventional()));
}

#[test]
fn lnuca_l3_matches_the_reference_model() {
    verify_kind(&HierarchyKind::LNucaL3(configs::lnuca_hierarchy(3)));
}

#[test]
fn dnuca_matches_the_reference_model() {
    verify_kind(&HierarchyKind::DNuca(configs::dnuca_hierarchy()));
}

#[test]
fn lnuca_dnuca_matches_the_reference_model() {
    verify_kind(&HierarchyKind::LNucaDNuca(configs::lnuca_dnuca_hierarchy(2)));
}

/// Long-horizon runs on the workloads that stress eviction cascades, spills
/// and DRAM turnaround the hardest, across every remaining level count.
#[test]
fn deep_runs_exercise_spill_cascades() {
    let kinds = [
        HierarchyKind::LNucaL3(configs::lnuca_hierarchy(2)),
        HierarchyKind::LNucaL3(configs::lnuca_hierarchy(4)),
        HierarchyKind::LNucaDNuca(configs::lnuca_dnuca_hierarchy(3)),
    ];
    for kind in &kinds {
        for name in ["adv.pointer_chase", "adv.gups", "fp.lattice_qcd"] {
            let profile = suites::by_name(name).expect("shipped profile");
            if let Err(e) = run_differential_both_engines(kind, &profile, 12_000, 7) {
                panic!("{e}");
            }
        }
    }
}
