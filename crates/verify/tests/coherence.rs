//! The coherence oracle matrix (DESIGN.md §17): every sharing pattern ×
//! both engines × 3 seeds on a 2-core shape, plus the 4-core
//! private-fabric-over-D-NUCA flagship shape, replayed through the
//! map-based MSI reference model. `LNUCA_VERIFY_INSTRUCTIONS` scales the
//! per-core budget (default 800 here).

use lnuca_sim::configs;
use lnuca_sim::spec::{BackingSpec, HierarchySpec};
use lnuca_sim::system::Engine;
use lnuca_verify::coherence::{run_coherence, run_coherence_both_engines};
use lnuca_workloads::{suites, AccessPattern, WorkloadProfile};

const SEEDS: [u64; 3] = [1, 2, 3];

fn instructions() -> u64 {
    std::env::var("LNUCA_VERIFY_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(800)
}

fn cmp_spec(cores: usize, fabric: bool, backing: BackingSpec) -> HierarchySpec {
    let mut builder = HierarchySpec::builder().backing(backing).cores(cores);
    if fabric {
        builder = builder.fabric(lnuca_core::LNucaConfig::paper(2).unwrap());
    }
    builder.build().unwrap()
}

fn sharing_profiles() -> Vec<WorkloadProfile> {
    let profiles: Vec<_> = suites::adversarial()
        .into_iter()
        .filter(|p| {
            matches!(
                p.pattern,
                AccessPattern::ProducerConsumer | AccessPattern::Migratory | AccessPattern::FalseSharing
            )
        })
        .collect();
    assert_eq!(profiles.len(), 3, "the adversarial suite ships three sharing classes");
    profiles
}

/// The CI matrix: sharing patterns × engines × seeds on two cores over a
/// shared L3. Each case must pass the oracle, and the two engines must
/// produce identical coherence behaviour.
#[test]
fn sharing_matrix_passes_the_oracle_under_both_engines() {
    let spec = cmp_spec(2, false, BackingSpec::Cache(configs::paper_l3()));
    for profile in sharing_profiles() {
        for seed in SEEDS {
            match run_coherence_both_engines(&spec, &profile, instructions(), seed) {
                Ok(report) => {
                    assert!(report.accesses > 0, "{}: no demand traffic", profile.name);
                    assert!(
                        report.transactions > 0,
                        "{}: sharing pattern never reached the directory",
                        profile.name
                    );
                }
                Err(e) => panic!("{e}"),
            }
        }
    }
}

/// The flagship CMP shape of the issue: four cores, each with a private
/// L1 + L-NUCA-equivalent fabric, over a shared D-NUCA.
#[test]
fn four_core_fabric_over_dnuca_passes_the_oracle() {
    let spec = cmp_spec(4, true, BackingSpec::DNuca(lnuca_dnuca::DNucaConfig::paper()));
    for profile in sharing_profiles() {
        match run_coherence_both_engines(&spec, &profile, instructions(), 7) {
            Ok(report) => assert_eq!(report.cores, 4),
            Err(e) => panic!("{e}"),
        }
    }
}

/// Non-sharing workloads on a CMP must also satisfy the oracle — private
/// working sets still migrate through the directory (misses, evictions,
/// recalls), they just never invalidate each other... unless the
/// fixed-slot directory recalls across cores, which the oracle tracks
/// through the explicit recall events either way.
#[test]
fn private_workloads_pass_the_oracle_too() {
    let spec = cmp_spec(4, false, BackingSpec::Cache(configs::paper_l3()));
    let profile = suites::by_name("int.compress").unwrap();
    for engine in [Engine::EventHorizon, Engine::CycleStep] {
        if let Err(e) = run_coherence(&spec, &profile, instructions(), 5, engine) {
            panic!("{e}");
        }
    }
}

/// A memory-only backing exercises the no-shared-cache path of the CMP
/// machine (writebacks drain straight to DRAM accounting).
#[test]
fn memory_backed_cmp_passes_the_oracle() {
    let spec = cmp_spec(2, true, BackingSpec::Memory);
    let profile = &sharing_profiles()[0];
    if let Err(e) = run_coherence_both_engines(&spec, profile, instructions(), 9) {
        panic!("{e}");
    }
}
