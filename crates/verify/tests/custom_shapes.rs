//! The differential oracle beyond the paper's four kinds: hierarchies that
//! only exist as composed `HierarchySpec`s — a fabric with nothing behind
//! it, a four-level conventional stack, a fabric with an intermediate
//! cache, non-paper tile sizes — all replayed through the timing-free
//! reference model (DESIGN.md §11 holds for the whole spec space, not just
//! the closed enum it replaced).

use lnuca_core::LNucaConfig;
use lnuca_mem::{AccessMode, CacheConfig, WritePolicy};
use lnuca_sim::configs;
use lnuca_sim::spec::{HierarchySpec, IntermediateSpec};
use lnuca_verify::harness::run_differential_spec_both_engines;
use lnuca_workloads::suites;

fn instructions() -> u64 {
    std::env::var("LNUCA_VERIFY_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1_500)
}

fn verify_spec(spec: &HierarchySpec, workloads: &[&str]) {
    let instructions = instructions();
    for name in workloads {
        let profile = suites::by_name(name).expect("shipped profile");
        for seed in [1u64, 7] {
            if let Err(e) = run_differential_spec_both_engines(spec, &profile, instructions, seed) {
                panic!("{e}");
            }
        }
    }
}

/// The acceptance shape of the scenario redesign: LN3 with no L3 — every
/// fabric miss goes straight to DRAM, every spill vanishes.
#[test]
fn fabric_over_bare_memory_matches_the_reference_model() {
    let spec = HierarchySpec::builder()
        .fabric(LNucaConfig::paper(3).unwrap())
        .build()
        .unwrap();
    assert_eq!(spec.label(), "LN3-144KB + mem");
    verify_spec(&spec, &["int.compress", "fp.wave_solver", "adv.gups", "adv.phase_mix"]);
}

/// A four-level conventional stack: L1 + L2 + 1 MB L2B + L3, deeper than
/// anything in the paper (the `deeper_levels` stats and
/// `ServiceLevel::Intermediate` attribution paths).
#[test]
fn deep_conventional_stack_matches_the_reference_model() {
    let l2b = CacheConfig::builder("L2B")
        .size_bytes(1024 * 1024)
        .ways(8)
        .block_size(64)
        .completion_cycles(8)
        .initiation_interval(4)
        .access_mode(AccessMode::Serial)
        .write_policy(WritePolicy::CopyBack)
        .build()
        .unwrap();
    let spec = HierarchySpec::builder()
        .intermediate(IntermediateSpec::paper_l2())
        .intermediate(IntermediateSpec::new(l2b).with_transfers(3, 3))
        .backing_cache(configs::paper_l3())
        .build()
        .unwrap();
    verify_spec(&spec, &["int.pointer_chase", "fp.lattice_qcd", "adv.stream"]);
}

/// A fabric *and* an intermediate conventional cache — the two families the
/// old enum kept separate, composed.
#[test]
fn fabric_with_intermediate_cache_matches_the_reference_model() {
    let spec = HierarchySpec::builder()
        .fabric(LNucaConfig::paper(2).unwrap())
        .intermediate(IntermediateSpec::paper_l2())
        .backing_cache(configs::paper_l3())
        .build()
        .unwrap();
    verify_spec(&spec, &["int.compiler", "adv.pointer_chase"]);
}

/// Non-paper tile sizes (the ablation bins' sweep points) stay verified.
#[test]
fn ablation_tile_sizes_match_the_reference_model() {
    for tile_kb in [2u64, 16] {
        let mut fabric = LNucaConfig::paper(3).unwrap();
        fabric.tile_size_bytes = tile_kb * 1024;
        let spec = HierarchySpec::builder()
            .fabric(fabric)
            .backing_cache(configs::paper_l3())
            .build()
            .unwrap();
        verify_spec(&spec, &["int.compress"]);
    }
}
