//! On-chip network substrate for the Light NUCA reproduction.
//!
//! L-NUCA replaces the classic NUCA 2-D mesh with three specialised
//! point-to-point networks (Search, Transport, Replacement) built from very
//! simple primitives: message-wide unidirectional links, two-entry buffers
//! with On/Off back-pressure, cut-through crossbars and distributed random
//! routing. The D-NUCA baseline, in contrast, uses a conventional
//! virtual-channel wormhole mesh. This crate provides both families of
//! primitives:
//!
//! * [`OnOffBuffer`] — the store-and-forward flow-control buffer used by the
//!   Transport (D) and Replacement (U) channels,
//! * [`Topology`] — a generic directed graph over [`NodeId`]s with the
//!   builders and distance queries the L-NUCA networks need,
//! * [`RoutingPolicy`] — random-among-valid-outputs (the paper's choice) and
//!   dimension-order (the ablation baseline),
//! * [`Crossbar`] — a per-cycle output arbiter that also counts traversals
//!   for the energy model,
//! * [`WormholeMesh`] — the virtual-channel mesh latency/contention model
//!   used by the D-NUCA substrate.
//!
//! # Example
//!
//! ```
//! use lnuca_noc::{OnOffBuffer, Topology, NodeId};
//!
//! let mut buffer: OnOffBuffer<u32> = OnOffBuffer::new(2);
//! assert!(buffer.is_on());
//! buffer.push(7).expect("space available");
//! assert_eq!(buffer.pop(), Some(7));
//!
//! let mut topo = Topology::new(3);
//! topo.add_edge(NodeId(0), NodeId(1));
//! topo.add_edge(NodeId(1), NodeId(2));
//! assert_eq!(topo.distance(NodeId(0), NodeId(2)), Some(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod crossbar;
pub mod mesh;
pub mod routing;
pub mod topology;

pub use buffer::OnOffBuffer;
pub use crossbar::Crossbar;
pub use mesh::{MeshConfig, WormholeMesh};
pub use routing::RoutingPolicy;
pub use topology::{NodeId, Topology};
