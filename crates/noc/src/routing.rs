//! Distributed routing policies.

use crate::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a node chooses among several valid output links.
///
/// L-NUCA topologies guarantee that *every* output link of a node leads
/// toward the destination (the r-tile for Transport, outward for
/// Replacement), so routing reduces to picking one of them. The paper picks
/// randomly to spread load; dimension-order is provided as the ablation
/// baseline it is compared against ("reduces contention in comparison to
/// dimensional order routing").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Pick uniformly at random among the valid outputs (paper default).
    #[default]
    RandomValid,
    /// Always pick the first valid output in a fixed (X-then-Y) order, so
    /// all messages between the same pair of tiles follow the same path.
    DimensionOrder,
}

impl RoutingPolicy {
    /// Chooses one output among `candidates`.
    ///
    /// Returns `None` when `candidates` is empty. The random policy draws
    /// from `rng`, which the caller seeds once per simulation for
    /// reproducibility.
    pub fn choose<R: Rng + ?Sized>(self, candidates: &[NodeId], rng: &mut R) -> Option<NodeId> {
        if candidates.is_empty() {
            return None;
        }
        match self {
            RoutingPolicy::RandomValid => {
                let idx = rng.gen_range(0..candidates.len());
                Some(candidates[idx])
            }
            RoutingPolicy::DimensionOrder => Some(candidates[0]),
        }
    }

    /// Chooses one output among `candidates`, restricted to those whose
    /// index satisfies `usable`. Falls back to `None` if no candidate is
    /// usable (e.g. all downstream buffers are Off).
    ///
    /// This runs without heap allocation so it can sit inside per-cycle
    /// loops; the price is that `usable` may be evaluated up to twice per
    /// candidate (once to count, once to select), so it must be cheap and
    /// yield the same answer both times within one call. It consumes exactly
    /// the same RNG draws as building the viable list and calling
    /// [`RoutingPolicy::choose`], so simulations keep their cycle-accurate
    /// reproducibility either way.
    pub fn choose_filtered<R, F>(
        self,
        candidates: &[NodeId],
        rng: &mut R,
        mut usable: F,
    ) -> Option<NodeId>
    where
        R: Rng + ?Sized,
        F: FnMut(NodeId) -> bool,
    {
        match self {
            RoutingPolicy::DimensionOrder => candidates.iter().copied().find(|&n| usable(n)),
            RoutingPolicy::RandomValid => {
                let viable = candidates.iter().filter(|&&n| usable(n)).count();
                if viable == 0 {
                    return None;
                }
                let idx = rng.gen_range(0..viable);
                candidates.iter().copied().filter(|&n| usable(n)).nth(idx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empty_candidates_yield_none() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(RoutingPolicy::RandomValid.choose(&[], &mut rng), None);
        assert_eq!(RoutingPolicy::DimensionOrder.choose(&[], &mut rng), None);
    }

    #[test]
    fn dimension_order_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(1);
        let candidates = [NodeId(3), NodeId(5), NodeId(7)];
        for _ in 0..10 {
            assert_eq!(
                RoutingPolicy::DimensionOrder.choose(&candidates, &mut rng),
                Some(NodeId(3))
            );
        }
    }

    #[test]
    fn random_valid_only_returns_candidates_and_covers_them() {
        let mut rng = SmallRng::seed_from_u64(42);
        let candidates = [NodeId(1), NodeId(2)];
        let mut seen = [false, false];
        for _ in 0..100 {
            let c = RoutingPolicy::RandomValid.choose(&candidates, &mut rng).unwrap();
            assert!(candidates.contains(&c));
            seen[(c.0 - 1) as usize] = true;
        }
        assert!(seen[0] && seen[1], "both outputs should be exercised over 100 draws");
    }

    #[test]
    fn random_valid_is_reproducible_from_the_seed() {
        let candidates = [NodeId(1), NodeId(2), NodeId(3)];
        let draw = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..20)
                .map(|_| RoutingPolicy::RandomValid.choose(&candidates, &mut rng).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
    }

    #[test]
    fn filtered_choice_respects_the_filter() {
        let mut rng = SmallRng::seed_from_u64(3);
        let candidates = [NodeId(1), NodeId(2), NodeId(3)];
        for _ in 0..50 {
            let c = RoutingPolicy::RandomValid
                .choose_filtered(&candidates, &mut rng, |n| n.0 % 2 == 1)
                .unwrap();
            assert!(c == NodeId(1) || c == NodeId(3));
        }
        assert_eq!(
            RoutingPolicy::RandomValid.choose_filtered(&candidates, &mut rng, |_| false),
            None
        );
    }

    #[test]
    fn filtered_choice_consumes_the_same_draws_as_collect_then_choose() {
        // The allocation-free path must stay drop-in: same RNG stream, same
        // picks as materialising the viable list first.
        let candidates = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        let usable = |n: NodeId| n.0 != 3;
        let mut rng_a = SmallRng::seed_from_u64(11);
        let mut rng_b = SmallRng::seed_from_u64(11);
        for _ in 0..50 {
            let fast = RoutingPolicy::RandomValid.choose_filtered(&candidates, &mut rng_a, usable);
            let viable: Vec<NodeId> = candidates.iter().copied().filter(|&n| usable(n)).collect();
            let slow = RoutingPolicy::RandomValid.choose(&viable, &mut rng_b);
            assert_eq!(fast, slow);
        }
    }
}
