//! Directed network topologies over abstract node identifiers.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a network node (a tile, a bank or a router).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {}", self.0)
    }
}

/// A directed graph describing one of the L-NUCA networks (or any other
/// on-chip interconnect) as adjacency lists.
///
/// The L-NUCA paper relies on three structural properties that this type
/// makes easy to check and test: the number of links, the maximum distance
/// from/to the root tile, and the node degree (the paper argues its
/// topologies keep all three small). See [`Topology::out_degree`],
/// [`Topology::distance`] and [`Topology::link_count`].
///
/// # Example
///
/// ```
/// use lnuca_noc::{NodeId, Topology};
///
/// // A 3-node chain 0 -> 1 -> 2.
/// let mut t = Topology::new(3);
/// t.add_edge(NodeId(0), NodeId(1));
/// t.add_edge(NodeId(1), NodeId(2));
/// assert_eq!(t.link_count(), 2);
/// assert_eq!(t.distance(NodeId(0), NodeId(2)), Some(2));
/// assert_eq!(t.distance(NodeId(2), NodeId(0)), None); // links are unidirectional
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    out_edges: Vec<Vec<NodeId>>,
    in_edges: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Creates a topology with `nodes` isolated nodes.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Topology {
            out_edges: vec![Vec::new(); nodes],
            in_edges: vec![Vec::new(); nodes],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.out_edges.len()
    }

    /// Total number of directed links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.out_edges.iter().map(Vec::len).sum()
    }

    /// Adds a unidirectional link `from -> to`. Duplicate links are ignored.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or if `from == to`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        assert!(from.0 < self.node_count(), "source {from} out of range");
        assert!(to.0 < self.node_count(), "destination {to} out of range");
        assert_ne!(from, to, "self-links are not allowed");
        if !self.out_edges[from.0].contains(&to) {
            self.out_edges[from.0].push(to);
            self.in_edges[to.0].push(from);
        }
    }

    /// Output neighbours of `node`.
    #[must_use]
    pub fn successors(&self, node: NodeId) -> &[NodeId] {
        &self.out_edges[node.0]
    }

    /// Input neighbours of `node`.
    #[must_use]
    pub fn predecessors(&self, node: NodeId) -> &[NodeId] {
        &self.in_edges[node.0]
    }

    /// Number of output links of `node`.
    #[must_use]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_edges[node.0].len()
    }

    /// Number of input links of `node`.
    #[must_use]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_edges[node.0].len()
    }

    /// Total degree (inputs + outputs) of `node`, the quantity the paper
    /// minimises for the Replacement network.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.in_degree(node) + self.out_degree(node)
    }

    /// Length (in hops) of the shortest directed path `from -> to`, or
    /// `None` if `to` is unreachable.
    #[must_use]
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.node_count()];
        dist[from.0] = 0;
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            for &next in &self.out_edges[n.0] {
                if dist[next.0] == usize::MAX {
                    dist[next.0] = dist[n.0] + 1;
                    if next == to {
                        return Some(dist[next.0]);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Shortest-path distance from `from` to every node (`usize::MAX` when
    /// unreachable).
    #[must_use]
    pub fn distances_from(&self, from: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.node_count()];
        dist[from.0] = 0;
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            for &next in &self.out_edges[n.0] {
                if dist[next.0] == usize::MAX {
                    dist[next.0] = dist[n.0] + 1;
                    queue.push_back(next);
                }
            }
        }
        dist
    }

    /// The largest finite distance from `from` to any reachable node.
    #[must_use]
    pub fn eccentricity(&self, from: NodeId) -> usize {
        self.distances_from(from)
            .into_iter()
            .filter(|&d| d != usize::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if every node is reachable from `from`.
    #[must_use]
    pub fn all_reachable_from(&self, from: NodeId) -> bool {
        self.distances_from(from).iter().all(|&d| d != usize::MAX)
    }

    /// Returns `true` if the directed graph contains a cycle.
    ///
    /// The L-NUCA deadlock-freedom argument rests on the absence of cyclic
    /// dependencies among messages; the individual Transport and Replacement
    /// topologies are acyclic by construction and the tests assert it.
    #[must_use]
    pub fn has_cycle(&self) -> bool {
        // Kahn's algorithm: a cycle exists iff not all nodes can be removed.
        let mut in_deg: Vec<usize> = (0..self.node_count())
            .map(|i| self.in_edges[i].len())
            .collect();
        let mut queue: VecDeque<usize> = in_deg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut removed = 0;
        while let Some(n) = queue.pop_front() {
            removed += 1;
            for &next in &self.out_edges[n] {
                in_deg[next.0] -= 1;
                if in_deg[next.0] == 0 {
                    queue.push_back(next.0);
                }
            }
        }
        removed != self.node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn chain(n: usize) -> Topology {
        let mut t = Topology::new(n);
        for i in 0..n - 1 {
            t.add_edge(NodeId(i), NodeId(i + 1));
        }
        t
    }

    #[test]
    fn distances_on_a_chain() {
        let t = chain(5);
        assert_eq!(t.distance(NodeId(0), NodeId(4)), Some(4));
        assert_eq!(t.distance(NodeId(4), NodeId(0)), None);
        assert_eq!(t.distance(NodeId(2), NodeId(2)), Some(0));
        assert_eq!(t.eccentricity(NodeId(0)), 4);
        assert!(t.all_reachable_from(NodeId(0)));
        assert!(!t.all_reachable_from(NodeId(1)));
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut t = Topology::new(2);
        t.add_edge(NodeId(0), NodeId(1));
        t.add_edge(NodeId(0), NodeId(1));
        assert_eq!(t.link_count(), 1);
        assert_eq!(t.out_degree(NodeId(0)), 1);
        assert_eq!(t.in_degree(NodeId(1)), 1);
        assert_eq!(t.degree(NodeId(1)), 1);
    }

    #[test]
    fn cycle_detection() {
        let mut t = chain(3);
        assert!(!t.has_cycle());
        t.add_edge(NodeId(2), NodeId(0));
        assert!(t.has_cycle());
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_links_rejected() {
        let mut t = Topology::new(2);
        t.add_edge(NodeId(1), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut t = Topology::new(2);
        t.add_edge(NodeId(0), NodeId(5));
    }

    proptest! {
        #[test]
        fn distance_is_triangle_consistent(edges in proptest::collection::vec((0usize..12, 0usize..12), 0..60)) {
            let mut t = Topology::new(12);
            for (a, b) in edges {
                if a != b {
                    t.add_edge(NodeId(a), NodeId(b));
                }
            }
            // d(a,c) <= d(a,b) + d(b,c) whenever both legs exist.
            for a in 0..12 {
                for b in 0..12 {
                    for c in 0..12 {
                        if let (Some(ab), Some(bc)) = (t.distance(NodeId(a), NodeId(b)), t.distance(NodeId(b), NodeId(c))) {
                            let ac = t.distance(NodeId(a), NodeId(c)).expect("path a->b->c exists");
                            prop_assert!(ac <= ab + bc);
                        }
                    }
                }
            }
        }

        #[test]
        fn link_count_equals_sum_of_degrees_halved(edges in proptest::collection::vec((0usize..10, 0usize..10), 0..40)) {
            let mut t = Topology::new(10);
            for (a, b) in edges {
                if a != b {
                    t.add_edge(NodeId(a), NodeId(b));
                }
            }
            let total_degree: usize = (0..10).map(|i| t.degree(NodeId(i))).sum();
            prop_assert_eq!(total_degree, 2 * t.link_count());
        }
    }
}
