//! A per-cycle crossbar / switch-allocation model.

use lnuca_types::Cycle;
use serde::{Deserialize, Serialize};

/// A cut-through crossbar that grants each output port to at most one input
/// per cycle and counts traversals for the energy model.
///
/// The paper reduces the L-NUCA transport crossbar from 5 inputs to 3 by
/// exploiting content exclusion (a block can hit either in the cache or in a
/// U buffer, never both); the input/output counts here are configuration
/// parameters so both the full and the cut-through variants can be modelled
/// and compared in the ablation benches.
///
/// # Example
///
/// ```
/// use lnuca_noc::Crossbar;
/// use lnuca_types::Cycle;
///
/// let mut xbar = Crossbar::new(3, 2);
/// assert!(xbar.try_grant(0, 1, Cycle(5)));
/// assert!(!xbar.try_grant(2, 1, Cycle(5)), "output 1 already granted this cycle");
/// assert!(xbar.try_grant(2, 0, Cycle(5)));
/// assert_eq!(xbar.traversals(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Crossbar {
    inputs: usize,
    outputs: usize,
    granted_at: Vec<Cycle>,
    granted_valid: Vec<bool>,
    traversals: u64,
    conflicts: u64,
}

impl Crossbar {
    /// Creates a crossbar with the given number of input and output ports.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    #[must_use]
    pub fn new(inputs: usize, outputs: usize) -> Self {
        assert!(inputs > 0, "crossbar needs at least one input");
        assert!(outputs > 0, "crossbar needs at least one output");
        Crossbar {
            inputs,
            outputs,
            granted_at: vec![Cycle::ZERO; outputs],
            granted_valid: vec![false; outputs],
            traversals: 0,
            conflicts: 0,
        }
    }

    /// Number of input ports.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output ports.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Requests the crossbar to connect `input` to `output` during `now`.
    ///
    /// Returns `true` and records a traversal if the output port has not
    /// been granted to any input this cycle; returns `false` (a switch
    /// allocation conflict) otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `input` or `output` is out of range.
    pub fn try_grant(&mut self, input: usize, output: usize, now: Cycle) -> bool {
        assert!(input < self.inputs, "input port {input} out of range");
        assert!(output < self.outputs, "output port {output} out of range");
        if self.granted_valid[output] && self.granted_at[output] == now {
            self.conflicts += 1;
            return false;
        }
        self.granted_at[output] = now;
        self.granted_valid[output] = true;
        self.traversals += 1;
        true
    }

    /// Total successful traversals (used by the Orion-style energy model).
    #[must_use]
    pub fn traversals(&self) -> u64 {
        self.traversals
    }

    /// Total switch-allocation conflicts.
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_granted_once_per_cycle() {
        let mut x = Crossbar::new(5, 2);
        assert!(x.try_grant(0, 0, Cycle(1)));
        assert!(!x.try_grant(1, 0, Cycle(1)));
        assert!(x.try_grant(1, 1, Cycle(1)));
        assert_eq!(x.traversals(), 2);
        assert_eq!(x.conflicts(), 1);
    }

    #[test]
    fn grants_refresh_in_later_cycles() {
        let mut x = Crossbar::new(2, 1);
        assert!(x.try_grant(0, 0, Cycle(1)));
        assert!(x.try_grant(1, 0, Cycle(2)));
        assert!(x.try_grant(0, 0, Cycle(3)));
        assert_eq!(x.traversals(), 3);
    }

    #[test]
    fn cycle_zero_is_grantable() {
        let mut x = Crossbar::new(1, 1);
        assert!(x.try_grant(0, 0, Cycle(0)));
        assert!(!x.try_grant(0, 0, Cycle(0)));
    }

    #[test]
    fn geometry_accessors() {
        let x = Crossbar::new(3, 4);
        assert_eq!(x.inputs(), 3);
        assert_eq!(x.outputs(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_port_panics() {
        let mut x = Crossbar::new(2, 2);
        let _ = x.try_grant(5, 0, Cycle(0));
    }
}
