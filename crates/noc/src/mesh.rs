//! A virtual-channel wormhole 2-D mesh latency model.
//!
//! This is the network the D-NUCA baseline uses (Table I: 32-byte flits,
//! 1–5 flits per message, four virtual channels with 4-entry buffers,
//! 1-cycle routing latency). L-NUCA deliberately avoids this router — the
//! comparison between the two is one of the paper's main arguments — so this
//! model lives in the generic NoC crate and is consumed by `lnuca-dnuca`.

use lnuca_types::{ConfigError, Cycle};
use serde::{Deserialize, Serialize};

/// Configuration of a [`WormholeMesh`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Number of columns of routers.
    pub cols: usize,
    /// Number of rows of routers.
    pub rows: usize,
    /// Per-hop routing (pipeline) latency in cycles, excluding link traversal.
    pub routing_latency: u64,
    /// Virtual channels per physical link.
    pub virtual_channels: usize,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            cols: 8,
            rows: 4,
            routing_latency: 1,
            virtual_channels: 4,
        }
    }
}

impl MeshConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any dimension or the VC count is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cols == 0 || self.rows == 0 {
            return Err(ConfigError::new("cols/rows", "mesh dimensions must be nonzero"));
        }
        if self.virtual_channels == 0 {
            return Err(ConfigError::new("virtual_channels", "must be nonzero"));
        }
        Ok(())
    }
}

/// Statistics accumulated by a [`WormholeMesh`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshStats {
    /// Messages injected.
    pub messages: u64,
    /// Total hops traversed by all messages.
    pub hops: u64,
    /// Total flit-link traversals (for dynamic energy accounting).
    pub flit_hops: u64,
    /// Cycles spent waiting for a virtual channel to free.
    pub contention_cycles: u64,
}

/// An X-then-Y wormhole-routed mesh with per-link virtual-channel occupancy.
///
/// The model is latency-oriented: each directed link keeps, per virtual
/// channel, the cycle at which it becomes free; a message claims the
/// earliest-free VC at every hop, pays the routing + serialization latency
/// and advances. This captures the two effects the paper cares about —
/// multi-cycle bank-to-controller distance and queueing under miss bursts —
/// without simulating individual flits.
///
/// # Example
///
/// ```
/// use lnuca_noc::{MeshConfig, WormholeMesh};
/// use lnuca_types::Cycle;
///
/// let mut mesh = WormholeMesh::new(MeshConfig { cols: 4, rows: 4, ..MeshConfig::default() })?;
/// // A single-flit message across 3+3 hops, 2 cycles per hop.
/// let arrival = mesh.traverse((0, 0), (3, 3), 1, Cycle(0));
/// assert_eq!(arrival, Cycle(12));
/// # Ok::<(), lnuca_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WormholeMesh {
    config: MeshConfig,
    /// `vc_free_at[link][vc]`, links indexed as directed edges.
    vc_free_at: Vec<Vec<Cycle>>,
    stats: MeshStats,
}

impl WormholeMesh {
    /// Creates an unloaded mesh.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is invalid.
    pub fn new(config: MeshConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        // Each node has up to 4 outgoing links; index = node * 4 + direction.
        let links = config.cols * config.rows * 4;
        Ok(WormholeMesh {
            config,
            vc_free_at: vec![vec![Cycle::ZERO; config.virtual_channels]; links],
            stats: MeshStats::default(),
        })
    }

    /// The configuration this mesh was built with.
    #[must_use]
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &MeshStats {
        &self.stats
    }

    /// Earliest cycle strictly after `now` at which a currently-busy virtual
    /// channel frees, or `None` when every link is already idle.
    ///
    /// This documents the event-horizon contract (DESIGN.md §10) for the
    /// mesh, but the simulation engine does not need to consult it: the
    /// mesh is a passive latency model — its state only changes through
    /// [`WormholeMesh::traverse`], whose delays the hierarchies fold into
    /// eagerly computed completion times — so mesh contention is already
    /// covered by the completion horizons. Exposed for observability and
    /// for drivers that step the mesh directly.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.vc_free_at
            .iter()
            .flatten()
            .copied()
            .filter(|&free_at| free_at > now)
            .min()
    }

    /// Manhattan hop count between two router coordinates.
    #[must_use]
    pub fn hop_count(&self, from: (usize, usize), to: (usize, usize)) -> u64 {
        (from.0.abs_diff(to.0) + from.1.abs_diff(to.1)) as u64
    }

    /// Sends a `flits`-flit message from router `from` to router `to`
    /// starting at `now`, using X-then-Y routing, and returns the cycle at
    /// which the last flit arrives at the destination.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate lies outside the mesh or `flits` is zero.
    pub fn traverse(
        &mut self,
        from: (usize, usize),
        to: (usize, usize),
        flits: u64,
        now: Cycle,
    ) -> Cycle {
        assert!(flits > 0, "a message has at least one flit");
        assert!(
            from.0 < self.config.cols && from.1 < self.config.rows,
            "source router out of range"
        );
        assert!(
            to.0 < self.config.cols && to.1 < self.config.rows,
            "destination router out of range"
        );
        self.stats.messages += 1;

        let per_hop = self.config.routing_latency + 1; // route + link traversal
        let mut head_time = now;
        let mut pos = from;
        while pos != to {
            let (next, dir) = if pos.0 != to.0 {
                if pos.0 < to.0 {
                    ((pos.0 + 1, pos.1), 0)
                } else {
                    ((pos.0 - 1, pos.1), 1)
                }
            } else if pos.1 < to.1 {
                ((pos.0, pos.1 + 1), 2)
            } else {
                ((pos.0, pos.1 - 1), 3)
            };
            let link = (pos.1 * self.config.cols + pos.0) * 4 + dir;
            // Claim the earliest-free virtual channel on this link.
            let (vc_idx, &free_at) = self.vc_free_at[link]
                .iter()
                .enumerate()
                .min_by_key(|(_, &c)| c)
                .expect("at least one virtual channel");
            let start = head_time.max(free_at);
            self.stats.contention_cycles += start.since(head_time);
            // The link carries all flits of the message (wormhole): busy for
            // the serialization time after the head goes through.
            self.vc_free_at[link][vc_idx] = start + per_hop + (flits - 1);
            head_time = start + per_hop;
            self.stats.hops += 1;
            self.stats.flit_hops += flits;
            pos = next;
        }
        // Remaining flits stream in behind the head.
        head_time + (flits - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mesh_4x4() -> WormholeMesh {
        WormholeMesh::new(MeshConfig {
            cols: 4,
            rows: 4,
            routing_latency: 1,
            virtual_channels: 4,
        })
        .unwrap()
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(WormholeMesh::new(MeshConfig { cols: 0, ..MeshConfig::default() }).is_err());
        assert!(WormholeMesh::new(MeshConfig { virtual_channels: 0, ..MeshConfig::default() }).is_err());
    }

    #[test]
    fn unloaded_latency_is_hops_times_per_hop_plus_serialization() {
        let mut m = mesh_4x4();
        // 6 hops, 2 cycles each, 1 flit.
        assert_eq!(m.traverse((0, 0), (3, 3), 1, Cycle(0)), Cycle(12));
        // 4-flit message adds 3 cycles of serialization.
        let mut m = mesh_4x4();
        assert_eq!(m.traverse((0, 0), (3, 3), 4, Cycle(0)), Cycle(15));
    }

    #[test]
    fn zero_hop_messages_only_pay_serialization() {
        let mut m = mesh_4x4();
        assert_eq!(m.traverse((2, 2), (2, 2), 5, Cycle(10)), Cycle(14));
        assert_eq!(m.stats().hops, 0);
    }

    #[test]
    fn contention_appears_when_vcs_are_exhausted() {
        let mut m = WormholeMesh::new(MeshConfig {
            cols: 2,
            rows: 1,
            routing_latency: 1,
            virtual_channels: 1,
        })
        .unwrap();
        let a = m.traverse((0, 0), (1, 0), 5, Cycle(0));
        let b = m.traverse((0, 0), (1, 0), 5, Cycle(0));
        assert_eq!(a, Cycle(6));
        assert!(b > a, "second message must queue behind the first on the single VC");
        assert!(m.stats().contention_cycles > 0);
    }

    #[test]
    fn more_virtual_channels_reduce_contention() {
        let run = |vcs: usize| {
            let mut m = WormholeMesh::new(MeshConfig {
                cols: 2,
                rows: 1,
                routing_latency: 1,
                virtual_channels: vcs,
            })
            .unwrap();
            for _ in 0..8 {
                m.traverse((0, 0), (1, 0), 5, Cycle(0));
            }
            m.stats().contention_cycles
        };
        assert!(run(4) < run(1));
    }

    #[test]
    fn next_event_tracks_busy_virtual_channels() {
        let mut m = mesh_4x4();
        assert_eq!(m.next_event(Cycle(0)), None, "an unloaded mesh has no events");
        m.traverse((0, 0), (1, 0), 4, Cycle(0));
        let horizon = m.next_event(Cycle(0)).expect("a link is busy");
        assert!(horizon > Cycle(0));
        assert_eq!(m.next_event(horizon), None, "after the horizon the mesh is idle again");
    }

    #[test]
    fn hop_count_is_manhattan_distance() {
        let m = mesh_4x4();
        assert_eq!(m.hop_count((0, 0), (3, 3)), 6);
        assert_eq!(m.hop_count((2, 1), (2, 1)), 0);
        assert_eq!(m.hop_count((3, 0), (0, 2)), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_coordinates_panic() {
        let mut m = mesh_4x4();
        let _ = m.traverse((0, 0), (9, 9), 1, Cycle(0));
    }

    proptest! {
        #[test]
        fn latency_is_at_least_unloaded_latency(
            from in (0usize..4, 0usize..4),
            to in (0usize..4, 0usize..4),
            flits in 1u64..6,
            start in 0u64..1000,
        ) {
            let mut m = mesh_4x4();
            let hops = m.hop_count(from, to);
            let arrival = m.traverse(from, to, flits, Cycle(start));
            let unloaded = start + hops * 2 + (flits - 1);
            prop_assert_eq!(arrival, Cycle(unloaded), "an unloaded mesh adds no contention");
        }

        #[test]
        fn repeated_traffic_is_monotonically_delayed(flits in 1u64..6, count in 1usize..20) {
            let mut m = WormholeMesh::new(MeshConfig { cols: 3, rows: 1, routing_latency: 1, virtual_channels: 2 }).unwrap();
            let mut last = Cycle(0);
            for _ in 0..count {
                let arrival = m.traverse((0, 0), (2, 0), flits, Cycle(0));
                prop_assert!(arrival >= last);
                last = arrival;
            }
        }
    }
}
