//! Two-entry buffered flow control with On/Off back-pressure.

use lnuca_types::Cycle;
use std::collections::VecDeque;

/// A bounded FIFO buffer with On/Off back-pressure, as used by the L-NUCA
/// Transport ("D") and Replacement ("U") channels.
///
/// The paper uses store-and-forward flow control where the flow-control digit
/// is the whole message (links are message-wide), two entries per link and an
/// On/Off signal: because the round-trip delay between adjacent tiles is two
/// cycles, two entries are exactly enough to guarantee no message is dropped
/// while the Off signal propagates. In the simulator the sender samples
/// [`OnOffBuffer::is_on`] in the same cycle, which is equivalent in the
/// steady state and conservative during transients.
///
/// # Example
///
/// ```
/// use lnuca_noc::OnOffBuffer;
///
/// let mut b: OnOffBuffer<&str> = OnOffBuffer::new(2);
/// b.push("hit block").unwrap();
/// b.push("another").unwrap();
/// assert!(!b.is_on());
/// assert_eq!(b.push("overflow"), Err("overflow"));
/// assert_eq!(b.pop(), Some("hit block"));
/// assert!(b.is_on());
/// ```
#[derive(Debug, Clone)]
pub struct OnOffBuffer<T> {
    entries: VecDeque<T>,
    capacity: usize,
    peak: usize,
    pushes: u64,
    stalls: u64,
}

impl<T> OnOffBuffer<T> {
    /// Creates a buffer with the given capacity (the paper uses 2 entries).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be nonzero");
        OnOffBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            peak: 0,
            pushes: 0,
            stalls: 0,
        }
    }

    /// `true` while the buffer can accept at least one more message (the
    /// "On" state of the back-pressure signal).
    #[must_use]
    pub fn is_on(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Number of buffered messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Buffer capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest occupancy observed.
    #[must_use]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Number of successful pushes.
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Number of rejected pushes (sender had to stall).
    #[must_use]
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Appends `message`, or returns it back if the buffer is Off (full).
    ///
    /// # Errors
    ///
    /// Returns `Err(message)` when the buffer is full so the caller can
    /// retry in a later cycle without cloning.
    pub fn push(&mut self, message: T) -> Result<(), T> {
        if self.is_on() {
            self.entries.push_back(message);
            self.peak = self.peak.max(self.entries.len());
            self.pushes += 1;
            Ok(())
        } else {
            self.stalls += 1;
            Err(message)
        }
    }

    /// Removes and returns the oldest message.
    pub fn pop(&mut self) -> Option<T> {
        self.entries.pop_front()
    }

    /// Peeks at the oldest message without removing it.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        self.entries.front()
    }

    /// Iterates over buffered messages from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.entries.iter()
    }

    /// Earliest cycle at which any buffered message becomes actionable,
    /// according to the caller-supplied `ready_at` projection (e.g. the
    /// store-and-forward `forwardable_at` stamp); `None` when the buffer is
    /// empty.
    ///
    /// This is the buffer's half of the event-horizon contract (DESIGN.md
    /// §10): a component holding `OnOffBuffer`s folds these minima into its
    /// own `next_event`. The buffer itself never under-reports — every
    /// message is accounted — but the *caller* must still report "busy" for
    /// any per-cycle work it performs while messages are buffered (e.g.
    /// stall counting on blocked forwards).
    pub fn next_event_by<F: FnMut(&T) -> Cycle>(&self, ready_at: F) -> Option<Cycle> {
        self.entries.iter().map(ready_at).min()
    }

    /// Keeps only the messages for which `keep` returns `true`, preserving
    /// FIFO order among the survivors.
    ///
    /// This is the allocation-free way to pull a matching message out of the
    /// middle of the buffer (e.g. an L-NUCA search hitting a block that is
    /// still in flight in a U buffer); the old pop-filter-repush idiom
    /// allocated a temporary `Vec` every time. Removals are not counted as
    /// pops or stalls; the On/Off signal reflects the new occupancy
    /// immediately.
    pub fn retain<F: FnMut(&T) -> bool>(&mut self, keep: F) {
        self.entries.retain(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Batch construction performs every allocation up front (DESIGN.md
    /// §9.2/§13): the backing storage is reserved in `new`, so a buffer
    /// cycled through arbitrary push/pop/retain traffic at steady state
    /// never grows it. `VecDeque` only reallocates when occupancy would
    /// exceed capacity — which `push` rejects — so the pin is the raw
    /// capacity staying put.
    #[test]
    fn steady_state_cycling_never_grows_the_backing_storage() {
        let mut b: OnOffBuffer<u64> = OnOffBuffer::new(2);
        let reserved = b.entries.capacity();
        for turn in 0..10_000u64 {
            let _ = b.push(turn);
            match turn % 5 {
                0 => {
                    b.pop();
                }
                1 => b.retain(|&m| m % 3 != 0),
                2 => {
                    b.pop();
                    b.pop();
                }
                _ => {}
            }
            assert_eq!(b.entries.capacity(), reserved, "turn {turn} reallocated");
        }
    }

    #[test]
    fn respects_capacity_and_fifo_order() {
        let mut b = OnOffBuffer::new(2);
        assert!(b.is_empty());
        b.push(1).unwrap();
        b.push(2).unwrap();
        assert_eq!(b.push(3), Err(3));
        assert_eq!(b.pop(), Some(1));
        assert_eq!(b.pop(), Some(2));
        assert_eq!(b.pop(), None);
    }

    #[test]
    fn on_off_signal_tracks_occupancy() {
        let mut b = OnOffBuffer::new(2);
        assert!(b.is_on());
        b.push('a').unwrap();
        assert!(b.is_on());
        b.push('b').unwrap();
        assert!(!b.is_on());
        b.pop();
        assert!(b.is_on());
    }

    #[test]
    fn statistics_count_pushes_and_stalls() {
        let mut b = OnOffBuffer::new(1);
        b.push(10u8).unwrap();
        let _ = b.push(11);
        let _ = b.push(12);
        assert_eq!(b.pushes(), 1);
        assert_eq!(b.stalls(), 2);
        assert_eq!(b.peak(), 1);
    }

    #[test]
    fn front_and_iter_do_not_consume() {
        let mut b = OnOffBuffer::new(4);
        b.push(1).unwrap();
        b.push(2).unwrap();
        assert_eq!(b.front(), Some(&1));
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn retain_preserves_order_and_reopens_the_buffer() {
        let mut b = OnOffBuffer::new(3);
        b.push(1).unwrap();
        b.push(2).unwrap();
        b.push(3).unwrap();
        assert!(!b.is_on());
        b.retain(|&v| v != 2);
        assert!(b.is_on());
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(b.pushes(), 3, "retain does not rewrite the push counter");
    }

    #[test]
    fn next_event_by_reports_the_earliest_ready_message() {
        let mut b: OnOffBuffer<(u32, Cycle)> = OnOffBuffer::new(3);
        assert_eq!(b.next_event_by(|m| m.1), None);
        b.push((1, Cycle(9))).unwrap();
        b.push((2, Cycle(4))).unwrap();
        assert_eq!(b.next_event_by(|m| m.1), Some(Cycle(4)));
        b.retain(|m| m.0 != 2);
        assert_eq!(b.next_event_by(|m| m.1), Some(Cycle(9)));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = OnOffBuffer::<u8>::new(0);
    }

    proptest! {
        #[test]
        fn never_holds_more_than_capacity(ops in proptest::collection::vec(any::<bool>(), 0..200), cap in 1usize..5) {
            let mut b = OnOffBuffer::new(cap);
            let mut model: std::collections::VecDeque<u32> = Default::default();
            let mut counter = 0u32;
            for push in ops {
                if push {
                    counter += 1;
                    let accepted = b.push(counter).is_ok();
                    if model.len() < cap {
                        prop_assert!(accepted);
                        model.push_back(counter);
                    } else {
                        prop_assert!(!accepted);
                    }
                } else {
                    prop_assert_eq!(b.pop(), model.pop_front());
                }
                prop_assert!(b.len() <= cap);
                prop_assert_eq!(b.len(), model.len());
                prop_assert_eq!(b.is_on(), model.len() < cap);
            }
        }
    }
}
