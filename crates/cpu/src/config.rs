//! Core (pipeline) configuration.

use lnuca_types::ConfigError;
use serde::{Deserialize, Serialize};

/// Parameters of the out-of-order core, mirroring Table I of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instructions fetched and dispatched per cycle.
    pub fetch_width: usize,
    /// Integer/memory instructions issued per cycle.
    pub issue_width_int_mem: usize,
    /// Floating-point instructions issued per cycle.
    pub issue_width_fp: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Load/store-queue entries.
    pub lsq_size: usize,
    /// Integer issue-window entries.
    pub int_window: usize,
    /// Floating-point issue-window entries.
    pub fp_window: usize,
    /// Memory issue-window entries.
    pub mem_window: usize,
    /// Store-buffer entries (post-commit write buffer).
    pub store_buffer_size: usize,
    /// Branch misprediction recovery penalty in cycles.
    pub mispredict_penalty: u64,
    /// Execution latency of floating-point operations.
    pub fp_latency: u64,
    /// Execution latency of integer ALU operations.
    pub int_latency: u64,
    /// Store writes drained from the store buffer to memory per cycle.
    pub store_drain_per_cycle: usize,
}

impl CoreConfig {
    /// The paper's core configuration (Table I).
    #[must_use]
    pub fn paper() -> Self {
        CoreConfig {
            fetch_width: 4,
            issue_width_int_mem: 4,
            issue_width_fp: 4,
            commit_width: 4,
            rob_size: 128,
            lsq_size: 64,
            int_window: 32,
            fp_window: 24,
            mem_window: 16,
            store_buffer_size: 48,
            mispredict_penalty: 8,
            fp_latency: 4,
            int_latency: 1,
            store_drain_per_cycle: 1,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any width, window or latency is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, v) in [
            ("fetch_width", self.fetch_width),
            ("issue_width_int_mem", self.issue_width_int_mem),
            ("issue_width_fp", self.issue_width_fp),
            ("commit_width", self.commit_width),
            ("rob_size", self.rob_size),
            ("lsq_size", self.lsq_size),
            ("int_window", self.int_window),
            ("fp_window", self.fp_window),
            ("mem_window", self.mem_window),
            ("store_buffer_size", self.store_buffer_size),
            ("store_drain_per_cycle", self.store_drain_per_cycle),
        ] {
            if v == 0 {
                return Err(ConfigError::new(name, "must be nonzero"));
            }
        }
        if self.int_latency == 0 || self.fp_latency == 0 {
            return Err(ConfigError::new("int_latency/fp_latency", "must be nonzero"));
        }
        Ok(())
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1() {
        let c = CoreConfig::paper();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.lsq_size, 64);
        assert_eq!((c.int_window, c.fp_window, c.mem_window), (32, 24, 16));
        assert_eq!(c.store_buffer_size, 48);
        assert_eq!(c.mispredict_penalty, 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn zero_fields_are_rejected() {
        let mut c = CoreConfig::paper();
        c.rob_size = 0;
        assert!(c.validate().is_err());
        let mut c = CoreConfig::paper();
        c.fp_latency = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_is_the_paper_config() {
        assert_eq!(CoreConfig::default(), CoreConfig::paper());
    }
}
