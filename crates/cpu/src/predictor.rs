//! Bimodal + gshare hybrid branch predictor.

use serde::{Deserialize, Serialize};

/// Number of bits of global history (paper: 16-bit gshare).
const HISTORY_BITS: u32 = 16;
/// Entries in the gshare pattern history table.
const GSHARE_ENTRIES: usize = 1 << HISTORY_BITS;
/// Entries in the bimodal table and in the chooser.
const BIMODAL_ENTRIES: usize = 1 << 13;

fn saturating_update(counter: &mut u8, taken: bool) {
    if taken {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

fn predicts_taken(counter: u8) -> bool {
    counter >= 2
}

/// The "bimodal + gshare, 16 bit" hybrid predictor of Table I.
///
/// Two prediction tables (a PC-indexed bimodal table and a global-history
/// XOR PC indexed gshare table) are combined by a chooser table of 2-bit
/// counters that learns, per branch, which component predicts better.
///
/// # Example
///
/// ```
/// use lnuca_cpu::HybridPredictor;
///
/// let mut p = HybridPredictor::new();
/// // A heavily biased branch becomes predictable after a few outcomes.
/// for _ in 0..16 {
///     let _ = p.predict_and_update(42, true);
/// }
/// assert!(p.predict_and_update(42, true));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridPredictor {
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    chooser: Vec<u8>,
    history: u64,
    predictions: u64,
    mispredictions: u64,
}

impl Default for HybridPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl HybridPredictor {
    /// Creates a predictor with all counters weakly not-taken.
    #[must_use]
    pub fn new() -> Self {
        HybridPredictor {
            bimodal: vec![1; BIMODAL_ENTRIES],
            gshare: vec![1; GSHARE_ENTRIES],
            chooser: vec![2; BIMODAL_ENTRIES],
            history: 0,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predicts the branch at `pc`, then updates the tables with the actual
    /// `taken` outcome. Returns `true` if the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let bim_idx = (pc as usize) % BIMODAL_ENTRIES;
        let gsh_idx = ((pc ^ self.history) as usize) % GSHARE_ENTRIES;
        let bim_pred = predicts_taken(self.bimodal[bim_idx]);
        let gsh_pred = predicts_taken(self.gshare[gsh_idx]);
        let use_gshare = predicts_taken(self.chooser[bim_idx]);
        let prediction = if use_gshare { gsh_pred } else { bim_pred };

        // Chooser learns toward the component that was right (only when they
        // disagree).
        if bim_pred != gsh_pred {
            saturating_update(&mut self.chooser[bim_idx], gsh_pred == taken);
        }
        saturating_update(&mut self.bimodal[bim_idx], taken);
        saturating_update(&mut self.gshare[gsh_idx], taken);
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << HISTORY_BITS) - 1);

        self.predictions += 1;
        let correct = prediction == taken;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Total predictions made.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    #[must_use]
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate over all predictions, or 0.0 if none were made.
    #[must_use]
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn constant_branches_become_perfectly_predicted() {
        let mut p = HybridPredictor::new();
        for _ in 0..100 {
            p.predict_and_update(7, true);
        }
        let before = p.mispredictions();
        for _ in 0..1000 {
            p.predict_and_update(7, true);
        }
        assert_eq!(p.mispredictions(), before, "steady branch must not mispredict");
    }

    #[test]
    fn alternating_pattern_is_learned_by_gshare() {
        let mut p = HybridPredictor::new();
        let mut taken = false;
        for _ in 0..2000 {
            p.predict_and_update(99, taken);
            taken = !taken;
        }
        // After warm-up the global history disambiguates the alternation.
        let warm_mispredicts = p.mispredictions();
        let warm_predictions = p.predictions();
        let mut extra = 0;
        for _ in 0..2000 {
            if !p.predict_and_update(99, taken) {
                extra += 1;
            }
            taken = !taken;
        }
        let _ = (warm_mispredicts, warm_predictions);
        assert!(extra < 50, "alternating branch should be nearly perfectly predicted, got {extra} misses");
    }

    #[test]
    fn random_branches_mispredict_around_half_the_time() {
        let mut p = HybridPredictor::new();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..20_000 {
            p.predict_and_update(rng.gen_range(0..64), rng.gen_bool(0.5));
        }
        let rate = p.misprediction_rate();
        assert!(rate > 0.4 && rate < 0.6, "random outcomes give ~50% rate, got {rate}");
    }

    #[test]
    fn biased_branches_track_their_bias() {
        let mut p = HybridPredictor::new();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..50_000 {
            let pc = rng.gen_range(0..256u64);
            let bias = pc % 2 == 0;
            let taken = if rng.gen_bool(0.95) { bias } else { !bias };
            p.predict_and_update(pc, taken);
        }
        assert!(p.misprediction_rate() < 0.12, "rate {}", p.misprediction_rate());
    }

    #[test]
    fn rate_is_zero_before_any_prediction() {
        let p = HybridPredictor::new();
        assert_eq!(p.misprediction_rate(), 0.0);
        assert_eq!(p.predictions(), 0);
    }
}
